"""Tests for query objects, workload generation and the query runner."""

from __future__ import annotations

import pytest

from repro.algorithms import get_algorithm
from repro.graph.generators import uniform_random_temporal_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.paths.reachability import can_reach
from repro.queries.query import QueryWorkload, TspgQuery
from repro.queries.runner import QueryRunner
from repro.queries.workload import (
    WorkloadGenerationError,
    generate_workload,
    workload_for_theta_sweep,
)


class TestTspgQuery:
    def test_fields_and_theta(self):
        query = TspgQuery("a", "b", (3, 9))
        assert query.theta == 7
        assert query.interval.begin == 3
        assert query.as_tuple() == ("a", "b", (3, 9))

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            TspgQuery("a", "a", (1, 2))

    def test_workload_container(self):
        workload = QueryWorkload("demo")
        workload.add(TspgQuery("a", "b", (1, 4)))
        workload.extend([TspgQuery("b", "c", (1, 8))])
        assert len(workload) == 2
        assert workload.average_theta() == pytest.approx(6.0)
        assert list(workload)[0].source == "a"

    def test_empty_workload_average(self):
        assert QueryWorkload("empty").average_theta() == 0.0


class TestWorkloadGeneration:
    @pytest.fixture
    def graph(self):
        return uniform_random_temporal_graph(30, 260, num_timestamps=40, seed=13)

    def test_all_queries_are_reachable(self, graph):
        workload = generate_workload(graph, num_queries=12, theta=8, seed=3)
        assert len(workload) == 12
        for query in workload:
            assert query.theta == 8
            assert can_reach(graph, query.source, query.target, query.interval)

    def test_reproducible_with_seed(self, graph):
        first = generate_workload(graph, num_queries=5, theta=6, seed=11)
        second = generate_workload(graph, num_queries=5, theta=6, seed=11)
        assert [q.as_tuple() for q in first] == [q.as_tuple() for q in second]

    def test_invalid_parameters(self, graph):
        with pytest.raises(ValueError):
            generate_workload(graph, num_queries=0, theta=5)
        with pytest.raises(ValueError):
            generate_workload(graph, num_queries=1, theta=1)

    def test_empty_graph_raises(self):
        with pytest.raises(WorkloadGenerationError):
            generate_workload(TemporalGraph(), num_queries=1, theta=5)

    def test_single_edge_graph_yields_that_query(self):
        graph = TemporalGraph(edges=[("a", "b", 5)])
        workload = generate_workload(graph, num_queries=3, theta=4, seed=0)
        for query in workload:
            assert (query.source, query.target) == ("a", "b")
            assert query.interval.contains(5)

    def test_theta_sweep(self, graph):
        workloads = workload_for_theta_sweep(graph, [4, 6], num_queries=3, seed=1)
        assert [w.average_theta() for w in workloads] == [4.0, 6.0]
        assert workloads[0].name.endswith("theta4")


class TestQueryRunner:
    @pytest.fixture
    def graph(self):
        return uniform_random_temporal_graph(25, 200, num_timestamps=30, seed=5)

    def test_run_workload_aggregates(self, graph):
        workload = generate_workload(graph, num_queries=6, theta=6, seed=2)
        runner = QueryRunner(keep_results=True)
        outcome = runner.run_workload(get_algorithm("VUG"), graph, workload)
        assert outcome.num_completed == 6
        assert outcome.total_seconds >= 0.0
        assert len(outcome.per_query_seconds) == 6
        assert len(outcome.results) == 6
        assert outcome.max_space >= outcome.min_space > 0
        assert not outcome.is_inf
        row = outcome.as_row()
        assert row["algorithm"] == "VUG"

    def test_run_all_compares_algorithms(self, graph):
        workload = generate_workload(graph, num_queries=3, theta=5, seed=2)
        runner = QueryRunner(keep_results=True)
        outcomes = runner.run_all(
            [get_algorithm("VUG"), get_algorithm("EPdtTSG")], graph, workload
        )
        assert {o.algorithm for o in outcomes} == {"VUG", "EPdtTSG"}
        for left, right in zip(outcomes[0].results, outcomes[1].results):
            assert left.same_members(right)

    def test_time_budget_marks_timeout(self, graph):
        workload = generate_workload(graph, num_queries=10, theta=6, seed=2)
        runner = QueryRunner(time_budget_seconds=0.0)
        outcome = runner.run_workload(get_algorithm("VUG"), graph, workload)
        assert outcome.timed_out
        assert outcome.reported_seconds == float("inf")
        assert outcome.as_row()["time_s"] == "INF"

    def test_run_single(self, graph):
        workload = generate_workload(graph, num_queries=1, theta=6, seed=4)
        runner = QueryRunner()
        result = runner.run_single(get_algorithm("VUG"), graph, workload.queries[0])
        assert result.algorithm == "VUG"
