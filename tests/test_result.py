"""Tests for the PathGraph result object and phase timing containers."""

from __future__ import annotations

import pytest

from repro.core.result import PathGraph, PhaseTimings, VUGReport
from repro.graph.edge import TemporalEdge, TimeInterval
from repro.graph.temporal_graph import TemporalGraph


class TestPathGraphConstruction:
    def test_empty(self):
        result = PathGraph.empty("s", "t", (1, 5))
        assert result.is_empty
        assert result.num_vertices == 0
        assert result.interval == TimeInterval(1, 5)

    def test_from_members(self):
        result = PathGraph.from_members("s", "t", (1, 5), {"s", "t"}, [("s", "t", 2)])
        assert result.num_vertices == 2
        assert result.num_edges == 1
        assert result.contains_edge(("s", "t", 2))
        assert result.contains_vertex("s")

    def test_from_edges_induces_vertices(self):
        result = PathGraph.from_edges("s", "t", (1, 5), [("s", "a", 2), ("a", "t", 3)])
        assert set(result.vertices) == {"s", "a", "t"}

    def test_from_graph_round_trip(self):
        graph = TemporalGraph(edges=[("s", "a", 1), ("a", "t", 2)])
        result = PathGraph.from_graph("s", "t", (1, 2), graph)
        assert result.to_temporal_graph() == graph

    def test_temporal_edges_iteration(self):
        result = PathGraph.from_edges("s", "t", (1, 5), [("s", "t", 2)])
        assert list(result.temporal_edges()) == [TemporalEdge("s", "t", 2)]
        assert len(result) == 1
        assert set(result) == {("s", "t", 2)}


class TestPathGraphComparisons:
    def test_same_members_and_subgraph(self):
        big = PathGraph.from_edges("s", "t", (1, 5), [("s", "a", 1), ("a", "t", 2)])
        small = PathGraph.from_edges("s", "t", (1, 5), [("s", "a", 1)])
        assert small.is_subgraph_of(big)
        assert not big.is_subgraph_of(small)
        assert not big.same_members(small)
        only_big, only_small = big.edge_difference(small)
        assert only_big == {("a", "t", 2)}
        assert only_small == set()

    def test_summary(self):
        result = PathGraph.from_edges("s", "t", (1, 5), [("s", "t", 2)])
        summary = result.summary()
        assert summary["num_edges"] == 1
        assert summary["interval"] == (1, 5)


class TestPhaseTimings:
    def test_totals_and_accumulate(self):
        timings = PhaseTimings(quick_ubg=1.0, tight_ubg=2.0, eev=3.0)
        assert timings.total == pytest.approx(6.0)
        other = PhaseTimings(quick_ubg=0.5)
        timings.accumulate(other)
        assert timings.quick_ubg == pytest.approx(1.5)
        as_dict = timings.as_dict()
        assert as_dict["TightUBG"] == pytest.approx(2.0)
        assert as_dict["total"] == pytest.approx(6.5)

    def test_vug_report_alias(self):
        result = PathGraph.empty("s", "t", (1, 2))
        report = VUGReport(result=result)
        assert report.tspg is result
        assert report.space_cost == 0
