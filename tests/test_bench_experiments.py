"""Integration tests for the experiment drivers (small-scale runs)."""

from __future__ import annotations

import pytest

from repro.bench import experiments


SMALL = dict(num_queries=3, seed=1)


class TestTableAndFigureDrivers:
    def test_table1(self):
        report = experiments.table1_datasets(keys=["D1", "D2"])
        assert len(report.rows) == 2
        assert report.rows[0]["paper_name"] == "email-Eu-core"
        assert report.rows[0]["synth_E"] > 0
        assert report.render()

    def test_exp1_response_time(self):
        report = experiments.exp1_response_time(
            keys=["D1"], algorithms=["VUG", "EPtgTSG"], time_budget_seconds=30, **SMALL
        )
        assert len(report.rows) == 1
        row = report.rows[0]
        assert row["dataset"] == "D1"
        assert row["VUG"] >= 0.0
        assert "VUG" in report.series and "EPtgTSG" in report.series

    def test_exp2_vary_theta(self):
        report = experiments.exp2_vary_theta(
            "D1", thetas=[4, 6], algorithms=["VUG"], time_budget_seconds=30, **SMALL
        )
        assert [row["theta"] for row in report.rows] == [4, 6]
        assert set(report.series) == {"VUG"}

    def test_exp3_space(self):
        report = experiments.exp3_space(keys=["D1"], algorithms=["VUG", "EPdtTSG"], **SMALL)
        algorithms = {row["algorithm"] for row in report.rows}
        assert algorithms == {"VUG", "EPdtTSG"}
        for row in report.rows:
            assert row["max_space"] >= row["min_space"] >= 0

    def test_exp4_phases(self):
        report = experiments.exp4_phases(keys=["D1"], **SMALL)
        row = report.rows[0]
        assert row["total"] >= row["QuickUBG"]
        assert set(report.series) == {"QuickUBG", "TightUBG", "EEV"}

    def test_exp5_upper_bound_table(self):
        report = experiments.exp5_upper_bound(keys=["D1"], **SMALL)
        row = report.rows[0]
        assert row["TightUBG"] >= row["QuickUBG"]
        assert row["dtTSG"] <= row["esTSG"] + 1e-9

    def test_exp5_quick_vs_tgtsg(self):
        report = experiments.exp5_quick_vs_tgtsg(keys=["D1"], **SMALL)
        row = report.rows[0]
        assert row["tgTSG"] >= 0 and row["QuickUBG"] >= 0
        assert "speedup" in row

    def test_exp5_vary_theta(self):
        report = experiments.exp5_vary_theta("D1", thetas=[4, 6], **SMALL)
        assert [row["theta"] for row in report.rows] == [4, 6]
        for row in report.rows:
            if row["QuickUBG_ratio"] is not None and row["TightUBG_ratio"] is not None:
                assert row["TightUBG_ratio"] >= row["QuickUBG_ratio"] - 1e-9

    def test_exp6_eev_vs_enum(self):
        report = experiments.exp6_eev_vs_enum("D1", thetas=[4, 6], **SMALL)
        assert len(report.rows) == 2
        # Any correctness mismatch is reported as a note; there must be none.
        assert not any("MISMATCH" in note for note in report.notes)

    def test_exp7_edges_vs_paths(self):
        report = experiments.exp7_edges_vs_paths("D1", thetas=[4, 6], **SMALL)
        for row in report.rows:
            assert row["tspg_paths"] >= 0
            assert row["tspg_edges"] >= 0

    def test_exp8_case_study_bare(self):
        report = experiments.exp8_case_study(use_full_network=False)
        row = report.rows[0]
        assert row["tspg_stops"] == 8
        assert row["tspg_trips"] >= 15
        assert len(report.notes) == row["tspg_trips"]

    def test_exp8_case_study_full_network(self):
        report = experiments.exp8_case_study(use_full_network=True)
        row = report.rows[0]
        assert row["network_edges"] > row["tspg_trips"]
        assert row["tspg_stops"] >= 8

    def test_registry_contains_all_drivers(self):
        assert set(experiments.EXPERIMENTS) == {
            "table1", "exp1", "exp2", "exp3", "exp4",
            "exp5-table2", "exp5-fig9", "exp5-fig10",
            "exp6", "exp7", "exp8", "exp9", "exp10", "exp11", "exp12",
            "exp13", "exp14", "exp15", "exp16", "exp17", "exp18",
        }

    def test_exp10_store_and_shards(self):
        report = experiments.exp10_store_and_shards(
            "D1", num_queries=3, shard_counts=(2,)
        )
        by_mode = {row["mode"]: row for row in report.rows}
        assert {"cold-boot", "snapshot-boot", "1-shard", "2-shard"} <= set(by_mode)
        assert by_mode["snapshot-boot"]["wall_s"] <= by_mode["cold-boot"]["wall_s"]
        assert by_mode["2-shard"]["identical"] is True

    def test_exp11_view_pipeline(self):
        report = experiments.exp11_view_pipeline("D1", num_queries=4, rounds=1)
        by_mode = {row["mode"]: row for row in report.rows}
        assert {"zero-materialization", "materializing"} == set(by_mode)
        # The driver cross-checks bit-identity internally; the note records it.
        assert any("bit-identical" in note for note in report.notes)

    def test_exp12_process_shards(self, tmp_path):
        report = experiments.exp12_process_shards(
            "D1", num_queries=4, workers=2, num_shards=2,
            shard_dir=str(tmp_path / "shards"),
        )
        by_mode = {row["mode"]: row for row in report.rows}
        assert {"serial", "threads-2", "processes-2"} == set(by_mode)
        assert all(row["identical"] is True for row in report.rows)
        # The comparison is only honest if the process row really ran on
        # the process backend (snapshots present, name-resolved algorithm).
        assert by_mode["processes-2"]["executor"] == "processes"

    def test_exp13_serving_pool(self, tmp_path):
        report = experiments.exp13_serving_pool(
            "D1", num_queries=4, workers=2, num_batches=2,
            snapshot_path=str(tmp_path / "g.tspgsnap"),
        )
        by_mode = {row["mode"]: row for row in report.rows}
        assert {
            "per-batch-boot-1", "per-batch-boot-2",
            "pool-1", "pool-2", "deadline-cutoff",
        } == set(by_mode)
        # Both serving regimes really ran on processes and stayed
        # bit-identical to the serial no-deadline baseline.
        for mode in ("per-batch-boot-2", "pool-2"):
            assert by_mode[mode]["executor"] == "processes"
            assert by_mode[mode]["identical"] is True
        # The cut-off row documents its budget and bounded overshoot.
        assert by_mode["deadline-cutoff"]["budget_s"] > 0
        assert by_mode["deadline-cutoff"]["overshoot_s"] is not None
        assert any("warm pool batch" in note for note in report.notes)
