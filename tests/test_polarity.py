"""Unit tests for polarity-time computation (Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.core.polarity import INFINITY, NEG_INFINITY, compute_polarity_times
from repro.graph.temporal_graph import TemporalGraph


class TestPaperExample:
    """The running example's A(·)/D(·) tables of Fig. 3(a)-(b)."""

    def test_earliest_arrival_matches_figure(self, paper_query):
        graph, source, target, interval = paper_query
        polarity = compute_polarity_times(graph, source, target, interval)
        expected = {"s": 1, "a": 3, "b": 2, "c": 3, "d": 3, "e": 5, "f": 4}
        for vertex, value in expected.items():
            assert polarity.earliest_arrival(vertex) == value
        assert polarity.earliest_arrival(target) == INFINITY

    def test_latest_departure_matches_figure(self, paper_query):
        graph, source, target, interval = paper_query
        polarity = compute_polarity_times(graph, source, target, interval)
        expected = {"t": 8, "b": 6, "c": 7, "d": 2, "e": 6, "f": 5}
        for vertex, value in expected.items():
            assert polarity.latest_departure(vertex) == value
        assert polarity.latest_departure("s") == NEG_INFINITY
        assert polarity.latest_departure("a") == NEG_INFINITY

    def test_source_and_target_conventions(self, paper_query):
        graph, source, target, interval = paper_query
        polarity = compute_polarity_times(graph, source, target, interval)
        assert polarity.earliest_arrival(source) == interval.begin - 1
        assert polarity.latest_departure(target) == interval.end + 1

    def test_admits_edge_matches_lemma1(self, paper_query):
        graph, source, target, interval = paper_query
        polarity = compute_polarity_times(graph, source, target, interval)
        assert polarity.admits_edge("s", "b", 2)
        assert polarity.admits_edge("b", "t", 6)
        # Excluded in Example 4: A(d) = 3 > 2 and D(a) = -inf.
        assert not polarity.admits_edge("d", "t", 2)
        assert not polarity.admits_edge("s", "a", 3)
        assert not polarity.admits_edge("b", "f", 5)


class TestEdgeCases:
    def test_unknown_vertices_return_defaults(self, paper_graph, paper_interval):
        polarity = compute_polarity_times(paper_graph, "s", "t", paper_interval)
        assert polarity.earliest_arrival("nope") == INFINITY
        assert polarity.latest_departure("nope") == NEG_INFINITY

    def test_source_missing_from_graph(self, paper_graph, paper_interval):
        polarity = compute_polarity_times(paper_graph, "ghost", "t", paper_interval)
        assert all(value == INFINITY for value in polarity.arrival.values())

    def test_target_missing_from_graph(self, paper_graph, paper_interval):
        polarity = compute_polarity_times(paper_graph, "s", "ghost", paper_interval)
        assert all(value == NEG_INFINITY for value in polarity.departure.values())

    def test_interval_excludes_all_edges(self, chain_graph):
        polarity = compute_polarity_times(chain_graph, "s", "t", (100, 110))
        assert polarity.earliest_arrival("v1") == INFINITY
        assert polarity.latest_departure("v3") == NEG_INFINITY

    def test_paths_through_target_are_ignored(self):
        # The only way from s to b passes through t, so A(b) must remain +inf.
        graph = TemporalGraph(edges=[("s", "t", 1), ("t", "b", 2), ("b", "t", 3)])
        polarity = compute_polarity_times(graph, "s", "t", (1, 5))
        assert polarity.earliest_arrival("b") == INFINITY

    def test_paths_through_source_are_ignored_backwards(self):
        # The only way from b to t passes through s, so D(b) must remain -inf.
        graph = TemporalGraph(edges=[("b", "s", 1), ("s", "t", 2)])
        polarity = compute_polarity_times(graph, "s", "t", (1, 5))
        assert polarity.latest_departure("b") == NEG_INFINITY

    def test_multiple_paths_keep_earliest_arrival(self, diamond_graph):
        polarity = compute_polarity_times(diamond_graph, "s", "t", (1, 4))
        # b is reachable directly at 2 and via a at 2; earliest arrival is 2.
        assert polarity.earliest_arrival("b") == 2
        assert polarity.earliest_arrival("a") == 1

    def test_strictness_of_timestamps(self):
        # Equal consecutive timestamps cannot be chained (strict model).
        graph = TemporalGraph(edges=[("s", "a", 2), ("a", "b", 2), ("b", "t", 3)])
        polarity = compute_polarity_times(graph, "s", "t", (1, 5))
        assert polarity.earliest_arrival("b") == INFINITY
