"""Tests for the dataset registry and the transit case study."""

from __future__ import annotations

import pytest

from repro import generate_tspg
from repro.analysis.oracle import brute_force_tspg
from repro.datasets.registry import (
    DATASETS,
    dataset_keys,
    get_dataset,
    load_dataset,
    small_dataset_keys,
)
from repro.datasets.transit import (
    CASE_STUDY_QUERY,
    CASE_STUDY_STOPS,
    case_study_graph,
    case_study_trips,
    describe_transfer_options,
    generate_transit_network,
    hhmm,
    minute,
)
from repro.graph.validation import validate_graph
from repro.queries.workload import generate_workload


class TestRegistry:
    def test_ten_datasets_registered(self):
        assert dataset_keys() == [f"D{i}" for i in range(1, 11)]
        assert set(dataset_keys()) == set(DATASETS)

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            get_dataset("D99")

    def test_small_keys_subset(self):
        assert set(small_dataset_keys()) <= set(dataset_keys())

    @pytest.mark.parametrize("key", ["D1", "D2", "D5", "D8"])
    def test_load_is_deterministic_and_valid(self, key):
        first = load_dataset(key)
        second = load_dataset(key)
        assert first == second
        validate_graph(first)
        assert first.num_edges > 100

    def test_sizes_roughly_increase_with_index(self):
        small = load_dataset("D1").num_edges
        large = load_dataset("D9").num_edges
        assert large > small

    def test_paper_statistics_present(self):
        spec = get_dataset("D9")
        assert spec.paper_name == "sx-stackoverflow"
        assert spec.paper_statistics.num_edges == 63_497_050
        assert spec.default_theta == 20

    @pytest.mark.parametrize("key", ["D1", "D3"])
    def test_workloads_can_be_generated(self, key):
        spec = get_dataset(key)
        graph = spec.load()
        workload = generate_workload(graph, num_queries=3, theta=spec.default_theta, seed=1)
        assert len(workload) == 3

    def test_statistics_helper(self):
        stats = get_dataset("D1").statistics()
        assert stats.num_vertices > 0
        assert stats.num_edges > 0


class TestTransitCaseStudy:
    def test_minute_and_hhmm_roundtrip(self):
        assert minute("09:23") == 563
        assert hhmm(563) == "09:23"
        assert hhmm(minute("00:05")) == "00:05"

    def test_case_study_graph_matches_figure13(self):
        graph = case_study_graph()
        assert graph.num_vertices == 8
        assert graph.num_edges == 17
        assert set(graph.vertices()) == set(CASE_STUDY_STOPS)

    def test_case_study_trips_all_within_window(self):
        source, target, interval = CASE_STUDY_QUERY
        for trip in case_study_trips():
            assert interval[0] <= trip.departure <= interval[1]

    def test_tspg_on_bare_case_study_uses_all_stops(self):
        source, target, interval = CASE_STUDY_QUERY
        graph = case_study_graph()
        tspg = generate_tspg(graph, source, target, interval)
        assert set(tspg.vertices) == set(CASE_STUDY_STOPS)
        assert tspg.num_edges >= 15
        oracle = brute_force_tspg(graph, source, target, interval)
        assert tspg.same_members(oracle)

    def test_transfer_option_rendering(self):
        source, target, interval = CASE_STUDY_QUERY
        tspg = generate_tspg(case_study_graph(), source, target, interval)
        lines = describe_transfer_options(tspg)
        assert len(lines) == tspg.num_edges
        assert any("Silver Ave" in line for line in lines)
        assert lines == sorted(lines, key=lambda line: line.split()[0])

    def test_full_network_embeds_case_study(self):
        network = generate_transit_network(seed=1)
        assert network.num_vertices > len(CASE_STUDY_STOPS)
        for trip in case_study_trips():
            assert network.has_edge(trip.from_stop, trip.to_stop, trip.departure)

    def test_full_network_query_contains_corridor(self):
        source, target, interval = CASE_STUDY_QUERY
        network = generate_transit_network(seed=1)
        tspg = generate_tspg(network, source, target, interval)
        assert set(CASE_STUDY_STOPS) <= set(tspg.vertices)
        oracle = brute_force_tspg(network, source, target, interval)
        assert tspg.same_members(oracle)

    def test_full_network_is_deterministic(self):
        assert generate_transit_network(seed=9) == generate_transit_network(seed=9)
