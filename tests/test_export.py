"""Tests for the DOT / GraphML / ASCII exporters."""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree

import pytest

from repro import generate_tspg
from repro.graph.export import to_ascii, to_dot, to_graphml, write_dot, write_graphml
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture
def small_graph() -> TemporalGraph:
    return TemporalGraph(edges=[("s", "a", 1), ("a", "t", 3), ("s", "t", 5)])


class TestDot:
    def test_structure(self, small_graph):
        dot = to_dot(small_graph, name="demo graph")
        assert dot.startswith("digraph demo_graph {")
        assert dot.rstrip().endswith("}")
        assert '"s" -> "a" [label="1"]' in dot
        assert '"s" -> "t" [label="5"]' in dot
        # One node line per vertex.
        assert dot.count("shape=doublecircle") == 0

    def test_endpoint_highlighting(self, small_graph):
        dot = to_dot(small_graph, source="s", target="t")
        assert dot.count("doublecircle") == 2
        assert "forestgreen" in dot and "firebrick" in dot

    def test_path_graph_endpoints_inferred(self, paper_query):
        graph, source, target, interval = paper_query
        tspg = generate_tspg(graph, source, target, interval)
        dot = to_dot(tspg)
        assert dot.count("doublecircle") == 2
        assert '"b" -> "c" [label="3"]' in dot

    def test_write_dot(self, small_graph, tmp_path):
        path = tmp_path / "graph.dot"
        write_dot(small_graph, path, name="demo")
        assert path.read_text().startswith("digraph demo")

    def test_special_characters_quoted(self):
        graph = TemporalGraph(edges=[("stop a", 'say "hi"', 2)])
        dot = to_dot(graph)
        assert '"stop a"' in dot
        assert '\\"hi\\"' in dot


class TestGraphml:
    def test_valid_xml_with_timestamps(self, small_graph):
        document = to_graphml(small_graph, name="demo")
        root = ElementTree.fromstring(document)
        namespace = "{http://graphml.graphdrawing.org/xmlns}"
        nodes = root.findall(f".//{namespace}node")
        edges = root.findall(f".//{namespace}edge")
        assert len(nodes) == 3
        assert len(edges) == 3
        data_values = sorted(int(d.text) for d in root.findall(f".//{namespace}data"))
        assert data_values == [1, 3, 5]

    def test_path_graph_export(self, paper_query):
        graph, source, target, interval = paper_query
        tspg = generate_tspg(graph, source, target, interval)
        document = to_graphml(tspg)
        root = ElementTree.fromstring(document)
        namespace = "{http://graphml.graphdrawing.org/xmlns}"
        assert len(root.findall(f".//{namespace}edge")) == tspg.num_edges

    def test_write_graphml(self, small_graph, tmp_path):
        path = tmp_path / "graph.graphml"
        write_graphml(small_graph, path)
        assert "graphml" in path.read_text()


class TestAscii:
    def test_adjacency_listing(self, small_graph):
        text = to_ascii(small_graph)
        lines = dict(line.split(":", 1) for line in text.splitlines())
        assert "-[1]-> a" in lines["s"]
        assert "-[5]-> t" in lines["s"]
        assert lines["t"].strip() == ""

    def test_edge_cap(self, small_graph):
        text = to_ascii(small_graph, max_edges_per_vertex=1)
        s_line = [line for line in text.splitlines() if line.startswith("s:")][0]
        assert s_line.count("->") == 1
