"""Unit tests for quick upper-bound graph generation (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.polarity import compute_polarity_times
from repro.core.quick_ubg import quick_upper_bound_graph, quick_upper_bound_with_polarity
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validation import is_subgraph

from repro.testing import PAPER_GQ_EDGES


class TestPaperExample:
    def test_gq_matches_figure3c(self, paper_query):
        graph, source, target, interval = paper_query
        quick = quick_upper_bound_graph(graph, source, target, interval)
        assert set(quick.edge_tuples()) == PAPER_GQ_EDGES

    def test_excluded_edges_of_example4(self, paper_query):
        graph, source, target, interval = paper_query
        quick = quick_upper_bound_graph(graph, source, target, interval)
        assert not quick.has_edge("s", "a", 3)
        assert not quick.has_edge("d", "t", 2)
        assert not quick.has_edge("s", "d", 4)
        assert not quick.has_edge("b", "d", 3)
        assert not quick.has_edge("a", "d", 5)
        assert not quick.has_edge("b", "f", 5)

    def test_gq_is_subgraph_of_original(self, paper_query):
        graph, source, target, interval = paper_query
        quick = quick_upper_bound_graph(graph, source, target, interval)
        assert is_subgraph(quick, graph)

    def test_vertices_are_induced_from_edges(self, paper_query):
        graph, source, target, interval = paper_query
        quick = quick_upper_bound_graph(graph, source, target, interval)
        # a and d appear in no surviving edge so they must not be vertices.
        assert not quick.has_vertex("a")
        assert not quick.has_vertex("d")


class TestBehaviour:
    def test_precomputed_polarity_gives_same_graph(self, paper_query):
        graph, source, target, interval = paper_query
        polarity = compute_polarity_times(graph, source, target, interval)
        with_polarity = quick_upper_bound_graph(graph, source, target, interval, polarity=polarity)
        without = quick_upper_bound_graph(graph, source, target, interval)
        assert with_polarity == without

    def test_wrapper_returns_both_products(self, paper_query):
        graph, source, target, interval = paper_query
        quick, polarity = quick_upper_bound_with_polarity(graph, source, target, interval)
        assert set(quick.edge_tuples()) == PAPER_GQ_EDGES
        assert polarity.earliest_arrival("b") == 2

    def test_unreachable_query_gives_empty_graph(self, unreachable_graph):
        quick = quick_upper_bound_graph(unreachable_graph, "s", "t", (1, 10))
        assert quick.num_edges == 0
        assert quick.num_vertices == 0

    def test_single_edge_query(self):
        graph = TemporalGraph(edges=[("s", "t", 5)])
        quick = quick_upper_bound_graph(graph, "s", "t", (1, 10))
        assert set(quick.edge_tuples()) == {("s", "t", 5)}

    def test_edge_outside_interval_removed(self):
        graph = TemporalGraph(edges=[("s", "t", 5), ("s", "t", 50)])
        quick = quick_upper_bound_graph(graph, "s", "t", (1, 10))
        assert set(quick.edge_tuples()) == {("s", "t", 5)}

    def test_source_in_edges_and_target_out_edges_removed(self):
        graph = TemporalGraph(
            edges=[("s", "t", 5), ("x", "s", 2), ("t", "y", 6), ("s", "x", 3), ("y", "t", 7)]
        )
        quick = quick_upper_bound_graph(graph, "s", "t", (1, 10))
        # Edges into s or out of t can never be on a simple s→t path.
        assert not quick.has_edge("x", "s", 2)
        assert not quick.has_edge("t", "y", 6)

    def test_cycle_only_edges_survive_quick_bound(self):
        # e(e, c, 6)-style edges (only on non-simple temporal paths) are NOT
        # pruned by the quick bound: that is TightUBG's job.
        graph = TemporalGraph(
            edges=[("s", "b", 1), ("b", "c", 2), ("c", "d", 3), ("d", "b", 4), ("b", "t", 5)]
        )
        quick = quick_upper_bound_graph(graph, "s", "t", (1, 6))
        assert quick.has_edge("c", "d", 3)
        assert quick.has_edge("d", "b", 4)
