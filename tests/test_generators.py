"""Tests for the synthetic temporal-graph generators."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.validation import validate_graph
from repro.paths.reachability import can_reach


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: generators.uniform_random_temporal_graph(20, 80, seed=seed),
            lambda seed: generators.preferential_attachment_temporal_graph(30, 120, seed=seed),
            lambda seed: generators.community_temporal_graph(seed=seed),
            lambda seed: generators.bursty_email_graph(seed=seed),
            lambda seed: generators.layered_temporal_graph(seed=seed),
            lambda seed: generators.temporal_cycle_graph(seed=seed),
        ],
    )
    def test_same_seed_same_graph(self, factory):
        assert factory(3) == factory(3)

    def test_different_seed_different_graph(self):
        a = generators.uniform_random_temporal_graph(20, 80, seed=1)
        b = generators.uniform_random_temporal_graph(20, 80, seed=2)
        assert a != b


class TestStructure:
    def test_uniform_graph_size(self):
        graph = generators.uniform_random_temporal_graph(30, 200, num_timestamps=50, seed=0)
        assert graph.num_vertices == 30
        assert 150 <= graph.num_edges <= 200
        assert graph.max_timestamp <= 50
        validate_graph(graph)

    def test_uniform_graph_rejects_tiny_vertex_count(self):
        with pytest.raises(ValueError):
            generators.uniform_random_temporal_graph(1, 10)

    def test_preferential_attachment_is_skewed(self):
        graph = generators.preferential_attachment_temporal_graph(
            100, 900, hub_bias=0.9, seed=4
        )
        degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
        # The busiest vertex should dwarf the median vertex.
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_community_graph_has_expected_vertex_count(self):
        graph = generators.community_temporal_graph(
            num_communities=3, community_size=10, seed=1
        )
        assert graph.num_vertices == 30
        validate_graph(graph)

    def test_bursty_graph_has_quiet_gaps(self):
        graph = generators.bursty_email_graph(
            num_vertices=40, num_bursts=4, edges_per_burst=30,
            burst_width=3, gap_between_bursts=20, seed=9,
        )
        timestamps = sorted({t for (_, _, t) in graph.edge_tuples()})
        gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
        assert max(gaps) >= 15  # there is at least one long quiet period

    def test_layered_graph_reaches_sink(self):
        graph = generators.layered_temporal_graph(seed=2)
        interval = graph.time_interval().as_tuple()
        assert can_reach(graph, "S", "T", interval)

    def test_cycle_graph_contains_ascending_cycle(self):
        graph = generators.temporal_cycle_graph(
            num_vertices=10, num_cycles=5, cycle_length=3, chord_edges=0, seed=3
        )
        # Every planted cycle contributes cycle_length edges with consecutive
        # timestamps; verify at least one closing edge exists (v -> w and a
        # path back w -> v).
        assert graph.num_edges > 0
        validate_graph(graph)

    def test_paper_running_example_shape(self):
        graph = generators.paper_running_example()
        assert graph.num_vertices == 8
        assert graph.num_edges == 14

    def test_with_planted_path(self):
        base = generators.uniform_random_temporal_graph(10, 20, seed=5)
        planted = generators.with_planted_path(base, 0, 9, length=4, start_time=100)
        assert planted.num_edges >= base.num_edges + 4
        assert can_reach(planted, 0, 9, (100, 110))
