"""Unit tests for the vectorized numpy kernels and their fallback path.

Three layers:

* direct kernel equivalence — the numpy polarity sweep and edge-mask scan
  against their pure-Python references, element-wise, over randomized and
  degenerate windows (the windows are pinned by
  ``test_degenerate_intervals.py`` *before* either backend may diverge);
* the no-numpy world — a forced-ImportError fixture proves the whole
  dispatch chain (``numpy_or_none`` → ``effective_kernel_backend`` →
  ``VUG-vectorized``) degrades to the Python kernels with identical
  results, and that :meth:`IndexColumn.numpy` fails loudly rather than
  silently;
* hash-seed determinism — the vectorized engine's results are identical
  across interpreters with different ``PYTHONHASHSEED`` values (set
  iteration order must never leak into kernel outputs).
"""

from __future__ import annotations

import builtins
import json
import os
import subprocess
import sys

import pytest

from repro.algorithms import get_algorithm
from repro.core.kernels import (
    _LAYOUT_KEY,
    numpy_available,
    polarity_id_arrays_numpy,
    quick_mask_numpy,
)
from repro.core.polarity import compute_polarity_id_arrays
from repro.core.quick_ubg import quick_mask_kernel
from repro.graph import columns
from repro.graph.columns import IndexColumn, index_column
from repro.graph.edge import as_interval
from repro.graph.generators import bursty_email_graph, uniform_random_temporal_graph

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy is not installed"
)


@pytest.fixture(scope="module")
def graph():
    g = bursty_email_graph(
        num_vertices=20, num_bursts=5, edges_per_burst=40, burst_width=4,
        gap_between_bursts=4, seed=21,
    )
    g.warm_indices()
    return g


def _windows(graph):
    """Window shapes spanning the degenerate-interval conventions."""
    span = graph.time_interval()
    timestamps = graph.timestamps()
    mid = timestamps[len(timestamps) // 2]
    windows = [
        (span.begin, span.end),                  # everything
        (span.begin, mid),                       # prefix
        (mid, span.end),                         # suffix
        (mid, mid),                              # single instant
        (span.begin - 10, span.begin - 1),       # entirely before: lo == hi
        (span.end + 1, span.end + 10),           # entirely after: lo == hi
    ]
    for earlier, later in zip(timestamps, timestamps[1:]):
        if later - earlier > 1:                  # gap instant: lo == hi
            windows.append((earlier + 1, later - 1))
            break
    return windows


@needs_numpy
class TestKernelEquivalence:
    def test_polarity_tables_match_elementwise(self, graph):
        view = graph.view()
        vertices = sorted(graph.vertices())
        pairs = [
            (vertices[0], vertices[1]),
            (vertices[2], vertices[0]),
            (vertices[1], vertices[1]),          # source == target
            (vertices[0], "no-such-vertex"),     # absent target
            ("no-such-vertex", vertices[0]),     # absent source
        ]
        for source, target in pairs:
            for window in _windows(graph):
                reference = compute_polarity_id_arrays(
                    view, source, target, window
                )
                tables = polarity_id_arrays_numpy(view, source, target, window)
                assert list(tables[0]) == reference[0], (source, target, window)
                assert list(tables[1]) == reference[1], (source, target, window)

    def test_mask_views_match_exactly(self, graph):
        view = graph.view()
        vertices = sorted(graph.vertices())
        for source, target in ((vertices[0], vertices[1]),
                               (vertices[3], vertices[2])):
            for window in _windows(graph):
                tables = compute_polarity_id_arrays(view, source, target, window)
                reference = quick_mask_kernel(view, *tables, window)
                mask = quick_mask_numpy(view, *tables, window)
                assert mask.indices == reference.indices, (source, target, window)
                assert list(mask.vertices()) == list(reference.vertices())
                assert mask.backend == "numpy"

    def test_randomized_equivalence_on_a_multigraph(self):
        import random

        g = uniform_random_temporal_graph(
            num_vertices=15, num_edges=220, num_timestamps=30, seed=99
        )
        g.warm_indices()
        view = g.view()
        rng = random.Random(5)
        vertices = sorted(g.vertices())
        span = g.time_interval()
        for _ in range(60):
            source, target = rng.sample(vertices, 2)
            begin = rng.randint(span.begin, span.end)
            window = (begin, rng.randint(begin, span.end))
            reference = compute_polarity_id_arrays(view, source, target, window)
            tables = polarity_id_arrays_numpy(view, source, target, window)
            assert list(tables[0]) == reference[0], (source, target, window)
            assert list(tables[1]) == reference[1], (source, target, window)
            assert (
                quick_mask_numpy(view, *tables, window).indices
                == quick_mask_kernel(view, *reference, window).indices
            ), (source, target, window)

    def test_layout_is_cached_per_window(self, graph):
        view = graph.view()
        vertices = sorted(graph.vertices())
        window = as_interval(graph.time_interval())
        key = view.slice_bounds(window)
        polarity_id_arrays_numpy(view, vertices[0], vertices[1], window)
        layout = view._kernel_scratch[_LAYOUT_KEY][key]
        polarity_id_arrays_numpy(view, vertices[2], vertices[3], window)
        assert view._kernel_scratch[_LAYOUT_KEY][key] is layout


@needs_numpy
class TestWindowLocalLayouts:
    """The window-local layout LRU: identity, bound, and invalidation."""

    def test_window_layouts_match_full_view_tables(self, graph):
        """Overlapping, nested and degenerate windows all agree with the
        pure-Python sweeps, which never build a layout at all."""
        view = graph.view()
        vertices = sorted(graph.vertices())
        span = graph.time_interval()
        mid = (span.begin + span.end) // 2
        quarter = (span.end - span.begin) // 4
        windows = _windows(graph) + [
            (span.begin + quarter, span.end - quarter),      # nested
            (span.begin, mid + quarter),                     # overlaps prefix
            (mid - quarter, span.end),                       # overlaps suffix
        ]
        for source, target in ((vertices[0], vertices[5]),
                               (vertices[7], vertices[2])):
            for window in windows:
                reference = compute_polarity_id_arrays(
                    view, source, target, window
                )
                tables = polarity_id_arrays_numpy(view, source, target, window)
                assert list(tables[0]) == reference[0], (source, target, window)
                assert list(tables[1]) == reference[1], (source, target, window)

    def test_layout_cache_stays_bounded(self, graph):
        from repro.core.kernels import _LAYOUT_CACHE_CAPACITY

        view = graph.view()
        vertices = sorted(graph.vertices())
        span = graph.time_interval()
        distinct = 0
        seen = set()
        for begin in range(span.begin, span.end + 1):
            window = (begin, span.end)
            key = view.slice_bounds(as_interval(window))
            if key not in seen:
                seen.add(key)
                distinct += 1
            polarity_id_arrays_numpy(view, vertices[0], vertices[1], window)
        assert distinct > _LAYOUT_CACHE_CAPACITY
        cache = view._kernel_scratch[_LAYOUT_KEY]
        assert len(cache) <= _LAYOUT_CACHE_CAPACITY

    def test_layout_cache_hit_moves_entry_to_mru(self, graph):
        from repro.core.kernels import _LAYOUT_CACHE_CAPACITY

        view = graph.view()
        vertices = sorted(graph.vertices())
        span = graph.time_interval()
        first = (span.begin, span.end)
        polarity_id_arrays_numpy(view, vertices[0], vertices[1], first)
        key = view.slice_bounds(as_interval(first))
        kept = view._kernel_scratch[_LAYOUT_KEY][key]
        # Fill the cache with other windows, re-touching the first window
        # before each insert so it stays most-recently-used throughout.
        inserted = 0
        begin = span.begin
        while inserted < 2 * _LAYOUT_CACHE_CAPACITY and begin < span.end:
            begin += 1
            other_key = view.slice_bounds(as_interval((begin, span.end)))
            if other_key == key or other_key in view._kernel_scratch[_LAYOUT_KEY]:
                continue
            polarity_id_arrays_numpy(view, vertices[0], vertices[1], first)
            polarity_id_arrays_numpy(
                view, vertices[0], vertices[1], (begin, span.end)
            )
            inserted += 1
        assert inserted > _LAYOUT_CACHE_CAPACITY
        assert view._kernel_scratch[_LAYOUT_KEY][key] is kept

    def test_mutation_epoch_invalidates_cached_layouts(self):
        g = bursty_email_graph(
            num_vertices=12, num_bursts=3, edges_per_burst=20, burst_width=3,
            gap_between_bursts=5, seed=3,
        )
        g.warm_indices()
        view = g.view()
        vertices = sorted(g.vertices())
        window = g.time_interval()
        polarity_id_arrays_numpy(view, vertices[0], vertices[1], window)
        assert view._kernel_scratch[_LAYOUT_KEY]
        epoch = g.epoch
        span = g.time_interval()
        g.add_edge(vertices[0], vertices[1], span.end + 7)
        assert g.epoch > epoch
        fresh = g.view()
        assert fresh is not view
        assert _LAYOUT_KEY not in fresh._kernel_scratch
        reference = compute_polarity_id_arrays(
            fresh, vertices[0], vertices[1], g.time_interval()
        )
        tables = polarity_id_arrays_numpy(
            fresh, vertices[0], vertices[1], g.time_interval()
        )
        assert list(tables[0]) == reference[0]
        assert list(tables[1]) == reference[1]


@pytest.fixture
def no_numpy(monkeypatch):
    """Simulate an interpreter without numpy for the dispatch chain.

    Resets the memoized module to the unresolved sentinel and makes any
    fresh ``import numpy`` raise, so :func:`numpy_or_none` resolves to
    ``None``; the memo is restored by monkeypatch afterwards.
    """
    real_import = builtins.__import__

    def blocking_import(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy disabled by the no_numpy fixture")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(columns, "_numpy_module", columns._NUMPY_UNRESOLVED)
    monkeypatch.setattr(builtins, "__import__", blocking_import)
    yield


class TestNumpyAbsentFallback:
    def test_numpy_or_none_resolves_to_none(self, no_numpy):
        assert columns.numpy_or_none() is None
        assert columns.numpy_available() is False

    def test_index_column_numpy_raises_loudly(self, no_numpy):
        column = index_column([3, 1, 4])
        assert isinstance(column, IndexColumn)
        with pytest.raises(RuntimeError, match="requires numpy"):
            column.numpy()

    def test_vectorized_engine_degrades_to_python_kernels(self, no_numpy):
        g = bursty_email_graph(
            num_vertices=14, num_bursts=3, edges_per_burst=25, burst_width=3,
            gap_between_bursts=4, seed=8,
        )
        g.warm_indices()
        vertices = sorted(g.vertices())
        span = g.time_interval()
        vectorized = get_algorithm("VUG-vectorized")
        assert vectorized._engine.effective_kernel_backend() == "python"
        reference_engine = get_algorithm("VUG")
        for source, target in ((vertices[0], vertices[1]),
                               (vertices[2], vertices[3])):
            outcome = vectorized.run(g, source, target, (span.begin, span.end))
            reference = reference_engine.run(
                g, source, target, (span.begin, span.end)
            )
            assert outcome.result.vertices == reference.result.vertices
            assert outcome.result.edges == reference.result.edges
            assert outcome.extras["kernel_backend"] == "python"


#: Subprocess payload for the hash-seed sweep: runs the vectorized engine
#: on a deterministic graph and prints a canonical digest of the results.
_HASH_SEED_SCRIPT = """
import json
from repro.algorithms import get_algorithm
from repro.graph.generators import bursty_email_graph

g = bursty_email_graph(
    num_vertices=16, num_bursts=4, edges_per_burst=30, burst_width=4,
    gap_between_bursts=5, seed=5,
)
g.warm_indices()
vertices = sorted(g.vertices())
span = g.time_interval()
engine = get_algorithm("VUG-vectorized")
digest = []
for source, target in ((vertices[0], vertices[3]), (vertices[5], vertices[1]),
                       (vertices[2], vertices[4])):
    outcome = engine.run(g, source, target, (span.begin, span.end))
    digest.append({
        "vertices": sorted(outcome.result.vertices),
        "edges": sorted(outcome.result.edges),
        "space": outcome.space_cost,
    })
print(json.dumps(digest, sort_keys=True))
"""


@needs_numpy
def test_vectorized_results_stable_across_hash_seeds(tmp_path):
    """PYTHONHASHSEED must not leak into the vectorized results.

    The kernels hand ``set`` objects (the mask's vertex ids) to the rest of
    the pipeline; this sweep proves no downstream consumer depends on their
    iteration order.
    """
    script = tmp_path / "hash_seed_probe.py"
    script.write_text(_HASH_SEED_SCRIPT, encoding="utf-8")
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    digests = set()
    for seed in ("0", "1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env, check=True,
        )
        digests.add(completed.stdout.strip())
    assert len(digests) == 1, "results vary with PYTHONHASHSEED"
    assert json.loads(digests.pop()), "probe produced no results"
