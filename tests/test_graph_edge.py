"""Unit tests for TemporalEdge, TimeInterval and the coercion helpers."""

from __future__ import annotations

import pytest

from repro.graph.edge import TemporalEdge, TimeInterval, as_edge, as_interval


class TestTemporalEdge:
    def test_construction_and_fields(self):
        edge = TemporalEdge("u", "v", 5)
        assert edge.source == "u"
        assert edge.target == "v"
        assert edge.timestamp == 5

    def test_timestamp_is_coerced_to_int(self):
        edge = TemporalEdge("u", "v", 5.0)
        assert edge.timestamp == 5
        assert isinstance(edge.timestamp, int)

    def test_unpacking_order_is_u_v_t(self):
        u, v, t = TemporalEdge("a", "b", 3)
        assert (u, v, t) == ("a", "b", 3)

    def test_as_tuple_and_reversed(self):
        edge = TemporalEdge("a", "b", 3)
        assert edge.as_tuple() == ("a", "b", 3)
        assert edge.reversed() == TemporalEdge("b", "a", 3)

    def test_equality_and_hash(self):
        assert TemporalEdge("a", "b", 3) == TemporalEdge("a", "b", 3)
        assert TemporalEdge("a", "b", 3) != TemporalEdge("a", "b", 4)
        assert len({TemporalEdge("a", "b", 3), TemporalEdge("a", "b", 3)}) == 1

    def test_sorting_is_by_timestamp_first(self):
        edges = [TemporalEdge("z", "a", 2), TemporalEdge("a", "z", 1)]
        assert sorted(edges)[0].timestamp == 1


class TestTimeInterval:
    def test_span(self):
        assert TimeInterval(2, 7).span == 6
        assert TimeInterval(5, 5).span == 1

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            TimeInterval(7, 2)

    def test_contains(self):
        window = TimeInterval(2, 7)
        assert 2 in window and 7 in window and 5 in window
        assert 1 not in window and 8 not in window
        assert "3" not in window
        assert window.contains(4)

    def test_intersect(self):
        assert TimeInterval(1, 5).intersect(TimeInterval(3, 9)) == TimeInterval(3, 5)
        assert TimeInterval(1, 2).intersect(TimeInterval(5, 9)) is None

    def test_shift_and_tuple(self):
        assert TimeInterval(1, 5).shift(10) == TimeInterval(11, 15)
        assert TimeInterval(1, 5).as_tuple() == (1, 5)
        begin, end = TimeInterval(1, 5)
        assert (begin, end) == (1, 5)


class TestCoercions:
    def test_as_interval_accepts_tuples_and_lists(self):
        assert as_interval((2, 7)) == TimeInterval(2, 7)
        assert as_interval([2, 7]) == TimeInterval(2, 7)
        window = TimeInterval(2, 7)
        assert as_interval(window) is window

    def test_as_interval_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_interval(5)
        with pytest.raises(TypeError):
            as_interval((1, 2, 3))

    def test_as_edge_accepts_tuples(self):
        assert as_edge(("u", "v", 3)) == TemporalEdge("u", "v", 3)
        edge = TemporalEdge("u", "v", 3)
        assert as_edge(edge) is edge

    def test_as_edge_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_edge(42)
        with pytest.raises(TypeError):
            as_edge(("u", "v"))
