"""Tests for the sharded router (ShardedTspgService, time-range partitioning)."""

from __future__ import annotations

import pytest

from repro.algorithms import available_algorithms
from repro.graph.edge import TimeInterval
from repro.graph.generators import uniform_random_temporal_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.queries.query import TspgQuery
from repro.queries.runner import QueryRunner
from repro.queries.workload import generate_workload
from repro.service import (
    FALLBACK_SHARD,
    ShardedBatchReport,
    ShardedTspgService,
    TspgService,
    partition_time_range,
)


def _random_case(seed: int, num_queries: int = 20, theta: int = 8):
    graph = uniform_random_temporal_graph(
        num_vertices=16, num_edges=100, num_timestamps=30, seed=seed
    )
    workload = generate_workload(
        graph, num_queries=num_queries, theta=theta, seed=seed, name=f"shard-{seed}"
    )
    return graph, list(workload)


# ----------------------------------------------------------------------
# partition geometry
# ----------------------------------------------------------------------
class TestPartitionTimeRange:
    def test_cores_tile_the_span_disjointly(self):
        span = TimeInterval(3, 29)
        pairs = partition_time_range(span, 4, overlap=0)
        assert pairs[0][0].begin == span.begin
        assert pairs[-1][0].end == span.end
        for (left, _), (right, _) in zip(pairs, pairs[1:]):
            assert right.begin == left.end + 1

    def test_extents_widen_and_clip(self):
        span = TimeInterval(0, 19)
        pairs = partition_time_range(span, 2, overlap=5)
        (core_a, ext_a), (core_b, ext_b) = pairs
        assert ext_a == TimeInterval(0, core_a.end + 5)
        assert ext_b == TimeInterval(core_b.begin - 5, 19)

    def test_more_shards_than_timestamps_collapses(self):
        span = TimeInterval(10, 12)  # width 3
        pairs = partition_time_range(span, 10, overlap=0)
        assert len(pairs) == 3
        assert [p[0].span for p in pairs] == [1, 1, 1]

    def test_remainder_spreads_over_leading_shards(self):
        pairs = partition_time_range(TimeInterval(0, 9), 3, overlap=0)
        assert [p[0].span for p in pairs] == [4, 3, 3]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_time_range(TimeInterval(0, 9), 0, overlap=0)
        with pytest.raises(ValueError):
            partition_time_range(TimeInterval(0, 9), 2, overlap=-1)


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class TestRouting:
    def _router(self, **kwargs):
        graph = TemporalGraph(
            edges=[("a", "b", t) for t in range(1, 21)]
            + [("b", "c", t) for t in range(1, 21)]
        )
        return ShardedTspgService(graph, 4, **kwargs)

    def test_narrow_query_routes_to_one_shard(self):
        router = self._router(overlap=2)
        index = router.route((6, 9))
        assert index != FALLBACK_SHARD
        assert router.shards[index].covers(TimeInterval(6, 9))

    def test_wide_query_falls_back(self):
        router = self._router(overlap=0)
        assert router.route((1, 20)) == FALLBACK_SHARD

    def test_interval_clipped_to_graph_span_before_routing(self):
        # [−100, 3] sees exactly the edges of [1, 3]; a shard covers that.
        router = self._router(overlap=2)
        assert router.route((-100, 3)) != FALLBACK_SHARD

    def test_fully_outside_span_stays_on_fallback(self):
        router = self._router(overlap=2)
        assert router.route((900, 950)) == FALLBACK_SHARD

    def test_narrowest_covering_shard_wins(self):
        router = self._router(overlap=6)
        index = router.route((9, 11))
        covering = [s for s in router.shards if s.covers(TimeInterval(9, 11))]
        assert len(covering) > 1  # the overlap makes several shards eligible
        assert router.shards[index].extent.span == min(
            s.extent.span for s in covering
        )

    def test_constructor_validation(self):
        graph = TemporalGraph(edges=[("a", "b", 1)])
        with pytest.raises(ValueError):
            ShardedTspgService(graph, 0)
        with pytest.raises(ValueError):
            ShardedTspgService(graph, 2, overlap=-1)
        with pytest.raises(ValueError):
            ShardedTspgService(graph, 2, max_workers=0)

    def test_edgeless_graph_serves_via_fallback(self):
        graph = TemporalGraph(vertices=["a", "b"])
        router = ShardedTspgService(graph, 3)
        assert router.num_shards == 0
        outcome = router.query("a", "b", (1, 5))
        assert outcome.result.num_edges == 0


# ----------------------------------------------------------------------
# the randomized oracle: sharded == unsharded, every algorithm
# ----------------------------------------------------------------------
class TestShardedMatchesUnsharded:
    def test_200_query_workload_identical_across_all_algorithms(self):
        graph, queries = _random_case(seed=42, num_queries=200, theta=8)
        flat = TspgService(graph)
        router = ShardedTspgService(graph, 4, overlap=8)
        for name in available_algorithms():
            base = flat.run_batch(queries, name, use_cache=False)
            sharded = router.run_batch(
                queries, name, max_workers=4, use_cache=False
            )
            assert sharded.num_completed == len(queries)
            assert sharded.algorithm == base.algorithm
            for shard_item, base_item in zip(sharded.items, base.items):
                assert shard_item.query == base_item.query
                assert (
                    shard_item.outcome.result.vertices
                    == base_item.outcome.result.vertices
                )
                assert (
                    shard_item.outcome.result.edges == base_item.outcome.result.edges
                )

    @pytest.mark.parametrize("shards,overlap", [(1, 0), (2, 0), (3, 8), (7, 3)])
    def test_shard_geometry_sweep_stays_identical(self, shards, overlap):
        graph, queries = _random_case(seed=5, num_queries=30)
        flat = TspgService(graph)
        router = ShardedTspgService(graph, shards, overlap=overlap)
        base = flat.run_batch(queries, use_cache=False)
        sharded = router.run_batch(queries, max_workers=4, use_cache=False)
        for shard_item, base_item in zip(sharded.items, base.items):
            assert (
                shard_item.outcome.result.vertices == base_item.outcome.result.vertices
            )
            assert shard_item.outcome.result.edges == base_item.outcome.result.edges


# ----------------------------------------------------------------------
# merged batch reports
# ----------------------------------------------------------------------
class TestMergedReports:
    def test_items_keep_submission_order_and_routing_counts(self):
        graph, queries = _random_case(seed=13, num_queries=25)
        router = ShardedTspgService(graph, 3, overlap=6)
        report = router.run_batch(queries, max_workers=3, use_cache=False)
        assert isinstance(report, ShardedBatchReport)
        assert [item.query for item in report.items] == queries
        assert sum(report.routed.values()) == len(queries)
        assert report.num_fallback == report.routed.get(FALLBACK_SHARD, 0)
        assert report.num_completed == len(queries)
        assert "fallback" in report.as_row()

    def test_empty_batch_reports_resolved_algorithm(self):
        graph, _ = _random_case(seed=14, num_queries=2)
        router = ShardedTspgService(graph, 2)
        report = router.run_batch([], "VUG")
        assert report.algorithm == "VUG"
        assert report.num_queries == 0

    def test_cache_hits_aggregate_across_shards(self):
        graph, queries = _random_case(seed=15, num_queries=12)
        router = ShardedTspgService(graph, 3, overlap=6)
        cold = router.run_batch(queries, use_cache=True)
        warm = router.run_batch(queries, use_cache=True)
        assert cold.num_cache_hits == 0
        assert warm.num_cache_hits == len(queries)
        stats = router.cache_stats()
        assert stats.hits >= len(queries)

    def test_index_stats_sum_over_services(self):
        graph, _ = _random_case(seed=16)
        router = ShardedTspgService(graph, 2, overlap=0)
        # Fallback indexes the whole graph; shards add their projections.
        assert router.index_stats["sorted_edges"] >= graph.num_edges
        assert len(router.describe()) == router.num_shards + 1

    def test_time_budget_flags_merged_report(self):
        import time as time_module

        from repro.baselines.interface import AlgorithmResult, TspgAlgorithm
        from repro.core.result import PathGraph

        class Slow(TspgAlgorithm):
            name = "Slow"

            def compute(self, graph, source, target, interval):
                time_module.sleep(0.05)
                return AlgorithmResult(
                    algorithm=self.name,
                    result=PathGraph.empty(source, target, interval),
                    elapsed_seconds=0.05,
                )

        graph = TemporalGraph(edges=[("s", f"v{i}", 1 + i % 5) for i in range(8)])
        queries = [TspgQuery("s", f"v{i}", (1, 6)) for i in range(8)]
        router = ShardedTspgService(graph, 2, overlap=5)
        report = router.run_batch(
            queries, Slow(), max_workers=2, use_cache=False,
            time_budget_seconds=0.08,
        )
        assert report.timed_out
        assert any(item.skipped for item in report.items)


# ----------------------------------------------------------------------
# epoch awareness
# ----------------------------------------------------------------------
class TestShardEpochTracking:
    def test_mutation_rebuilds_shards(self):
        graph, queries = _random_case(seed=17, num_queries=5)
        router = ShardedTspgService(graph, 3, overlap=6)
        before = router.shards
        graph.add_edge("new-u", "new-v", 999)  # stretches the time span
        outcome = router.query("new-u", "new-v", (990, 1000))
        assert outcome.result.num_edges == 1
        after = router.shards
        assert after != before
        assert after[-1].extent.end == 999

    def test_sharded_results_stay_correct_after_mutation(self):
        graph, queries = _random_case(seed=18, num_queries=15)
        router = ShardedTspgService(graph, 3, overlap=8)
        flat = TspgService(graph)
        router.run_batch(queries, use_cache=True)  # populate caches
        query = queries[0]
        graph.add_edge(query.source, query.target, query.interval.begin)
        again = router.submit(query)
        direct = flat.submit(query, use_cache=False)
        assert again.result.vertices == direct.result.vertices
        assert again.result.edges == direct.result.edges


# ----------------------------------------------------------------------
# QueryRunner wiring
# ----------------------------------------------------------------------
class TestRunnerSharding:
    def test_sharded_runner_matches_unsharded(self):
        from repro.algorithms import get_algorithm
        from repro.queries.query import QueryWorkload

        graph, queries = _random_case(seed=19, num_queries=10)
        workload = QueryWorkload("wl", queries)
        plain = QueryRunner(keep_results=True)
        sharded = QueryRunner(keep_results=True, num_shards=3, shard_overlap=8)
        base = plain.run_workload(get_algorithm("VUG"), graph, workload)
        routed = sharded.run_workload(get_algorithm("VUG"), graph, workload)
        assert routed.num_completed == base.num_completed
        for a, b in zip(routed.results, base.results):
            assert a.vertices == b.vertices
            assert a.edges == b.edges

    def test_runner_builds_sharded_service(self):
        graph, _ = _random_case(seed=20)
        runner = QueryRunner(num_shards=2)
        service = runner._service_for(graph)
        assert isinstance(service, ShardedTspgService)
        assert runner._service_for(graph) is service

    def test_runner_snapshot_boot(self, tmp_path):
        from repro.algorithms import get_algorithm
        from repro.store import save_snapshot

        graph, queries = _random_case(seed=23, num_queries=5)
        path = tmp_path / "runner.tspgsnap"
        save_snapshot(graph, path)
        runner = QueryRunner(use_cache=True)
        loaded = runner.graph_from_snapshot(path)
        assert loaded == graph
        assert id(loaded) in runner._services
        outcome = runner.run_single(get_algorithm("VUG"), loaded, queries[0])
        assert outcome.result is not None
