"""Tests for the batch query service (TspgService, ResultCache, index warming)."""

from __future__ import annotations

import time

import pytest

from repro.algorithms import get_algorithm
from repro.analysis.oracle import brute_force_tspg
from repro.baselines.interface import AlgorithmResult, TspgAlgorithm
from repro.core.result import PathGraph
from repro.graph.generators import uniform_random_temporal_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.queries.query import QueryWorkload, TspgQuery
from repro.queries.runner import QueryRunner
from repro.queries.workload import generate_workload
from repro.service import ResultCache, TspgService


def _random_case(seed: int):
    """One randomized graph plus a reachable workload over it."""
    graph = uniform_random_temporal_graph(
        num_vertices=18, num_edges=120, num_timestamps=30, seed=seed
    )
    workload = generate_workload(
        graph, num_queries=12, theta=8, seed=seed, name=f"svc-{seed}"
    )
    return graph, list(workload)


class SlowAlgorithm(TspgAlgorithm):
    """Test double: sleeps per query so time budgets trigger deterministically."""

    name = "Slow"

    def __init__(self, delay: float = 0.05, timed_out: bool = False) -> None:
        self.delay = delay
        self.timed_out = timed_out
        self.calls = 0

    def compute(self, graph, source, target, interval) -> AlgorithmResult:
        self.calls += 1
        time.sleep(self.delay)
        return AlgorithmResult(
            algorithm=self.name,
            result=PathGraph.empty(source, target, interval),
            elapsed_seconds=self.delay,
            timed_out=self.timed_out,
        )


class FailingAlgorithm(TspgAlgorithm):
    """Test double: always raises from compute()."""

    name = "Failing"

    def compute(self, graph, source, target, interval) -> AlgorithmResult:
        raise RuntimeError("worker blew up")


# ----------------------------------------------------------------------
# oracle equivalence: serial, parallel and cached paths
# ----------------------------------------------------------------------
class TestServiceMatchesOracle:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_serial_batch_matches_brute_force(self, seed):
        graph, queries = _random_case(seed)
        service = TspgService(graph)
        report = service.run_batch(queries, max_workers=1, use_cache=False)
        assert report.num_completed == len(queries)
        for item in report.items:
            oracle = brute_force_tspg(
                graph, item.query.source, item.query.target, item.query.interval
            )
            assert item.outcome.result.vertices == oracle.vertices
            assert item.outcome.result.edges == oracle.edges

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_parallel_batch_matches_serial_and_oracle(self, seed):
        graph, queries = _random_case(seed)
        service = TspgService(graph)
        serial = service.run_batch(queries, max_workers=1, use_cache=False)
        parallel = service.run_batch(queries, max_workers=4, use_cache=False)
        assert parallel.num_workers == 4
        assert parallel.num_completed == len(queries)
        for serial_item, parallel_item in zip(serial.items, parallel.items):
            assert parallel_item.outcome.result.same_members(serial_item.outcome.result)
        for item in parallel.items:
            oracle = brute_force_tspg(
                graph, item.query.source, item.query.target, item.query.interval
            )
            assert item.outcome.result.same_members(oracle)

    def test_cached_batch_matches_oracle(self):
        graph, queries = _random_case(seed=4)
        service = TspgService(graph)
        cold = service.run_batch(queries, use_cache=True)
        warm = service.run_batch(queries, use_cache=True)
        assert cold.num_cache_hits == 0
        assert warm.num_cache_hits == len(queries)
        for item in warm.items:
            oracle = brute_force_tspg(
                graph, item.query.source, item.query.target, item.query.interval
            )
            assert item.outcome.result.same_members(oracle)


# ----------------------------------------------------------------------
# single-query API and cache semantics
# ----------------------------------------------------------------------
class TestSubmit:
    def test_cache_hit_is_flagged_and_shares_result(self, paper_query):
        graph, source, target, interval = paper_query
        service = TspgService(graph)
        cold = service.query(source, target, interval)
        hit = service.query(source, target, interval)
        assert "cache_hit" not in cold.extras
        assert hit.extras["cache_hit"] is True
        assert hit.result is cold.result
        assert hit.space_cost == cold.space_cost

    def test_cache_key_separates_algorithms_and_intervals(self, paper_query):
        graph, source, target, interval = paper_query
        service = TspgService(graph)
        service.query(source, target, interval, algorithm="VUG")
        naive = service.query(source, target, interval, algorithm="Naive")
        assert "cache_hit" not in naive.extras
        shifted = service.query(source, target, (interval.begin, interval.end - 1))
        assert "cache_hit" not in shifted.extras

    def test_use_cache_false_bypasses_memoization(self, paper_query):
        graph, source, target, interval = paper_query
        service = TspgService(graph)
        service.query(source, target, interval, use_cache=False)
        again = service.query(source, target, interval, use_cache=False)
        assert "cache_hit" not in again.extras
        assert service.cache_stats().size == 0

    def test_refresh_indices_deprecated_but_still_drops_results(self, paper_query):
        graph, source, target, interval = paper_query
        service = TspgService(graph)
        service.query(source, target, interval)
        assert service.cache_stats().size == 1
        with pytest.deprecated_call():
            service.refresh_indices()
        assert service.cache_stats().size == 0

    def test_algorithm_instances_are_shared(self, paper_query):
        graph, source, target, interval = paper_query
        service = TspgService(graph)
        first = service._resolve("VUG")
        second = service._resolve("VUG")
        assert first is second

    def test_timed_out_results_are_not_memoized(self, paper_query):
        graph, source, target, interval = paper_query
        service = TspgService(graph)
        flaky = SlowAlgorithm(delay=0.0, timed_out=True)
        query = TspgQuery(source, target, interval)
        service.submit(query, flaky)
        again = service.submit(query, flaky)
        assert "cache_hit" not in again.extras
        assert flaky.calls == 2

    def test_same_name_different_config_do_not_share_cache(self, paper_query):
        graph, source, target, interval = paper_query
        service = TspgService(graph)
        capped = get_algorithm("Naive", max_paths=1000)
        uncapped = get_algorithm("Naive")
        assert capped.name == uncapped.name
        service.query(source, target, interval, algorithm=capped)
        fresh = service.query(source, target, interval, algorithm=uncapped)
        assert "cache_hit" not in fresh.extras
        hit = service.query(source, target, interval, algorithm=capped)
        assert hit.extras["cache_hit"] is True


# ----------------------------------------------------------------------
# epoch-tracked invalidation
# ----------------------------------------------------------------------
class TestEpochTracking:
    def test_mutation_between_identical_queries_forces_recompute(self):
        # The acceptance scenario: edit the graph between two identical
        # queries; the second must recompute (not serve the stale cache)
        # and must see the new edge.
        graph = TemporalGraph(edges=[("s", "a", 1), ("a", "t", 3)])
        service = TspgService(graph)
        counting = SlowAlgorithm(delay=0.0)
        query = TspgQuery("s", "t", (1, 5))

        first = service.submit(query, counting)
        assert counting.calls == 1
        graph.add_edge("s", "b", 2)  # mutate between the two identical queries
        second = service.submit(query, counting)
        assert counting.calls == 2, "stale cached result was served"
        assert "cache_hit" not in second.extras

    def test_recomputed_result_reflects_the_new_edge(self):
        graph = TemporalGraph(edges=[("s", "a", 1), ("a", "t", 3)])
        service = TspgService(graph)
        before = service.query("s", "t", (1, 5))
        assert "b" not in before.result.vertices
        graph.add_edge("s", "b", 2)
        graph.add_edge("b", "t", 4)
        after = service.query("s", "t", (1, 5))
        assert "cache_hit" not in after.extras
        assert "b" in after.result.vertices
        oracle = brute_force_tspg(graph, "s", "t", (1, 5))
        assert after.result.same_members(oracle)

    def test_indices_rewarm_transparently(self):
        graph = TemporalGraph(edges=[("s", "a", 1), ("a", "t", 3)])
        service = TspgService(graph)
        assert service.index_stats["sorted_edges"] == 2
        graph.add_edge("a", "s", 2)
        service.query("s", "t", (1, 5))
        assert service.index_stats["sorted_edges"] == 3
        assert service.warmed_epoch == graph.epoch

    def test_unchanged_graph_still_hits_the_cache(self):
        graph = TemporalGraph(edges=[("s", "a", 1), ("a", "t", 3)])
        service = TspgService(graph)
        service.query("s", "t", (1, 5))
        hit = service.query("s", "t", (1, 5))
        assert hit.extras.get("cache_hit") is True

    def test_run_batch_detects_mutation(self):
        graph = TemporalGraph(edges=[("s", "a", 1), ("a", "t", 3)])
        service = TspgService(graph)
        queries = [TspgQuery("s", "t", (1, 5))]
        cold = service.run_batch(queries, use_cache=True)
        assert cold.num_cache_hits == 0
        graph.add_edge("s", "t", 2)
        recomputed = service.run_batch(queries, use_cache=True)
        assert recomputed.num_cache_hits == 0
        oracle = brute_force_tspg(graph, "s", "t", (1, 5))
        assert recomputed.items[0].outcome.result.same_members(oracle)

    def test_no_op_mutation_does_not_invalidate(self):
        graph = TemporalGraph(edges=[("s", "a", 1), ("a", "t", 3)])
        service = TspgService(graph)
        service.query("s", "t", (1, 5))
        graph.add_edge("s", "a", 1)  # duplicate: returns False, no epoch bump
        graph.add_vertex("s")  # existing vertex: no epoch bump
        hit = service.query("s", "t", (1, 5))
        assert hit.extras.get("cache_hit") is True

    def test_cache_keys_embed_the_epoch(self, paper_query):
        graph, source, target, interval = paper_query
        service = TspgService(graph)
        algorithm = service._resolve("VUG")
        key_before = service._cache_key(TspgQuery(source, target, interval), algorithm)
        graph.add_edge("brand-new-vertex", source, interval.begin)
        service.query(source, target, interval)  # triggers the rewarm
        key_after = service._cache_key(TspgQuery(source, target, interval), algorithm)
        assert key_before != key_after


# ----------------------------------------------------------------------
# time budgets
# ----------------------------------------------------------------------
class TestTimeBudget:
    def _queries(self, count: int):
        return [TspgQuery("s", f"v{i}", (1, 10)) for i in range(count)]

    def _graph(self, count: int) -> TemporalGraph:
        return TemporalGraph(edges=[("s", f"v{i}", 1) for i in range(count)])

    def test_serial_budget_skips_remaining_queries(self):
        queries = self._queries(6)
        service = TspgService(self._graph(6))
        slow = SlowAlgorithm(delay=0.05)
        report = service.run_batch(
            queries, slow, max_workers=1, use_cache=False, time_budget_seconds=0.12
        )
        assert report.timed_out
        assert 0 < report.num_completed < len(queries)
        assert any(item.skipped for item in report.items)
        assert all(item.outcome is None for item in report.items if item.skipped)

    def test_parallel_budget_flags_timeout(self):
        queries = self._queries(8)
        service = TspgService(self._graph(8))
        slow = SlowAlgorithm(delay=0.1)
        report = service.run_batch(
            queries, slow, max_workers=2, use_cache=False, time_budget_seconds=0.15
        )
        assert report.timed_out
        assert any(item.skipped for item in report.items)

    def test_no_budget_completes_everything(self):
        queries = self._queries(3)
        service = TspgService(self._graph(3))
        report = service.run_batch(queries, SlowAlgorithm(delay=0.01), max_workers=2)
        assert not report.timed_out
        assert report.num_completed == 3

    def test_parallel_worker_exception_propagates(self):
        service = TspgService(self._graph(4))
        with pytest.raises(RuntimeError, match="worker blew up"):
            service.run_batch(self._queries(4), FailingAlgorithm(), max_workers=2)

    def test_parallel_exception_not_masked_by_budget(self):
        # A worker that raises after the budget expires must still surface
        # its exception instead of being reported as a clean budget skip.
        service = TspgService(self._graph(4))

        class LateFailure(SlowAlgorithm):
            def compute(self, graph, source, target, interval):
                time.sleep(0.05)
                raise RuntimeError("late failure")

        with pytest.raises(RuntimeError, match="late failure"):
            service.run_batch(
                self._queries(4),
                LateFailure(),
                max_workers=2,
                time_budget_seconds=0.01,
            )

    def test_worker_count_validation(self):
        service = TspgService(self._graph(2))
        with pytest.raises(ValueError):
            service.run_batch(self._queries(2), max_workers=0)
        with pytest.raises(ValueError):
            TspgService(self._graph(2), max_workers=0)


# ----------------------------------------------------------------------
# the LRU cache
# ----------------------------------------------------------------------
class TestResultCache:
    def _key(self, tag: str):
        return ("s", "t", (1, 2), tag)

    def test_lru_eviction_order(self):
        cache = ResultCache(max_size=2)
        cache.put(self._key("a"), "A")
        cache.put(self._key("b"), "B")
        assert cache.get(self._key("a")) == "A"  # refresh "a"
        cache.put(self._key("c"), "C")  # evicts "b", the least recently used
        assert cache.get(self._key("b")) is None
        assert cache.get(self._key("a")) == "A"
        assert cache.get(self._key("c")) == "C"
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2

    def test_counters_and_hit_rate(self):
        cache = ResultCache(max_size=4)
        assert cache.get(self._key("x")) is None
        cache.put(self._key("x"), "X")
        assert cache.get(self._key("x")) == "X"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_disables_cache(self):
        cache = ResultCache(max_size=0)
        cache.put(self._key("a"), "A")
        assert cache.get(self._key("a")) is None
        assert not cache.enabled
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_size=-1)

    def test_overwrite_same_key_keeps_size(self):
        cache = ResultCache(max_size=2)
        cache.put(self._key("a"), "A1")
        cache.put(self._key("a"), "A2")
        assert cache.get(self._key("a")) == "A2"
        assert len(cache) == 1
        assert cache.stats().evictions == 0

    def test_clear_keeps_counters(self):
        cache = ResultCache(max_size=2)
        cache.put(self._key("a"), "A")
        cache.get(self._key("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_service_eviction_recomputes(self, paper_query):
        graph, source, target, interval = paper_query
        service = TspgService(graph, cache_size=1)
        service.query(source, target, interval)
        service.query(target, source, interval)  # evicts the first entry
        refetched = service.query(source, target, interval)
        assert "cache_hit" not in refetched.extras
        assert service.cache_stats().evictions >= 1


# ----------------------------------------------------------------------
# index warming on the graph
# ----------------------------------------------------------------------
class TestIndexWarming:
    def test_warm_indices_reports_sizes(self, paper_graph):
        stats = paper_graph.warm_indices()
        assert stats["sorted_edges"] == paper_graph.num_edges
        assert stats["distinct_timestamps"] == len(paper_graph.timestamps())
        assert stats["vertex_timestamp_views"] == 2 * paper_graph.num_vertices

    def test_timestamp_views_invalidate_on_mutation(self):
        graph = TemporalGraph(edges=[("a", "b", 1), ("a", "b", 3)])
        assert graph.out_timestamps("a") == [1, 3]
        graph.add_edge("a", "b", 2)
        assert graph.out_timestamps("a") == [1, 2, 3]
        assert graph.in_timestamps("b") == [1, 2, 3]

    def test_warm_views_are_defensive_copies(self):
        graph = TemporalGraph(edges=[("a", "b", 1)])
        graph.warm_indices()
        view = graph.out_timestamps("a")
        view.append(99)
        assert graph.out_timestamps("a") == [1]


# ----------------------------------------------------------------------
# the refactored runner delegates to the service
# ----------------------------------------------------------------------
class TestRunnerDelegation:
    def test_run_workload_semantics_preserved(self):
        graph, queries = _random_case(seed=9)
        workload = generate_workload(graph, num_queries=6, theta=8, seed=9, name="wl")
        runner = QueryRunner(keep_results=True)
        outcome = runner.run_workload(get_algorithm("VUG"), graph, workload)
        assert outcome.num_completed == len(workload)
        assert not outcome.timed_out
        assert len(outcome.results) == len(workload)
        for query, result in zip(workload, outcome.results):
            oracle = brute_force_tspg(graph, query.source, query.target, query.interval)
            assert result.same_members(oracle)
        assert outcome.max_space >= outcome.min_space > 0

    def test_runner_time_budget_still_cuts_off(self):
        graph = TemporalGraph(edges=[("s", f"v{i}", 1) for i in range(6)])
        queries = [TspgQuery("s", f"v{i}", (1, 10)) for i in range(6)]
        workload = QueryWorkload("budget", queries)
        runner = QueryRunner(time_budget_seconds=0.12)
        outcome = runner.run_workload(SlowAlgorithm(delay=0.05), graph, workload)
        assert outcome.timed_out
        assert outcome.num_completed < len(workload)
        assert outcome.reported_seconds == float("inf")

    def test_runner_reuses_service_per_graph(self):
        graph = TemporalGraph(edges=[("s", "t", 1), ("s", "a", 2), ("a", "t", 3)])
        runner = QueryRunner()
        first = runner._service_for(graph)
        second = runner._service_for(graph)
        assert first is second

    def test_runner_opt_in_cache(self):
        graph = TemporalGraph(edges=[("s", "a", 1), ("a", "t", 3)])
        workload = QueryWorkload("cached", [TspgQuery("s", "t", (1, 3))])
        runner = QueryRunner(use_cache=True)
        algorithm = get_algorithm("VUG")
        runner.run_workload(algorithm, graph, workload)
        runner.run_workload(algorithm, graph, workload)
        stats = runner._service_for(graph).cache_stats()
        assert stats.hits >= 1

    def test_runner_cache_toggle_after_first_run(self):
        graph = TemporalGraph(edges=[("s", "a", 1), ("a", "t", 3)])
        workload = QueryWorkload("toggle", [TspgQuery("s", "t", (1, 3))])
        runner = QueryRunner()  # use_cache=False builds the service first
        algorithm = get_algorithm("VUG")
        runner.run_workload(algorithm, graph, workload)
        runner.use_cache = True
        runner.run_workload(algorithm, graph, workload)
        runner.run_workload(algorithm, graph, workload)
        assert runner._service_for(graph).cache_stats().hits >= 1

    def test_run_single_skips_index_warming_when_uncached(self):
        graph = TemporalGraph(edges=[("s", "a", 1), ("a", "t", 3)])
        runner = QueryRunner()
        outcome = runner.run_single(get_algorithm("VUG"), graph, TspgQuery("s", "t", (1, 3)))
        assert outcome.result.num_edges == 2
        assert not runner._services  # no service (and no warming) was created
