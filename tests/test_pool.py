"""WorkerPool lifecycle: reuse across batches, clean close, death recovery.

Covers the pool satellite of the serving-pool PR:

* batches routed through one pool reuse the same worker processes (and
  therefore their snapshot-booted services) instead of re-forking;
* ``close()`` is clean and idempotent, the context manager closes, and a
  closed pool degrades the services back to per-batch executors;
* a worker death surfaces as a clear :class:`WorkerPoolError` (not the
  stdlib's opaque ``BrokenProcessPool``) and the pool recovers — the next
  batch forks fresh workers and succeeds.
"""

from __future__ import annotations

import os

import pytest

from repro.graph.generators import uniform_random_temporal_graph
from repro.queries.runner import QueryRunner
from repro.queries.workload import generate_workload
from repro.service import (
    ShardedTspgService,
    TspgService,
    WorkerPool,
    WorkerPoolError,
)
from repro.store import SnapshotError, save_snapshot


def _die() -> None:  # pragma: no cover - runs (and dies) in a worker
    os._exit(1)


def _case(seed: int, num_queries: int = 10):
    graph = uniform_random_temporal_graph(
        num_vertices=14, num_edges=90, num_timestamps=30, seed=seed
    )
    queries = list(
        generate_workload(
            graph, num_queries=num_queries, theta=8, seed=seed,
            name=f"pool-{seed}",
        )
    )
    return graph, queries


class TestLifecycle:
    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            WorkerPool(max_workers=0)

    def test_workers_fork_lazily(self):
        pool = WorkerPool(max_workers=2)
        assert pool.stats()["live"] == 0
        assert pool.stats()["generation"] == 0
        pool.close()

    def test_close_is_clean_and_idempotent(self):
        pool = WorkerPool(max_workers=1)
        assert pool.harvest(pool.submit(os.getpid)) > 0
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(WorkerPoolError, match="closed"):
            pool.submit(os.getpid)

    def test_context_manager_closes(self):
        with WorkerPool(max_workers=1) as pool:
            assert not pool.closed
        assert pool.closed


class TestReuseAcrossBatches:
    def test_flat_service_reuses_one_worker_set(self, tmp_path):
        graph, queries = _case(seed=41)
        path = tmp_path / "g.tspgsnap"
        save_snapshot(graph, path)
        baseline = TspgService(graph).run_batch(queries, use_cache=False)
        with WorkerPool(max_workers=2) as pool:
            service = TspgService.from_snapshot(path, pool=pool)
            first = service.run_batch(
                queries, max_workers=2, use_cache=False, executor="processes"
            )
            second = service.run_batch(
                queries, max_workers=2, use_cache=False, executor="processes"
            )
            stats = pool.stats()
            # Two batches served by ONE worker set: no re-fork happened.
            assert stats["batches_served"] == 2
            assert stats["generation"] == 1
            # The long-lived workers keep answering exactly like threads.
            for report in (first, second):
                assert report.executor == "processes"
                for item, base in zip(report.items, baseline.items):
                    assert item.outcome.result.vertices == base.outcome.result.vertices
                    assert item.outcome.result.edges == base.outcome.result.edges

    def test_worker_processes_persist_across_submissions(self):
        with WorkerPool(max_workers=2) as pool:
            first = {pool.harvest(pool.submit(os.getpid)) for _ in range(6)}
            second = {pool.harvest(pool.submit(os.getpid)) for _ in range(6)}
            assert first, "no worker answered"
            # Same pool, same processes: nothing new was forked.
            assert second <= first | second
            assert len(first | second) <= 2
            assert pool.stats()["generation"] == 1

    def test_sharded_router_reuses_the_pool(self, tmp_path):
        graph, queries = _case(seed=43)
        shard_dir = tmp_path / "shards"
        ShardedTspgService(graph, 2, overlap=8).save_shards(shard_dir)
        baseline = TspgService(graph).run_batch(queries, use_cache=False)
        with WorkerPool(max_workers=2) as pool:
            router = ShardedTspgService.from_shard_snapshots(shard_dir, pool=pool)
            assert router.pool is pool
            for _ in range(2):
                report = router.run_batch(
                    queries, max_workers=2, use_cache=False, executor="processes"
                )
                assert report.executor == "processes"
                for item, base in zip(report.items, baseline.items):
                    assert item.outcome.result.edges == base.outcome.result.edges
            assert pool.stats()["batches_served"] == 2
            assert pool.stats()["generation"] == 1

    def test_runner_wires_the_pool_through(self, tmp_path):
        graph, _ = _case(seed=47)
        path = tmp_path / "g.tspgsnap"
        save_snapshot(graph, path)
        with WorkerPool(max_workers=2) as pool:
            runner = QueryRunner(executor="processes", pool=pool)
            booted = runner.graph_from_snapshot(path)
            service = runner._service_for(booted)
            assert service.pool is pool

    def test_closed_pool_degrades_to_per_batch_executor(self, tmp_path):
        graph, queries = _case(seed=53, num_queries=6)
        path = tmp_path / "g.tspgsnap"
        save_snapshot(graph, path)
        pool = WorkerPool(max_workers=2)
        service = TspgService.from_snapshot(path, pool=pool)
        pool.close()
        report = service.run_batch(
            queries, max_workers=2, use_cache=False, executor="processes"
        )
        # Still the process backend — just a per-batch executor again.
        assert report.executor == "processes"
        assert pool.stats()["batches_served"] == 0


class TestWorkerCacheStaleness:
    def test_rewarmed_snapshot_at_same_path_reboots_workers(self, tmp_path):
        # Regression: a persistent pool outlives service generations, so a
        # worker's cached booted service must not survive the snapshot
        # file being rewritten with a different graph.
        graph_a, queries = _case(seed=67)
        graph_b = uniform_random_temporal_graph(
            num_vertices=14, num_edges=90, num_timestamps=30, seed=68
        )
        path = tmp_path / "g.tspgsnap"
        with WorkerPool(max_workers=2) as pool:
            save_snapshot(graph_a, path)
            service_a = TspgService.from_snapshot(path, pool=pool)
            first = service_a.run_batch(
                queries, max_workers=2, use_cache=False, executor="processes"
            )
            assert first.executor == "processes"
            # Re-warm a *different* graph over the same path and boot a
            # fresh parent service from it.
            save_snapshot(graph_b, path)
            service_b = TspgService.from_snapshot(path, pool=pool)
            second = service_b.run_batch(
                queries, max_workers=2, use_cache=False, executor="processes"
            )
            assert second.executor == "processes"
            expected = TspgService(graph_b).run_batch(queries, use_cache=False)
            for item, base in zip(second.items, expected.items):
                assert item.outcome.result.vertices == base.outcome.result.vertices
                assert item.outcome.result.edges == base.outcome.result.edges


    def test_rewrite_under_a_live_parent_fails_loudly(self, tmp_path):
        # Regression (live-reproduced in review): if another writer
        # rewrites the snapshot a *still-attached* parent serves from,
        # workers must refuse to answer over the different graph — the
        # parent's epoch guard cannot see the file change, so the worker's
        # boot-epoch check is the last line of defence.
        graph_a, queries = _case(seed=73, num_queries=4)
        graph_b = uniform_random_temporal_graph(
            num_vertices=10, num_edges=40, num_timestamps=15, seed=74
        )
        path = tmp_path / "g.tspgsnap"
        save_snapshot(graph_a, path)
        service = TspgService.from_snapshot(path)
        save_snapshot(graph_b, path)  # rewrite behind the live parent
        if service.graph.epoch == graph_b.epoch:
            pytest.skip("graphs coincidentally share an epoch")
        with pytest.raises(SnapshotError, match="rewritten since"):
            service.run_batch(
                queries, max_workers=2, use_cache=False, executor="processes"
            )

    def test_shared_pool_respects_each_services_default_algorithm(self, tmp_path):
        # Regression: the worker-side service cache must key on the
        # default algorithm too — two services sharing one pool and one
        # snapshot must each get batches computed by *their* default.
        graph, queries = _case(seed=71, num_queries=4)
        path = tmp_path / "g.tspgsnap"
        save_snapshot(graph, path)
        with WorkerPool(max_workers=2) as pool:
            vug = TspgService.from_snapshot(
                path, default_algorithm="VUG", pool=pool
            )
            ept = TspgService.from_snapshot(
                path, default_algorithm="EPdtTSG", pool=pool
            )
            first = vug.run_batch(
                queries, max_workers=2, use_cache=False, executor="processes"
            )
            second = ept.run_batch(
                queries, max_workers=2, use_cache=False, executor="processes"
            )
            assert first.executor == second.executor == "processes"
            assert all(item.outcome.algorithm == "VUG" for item in first.items)
            assert all(item.outcome.algorithm == "EPdtTSG" for item in second.items)


class TestWorkerDeathRecovery:
    def test_death_surfaces_a_clear_error_and_pool_recovers(self, tmp_path):
        graph, queries = _case(seed=59, num_queries=6)
        path = tmp_path / "g.tspgsnap"
        save_snapshot(graph, path)
        with WorkerPool(max_workers=2) as pool:
            service = TspgService.from_snapshot(path, pool=pool)
            ok = service.run_batch(
                queries, max_workers=2, use_cache=False, executor="processes"
            )
            assert ok.executor == "processes"
            with pytest.raises(WorkerPoolError, match="worker process died"):
                pool.harvest(pool.submit(_die))
            # The broken executor was discarded: the next batch forks a
            # fresh worker set and serves normally.
            recovered = service.run_batch(
                queries, max_workers=2, use_cache=False, executor="processes"
            )
            assert recovered.executor == "processes"
            assert recovered.num_completed == len(queries)
            assert pool.stats()["generation"] == 2

    def test_attach_pool_after_construction(self, tmp_path):
        graph, queries = _case(seed=61, num_queries=6)
        path = tmp_path / "g.tspgsnap"
        save_snapshot(graph, path)
        service = TspgService.from_snapshot(path)
        with WorkerPool(max_workers=2) as pool:
            service.attach_pool(pool)
            assert service.pool is pool
            report = service.run_batch(
                queries, max_workers=2, use_cache=False, executor="processes"
            )
            assert report.executor == "processes"
            assert pool.stats()["batches_served"] == 1
            service.attach_pool(None)
            assert service.pool is None
