"""Tests for the algorithm registry and the VUG adapter."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    ALGORITHM_CLASSES,
    PAPER_ALGORITHMS,
    VUGAlgorithm,
    available_algorithms,
    get_algorithm,
)
from repro.baselines.interface import TspgAlgorithm

from repro.testing import PAPER_TSPG_EDGES


class TestRegistry:
    def test_paper_algorithms_registered(self):
        assert set(PAPER_ALGORITHMS) <= set(ALGORITHM_CLASSES)
        assert PAPER_ALGORITHMS == ["EPdtTSG", "EPesTSG", "EPtgTSG", "VUG"]

    def test_available_algorithms_sorted(self):
        names = available_algorithms()
        assert names == sorted(names)
        assert "VUG" in names

    def test_get_algorithm_instantiates(self):
        for name in available_algorithms():
            algorithm = get_algorithm(name)
            assert isinstance(algorithm, TspgAlgorithm)
            assert algorithm.name == name

    def test_get_algorithm_unknown_name(self):
        with pytest.raises(KeyError):
            get_algorithm("does-not-exist")

    def test_constructor_options_forwarded(self):
        algorithm = get_algorithm("EPdtTSG", max_paths=5)
        assert algorithm.max_paths == 5


class TestVUGAdapter:
    def test_adapter_matches_paper_example(self, paper_query):
        graph, source, target, interval = paper_query
        outcome = VUGAlgorithm().run(graph, source, target, interval)
        assert set(outcome.result.edges) == PAPER_TSPG_EDGES
        assert outcome.extras["quick_ubg_edges"] == 8
        assert outcome.extras["tight_ubg_edges"] == 5
        assert "phase_timings" in outcome.extras
        assert outcome.space_cost > 0

    def test_all_registered_algorithms_agree_on_paper_example(self, paper_query):
        graph, source, target, interval = paper_query
        results = {
            name: get_algorithm(name).run(graph, source, target, interval).result
            for name in available_algorithms()
        }
        reference = results["VUG"]
        for name, result in results.items():
            assert result.same_members(reference), name
