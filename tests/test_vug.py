"""Integration tests for the VUG framework and the public generate_tspg API."""

from __future__ import annotations

import pytest

from repro import generate_tspg
from repro.analysis.oracle import brute_force_tspg
from repro.core.vug import VUG, generate_tspg_report
from repro.graph.generators import (
    community_temporal_graph,
    layered_temporal_graph,
    temporal_cycle_graph,
    uniform_random_temporal_graph,
)
from repro.graph.temporal_graph import TemporalGraph

from repro.testing import PAPER_TSPG_EDGES, PAPER_TSPG_VERTICES


class TestPaperExample:
    def test_generate_tspg_matches_figure1c(self, paper_query):
        graph, source, target, interval = paper_query
        tspg = generate_tspg(graph, source, target, interval)
        assert set(tspg.edges) == PAPER_TSPG_EDGES
        assert set(tspg.vertices) == PAPER_TSPG_VERTICES

    def test_report_exposes_intermediate_graphs(self, paper_query):
        graph, source, target, interval = paper_query
        report = generate_tspg_report(graph, source, target, interval)
        assert report.upper_bound_quick.num_edges == 8
        assert report.upper_bound_tight.num_edges == 5
        assert report.result.num_edges == 4
        assert report.timings.total >= 0.0
        assert report.space_cost > 0

    def test_same_source_and_target_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            generate_tspg(paper_graph, "s", "s", (2, 7))

    def test_statistics_collection_option(self, paper_query):
        graph, source, target, interval = paper_query
        report = generate_tspg_report(
            graph, source, target, interval, collect_eev_statistics=True
        )
        assert report.eev_statistics is not None
        assert report.eev_statistics.edges_total == report.upper_bound_tight.num_edges


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_uniform_random_graphs(self, seed):
        graph = uniform_random_temporal_graph(14, 70, num_timestamps=12, seed=seed)
        interval = (1, 10)
        for source, target in [(0, 1), (2, 9), (5, 3)]:
            expected = brute_force_tspg(graph, source, target, interval)
            actual = generate_tspg(graph, source, target, interval)
            assert actual.same_members(expected), f"seed={seed} query={source}->{target}"

    @pytest.mark.parametrize("seed", range(4))
    def test_cycle_heavy_graphs(self, seed):
        graph = temporal_cycle_graph(
            num_vertices=12, num_cycles=8, cycle_length=4, num_timestamps=15,
            chord_edges=12, seed=seed,
        )
        interval = (1, 12)
        for source, target in [(0, 5), (3, 7)]:
            expected = brute_force_tspg(graph, source, target, interval)
            actual = generate_tspg(graph, source, target, interval)
            assert actual.same_members(expected)

    def test_community_graph(self):
        graph = community_temporal_graph(
            num_communities=3, community_size=6, intra_edges_per_community=25,
            inter_edges=10, num_timestamps=20, seed=11,
        )
        interval = (1, 15)
        expected = brute_force_tspg(graph, 0, 13, interval)
        actual = generate_tspg(graph, 0, 13, interval)
        assert actual.same_members(expected)

    def test_layered_graph_many_paths(self):
        graph = layered_temporal_graph(
            num_layers=4, layer_size=3, edges_per_layer_pair=8,
            timestamps_per_layer=2, seed=5,
        )
        interval = graph.time_interval().as_tuple()
        expected = brute_force_tspg(graph, "S", "T", interval)
        actual = generate_tspg(graph, "S", "T", interval)
        assert actual.same_members(expected)

    def test_unreachable_query_returns_empty(self, unreachable_graph):
        tspg = generate_tspg(unreachable_graph, "s", "t", (1, 10))
        assert tspg.is_empty
        assert tspg.num_vertices == 0

    def test_direct_edge_only(self):
        graph = TemporalGraph(edges=[("s", "t", 4), ("s", "t", 9)])
        tspg = generate_tspg(graph, "s", "t", (1, 5))
        assert set(tspg.edges) == {("s", "t", 4)}


class TestAblations:
    def test_skipping_tight_bound_preserves_exactness(self, paper_query):
        graph, source, target, interval = paper_query
        report = VUG(use_tight_upper_bound=False).run(graph, source, target, interval)
        assert set(report.result.edges) == PAPER_TSPG_EDGES
        # Without TightUBG the EEV input is the quick bound itself.
        assert set(report.upper_bound_tight.edge_tuples()) == set(report.upper_bound_quick.edge_tuples())

    def test_disabling_lemma10_preserves_exactness(self, paper_query):
        graph, source, target, interval = paper_query
        report = VUG(use_lemma10=False).run(graph, source, target, interval)
        assert set(report.result.edges) == PAPER_TSPG_EDGES

    @pytest.mark.parametrize("seed", range(3))
    def test_ablations_agree_on_random_graphs(self, seed):
        graph = uniform_random_temporal_graph(12, 60, num_timestamps=10, seed=seed)
        interval = (1, 9)
        full = VUG().run(graph, 0, 5, interval).result
        no_tight = VUG(use_tight_upper_bound=False).run(graph, 0, 5, interval).result
        no_lemma = VUG(use_lemma10=False).run(graph, 0, 5, interval).result
        assert full.same_members(no_tight)
        assert full.same_members(no_lemma)
