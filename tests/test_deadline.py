"""Cooperative per-query deadlines: propagation, promptness, bit-identity.

Covers the deadline satellite of the serving-pool PR:

* expired-on-arrival queries report ``timed_out`` without running a phase
  (and without touching the result cache);
* a mid-EEV expiry stops promptly (the escaped-edge loop and the searcher
  both poll), and a batch whose budget expires mid-flight lands within the
  documented slack;
* queries that finish in budget are bit-identical with and without a
  deadline, for every registry algorithm;
* ``timed_out`` outcomes are never memoized, and the deadline crosses the
  process boundary.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.algorithms import available_algorithms, get_algorithm
from repro.baselines.interface import AlgorithmResult, TspgAlgorithm
from repro.core import Deadline, EEVDeadlineExpired
from repro.core.eev import BidirectionalSearcher, escaped_edges_verification
from repro.core.result import PathGraph
from repro.core.vug import VUG
from repro.graph.edge import TemporalEdge, TimeInterval
from repro.graph.generators import uniform_random_temporal_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.queries.query import TspgQuery
from repro.queries.workload import generate_workload
from repro.service import ShardedTspgService, TspgService
from repro.store import save_snapshot

#: Documented cut-off slack for the batch-level promptness assertions:
#: one uninterruptible stretch of work plus generous scheduler headroom.
SLACK_SECONDS = 0.5


def _chain_graph() -> TemporalGraph:
    """s → a → b → t with one escaped middle edge when Lemma 10 is off."""
    return TemporalGraph(
        edges=[("s", "a", 1), ("a", "b", 2), ("b", "t", 3), ("s", "x", 5)]
    )


class TestDeadlineObject:
    def test_after_and_remaining(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired()
        assert 0.0 < deadline.remaining() <= 60.0

    def test_expired_deadline(self):
        deadline = Deadline.after(-1.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_from_budget_none_passthrough(self):
        assert Deadline.from_budget(None) is None
        assert Deadline.from_budget(5.0) is not None

    def test_earlier_picks_the_stricter_instant(self):
        near = Deadline.after(1.0)
        far = Deadline.after(100.0)
        assert near.earlier(far) is near
        assert far.earlier(near) is near
        assert near.earlier(None) is near

    def test_pickle_preserves_the_instant(self):
        deadline = Deadline.after(30.0)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.at_monotonic == deadline.at_monotonic


class TestExpiredOnArrival:
    def test_algorithm_run_refuses_without_computing(self):
        calls = []

        class Recording(TspgAlgorithm):
            name = "Recording"

            def compute(self, graph, source, target, interval, deadline=None):
                calls.append((source, target))
                return AlgorithmResult(
                    algorithm=self.name,
                    result=PathGraph.empty(source, target, interval),
                    elapsed_seconds=0.0,
                )

        outcome = Recording().run(
            _chain_graph(), "s", "t", (1, 3), deadline=Deadline.after(-1.0)
        )
        assert outcome.timed_out is True
        assert outcome.result.is_empty
        assert outcome.extras.get("deadline_expired_on_arrival") is True
        assert calls == []  # no phase of any kind ran

    def test_vug_phase_timings_stay_zero(self):
        report = VUG().run(
            _chain_graph(), "s", "t", (1, 3), deadline=Deadline.after(-1.0)
        )
        assert report.timed_out is True
        assert report.timings.total == 0.0
        assert report.upper_bound_quick is None

    def test_cache_hit_is_not_served_past_the_deadline(self):
        service = TspgService(_chain_graph())
        query = TspgQuery("s", "t", (1, 3))
        warm = service.submit(query)  # populate the cache
        assert not warm.timed_out
        refused = service.submit(query, deadline=Deadline.after(-1.0))
        assert refused.timed_out is True
        assert not refused.extras.get("cache_hit")
        # ...and the refusal was not memoized over the good entry:
        again = service.submit(query)
        assert not again.timed_out
        assert again.result.edges == warm.result.edges

    def test_old_style_compute_signature_still_guarded(self):
        class OldStyle(TspgAlgorithm):
            name = "OldStyle"

            def compute(self, graph, source, target, interval):
                return AlgorithmResult(
                    algorithm=self.name,
                    result=PathGraph.empty(source, target, interval),
                    elapsed_seconds=0.0,
                )

        algorithm = OldStyle()
        live = algorithm.run(
            _chain_graph(), "s", "t", (1, 3), deadline=Deadline.after(60.0)
        )
        assert not live.timed_out
        refused = algorithm.run(
            _chain_graph(), "s", "t", (1, 3), deadline=Deadline.after(-1.0)
        )
        assert refused.timed_out is True


class TestMidEEVExpiry:
    def test_escaped_edge_loop_raises_promptly(self):
        # With Lemma 10 off the middle edge (a, b, 2) escapes to the
        # search loop, whose per-iteration poll sees the expired deadline.
        with pytest.raises(EEVDeadlineExpired):
            escaped_edges_verification(
                _chain_graph(), "s", "t", (1, 3),
                use_lemma10=False, deadline=Deadline.after(-1.0),
            )

    def test_searcher_polls_inside_expansions(self):
        searcher = BidirectionalSearcher(
            _chain_graph(), "s", "t", TimeInterval(1, 3),
            deadline=Deadline.after(-1.0),
        )
        with pytest.raises(EEVDeadlineExpired):
            searcher.find_witness_path(TemporalEdge("a", "b", 2))

    def test_vug_maps_the_expiry_to_a_timed_out_report(self):
        report = VUG(use_lemma10=False).run(
            _chain_graph(), "s", "t", (1, 3),
            # Generous enough to pass the QuickUBG/TightUBG boundary polls
            # on a 4-edge graph, then expire inside EEV's loop.
            deadline=Deadline.after(1e-4),
        )
        # Either the boundary or the EEV poll caught it; both must yield
        # the empty timed-out report, never a partial result.
        if report.timed_out:
            assert report.result.is_empty

    def test_batch_budget_expiry_lands_within_slack(self):
        class Slow(TspgAlgorithm):
            name = "SlowDeadline"

            def compute(self, graph, source, target, interval, deadline=None):
                # Cooperative worker: polls its deadline mid-"phase".
                for _ in range(50):
                    if deadline is not None and deadline.expired():
                        return AlgorithmResult(
                            algorithm=self.name,
                            result=PathGraph.empty(source, target, interval),
                            elapsed_seconds=0.0,
                            timed_out=True,
                        )
                    time.sleep(0.002)
                return AlgorithmResult(
                    algorithm=self.name,
                    result=PathGraph.empty(source, target, interval),
                    elapsed_seconds=0.0,
                )

        graph = _chain_graph()
        queries = [TspgQuery("s", "t", (1, 3)), TspgQuery("s", "b", (1, 2)),
                   TspgQuery("a", "t", (2, 3)), TspgQuery("s", "x", (1, 5))]
        budget = 0.05
        started = time.perf_counter()
        report = TspgService(graph).run_batch(
            queries, Slow(), use_cache=False, time_budget_seconds=budget
        )
        elapsed = time.perf_counter() - started
        assert report.timed_out is True
        # The batch may not squat past its budget: each 100ms query either
        # never starts (skipped) or cuts itself off at the next poll.
        assert elapsed <= budget + SLACK_SECONDS
        assert all(
            item.skipped or (item.outcome is not None and item.outcome.timed_out)
            for item in report.items
        )


class TestInBudgetBitIdentity:
    def test_registry_wide_identity_with_generous_deadline(self):
        graph = uniform_random_temporal_graph(
            num_vertices=14, num_edges=80, num_timestamps=24, seed=23
        )
        queries = list(
            generate_workload(
                graph, num_queries=12, theta=8, seed=23, name="deadline-oracle"
            )
        )
        for name in available_algorithms():
            algorithm = get_algorithm(name)
            for query in queries:
                plain = algorithm.run(
                    graph, query.source, query.target, query.interval
                )
                bounded = algorithm.run(
                    graph, query.source, query.target, query.interval,
                    deadline=Deadline.after(3600.0),
                )
                assert bounded.timed_out == plain.timed_out, (name, query)
                assert bounded.result.vertices == plain.result.vertices, (name, query)
                assert bounded.result.edges == plain.result.edges, (name, query)

    def test_sharded_submit_forwards_the_deadline(self):
        # Regression: the router's single-query path must accept and
        # forward deadlines exactly like the flat service (the serve
        # loop's per-request deadline_ms hits this).
        graph = uniform_random_temporal_graph(
            num_vertices=12, num_edges=60, num_timestamps=20, seed=37
        )
        router = ShardedTspgService(graph, 2, overlap=6)
        query = next(iter(generate_workload(
            graph, num_queries=1, theta=6, seed=37, name="sharded-submit"
        )))
        live = router.submit(query, deadline=Deadline.after(60.0))
        assert not live.timed_out
        refused = router.submit(query, deadline=Deadline.after(-1.0))
        assert refused.timed_out is True

    def test_sharded_batch_identity_under_budget(self):
        graph = uniform_random_temporal_graph(
            num_vertices=14, num_edges=90, num_timestamps=30, seed=29
        )
        queries = list(
            generate_workload(
                graph, num_queries=15, theta=8, seed=29, name="sharded-deadline"
            )
        )
        baseline = TspgService(graph).run_batch(queries, use_cache=False)
        router = ShardedTspgService(graph, 3, overlap=8)
        bounded = router.run_batch(
            queries, max_workers=3, use_cache=False, time_budget_seconds=60.0
        )
        assert bounded.timed_out is False
        for item, base in zip(bounded.items, baseline.items):
            assert item.outcome.result.vertices == base.outcome.result.vertices
            assert item.outcome.result.edges == base.outcome.result.edges


class TestDeadlineAcrossProcesses:
    def test_expired_budget_refuses_cached_queries_on_processes(self, tmp_path):
        # Regression: the process backend's parent-side cache pre-pass
        # must not serve hits past an expired deadline — identical input
        # must produce the same refusal the thread/serial backends give.
        graph = uniform_random_temporal_graph(
            num_vertices=12, num_edges=60, num_timestamps=20, seed=33
        )
        path = tmp_path / "g.tspgsnap"
        save_snapshot(graph, path)
        queries = list(
            generate_workload(
                graph, num_queries=4, theta=6, seed=33, name="proc-cache-deadline"
            )
        )
        service = TspgService.from_snapshot(path)
        service.run_batch(queries, use_cache=True)  # warm the parent cache
        report = service.run_batch(
            queries, max_workers=2, use_cache=True,
            executor="processes", time_budget_seconds=0.0,
        )
        assert report.num_cache_hits == 0
        assert all(
            item.skipped or (item.outcome is not None and item.outcome.timed_out)
            for item in report.items
        )

    def test_expired_budget_refuses_inside_workers(self, tmp_path):
        graph = uniform_random_temporal_graph(
            num_vertices=12, num_edges=60, num_timestamps=20, seed=31
        )
        path = tmp_path / "g.tspgsnap"
        save_snapshot(graph, path)
        queries = list(
            generate_workload(
                graph, num_queries=4, theta=6, seed=31, name="proc-deadline"
            )
        )
        service = TspgService.from_snapshot(path)
        report = service.run_batch(
            queries, max_workers=2, use_cache=False,
            executor="processes", time_budget_seconds=0.0,
        )
        assert report.executor == "processes"
        assert report.timed_out is True
        assert all(
            item.skipped or (item.outcome is not None and item.outcome.timed_out)
            for item in report.items
        )
