"""Unit tests for tight upper-bound graph generation (Algorithm 5)."""

from __future__ import annotations

import pytest

from repro.analysis.oracle import brute_force_tspg
from repro.core.quick_ubg import quick_upper_bound_graph
from repro.core.tight_ubg import tight_upper_bound_graph, tight_upper_bound_with_tcv
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validation import is_subgraph

from repro.testing import PAPER_GT_EDGES


@pytest.fixture
def paper_quick(paper_query):
    graph, source, target, interval = paper_query
    return quick_upper_bound_graph(graph, source, target, interval)


class TestPaperExample:
    def test_gt_matches_figure4c(self, paper_query, paper_quick):
        _, source, target, interval = paper_query
        tight = tight_upper_bound_graph(paper_quick, source, target, interval)
        assert set(tight.edge_tuples()) == PAPER_GT_EDGES

    def test_cycle_edge_excluded(self, paper_query, paper_quick):
        # e(e, c, 6) only appears on temporal paths with a cycle (Section III
        # limitation example) and must be pruned by the simple-path constraint.
        _, source, target, interval = paper_query
        tight = tight_upper_bound_graph(paper_quick, source, target, interval)
        assert not tight.has_edge("e", "c", 6)
        assert not tight.has_edge("f", "e", 5)
        assert not tight.has_edge("f", "b", 5)

    def test_example8_edge_kept(self, paper_query, paper_quick):
        # Example 8: e(c, f, 4) is kept because TCV_3(s,c) ∩ TCV_5(f,t) = ∅,
        # even though it is not part of the final tspG.
        _, source, target, interval = paper_query
        tight = tight_upper_bound_graph(paper_quick, source, target, interval)
        assert tight.has_edge("c", "f", 4)

    def test_endpoint_edges_always_kept(self, paper_query, paper_quick):
        _, source, target, interval = paper_query
        tight = tight_upper_bound_graph(paper_quick, source, target, interval)
        assert tight.has_edge("s", "b", 2)
        assert tight.has_edge("b", "t", 6)
        assert tight.has_edge("c", "t", 7)

    def test_gt_contains_tspg_and_is_contained_in_gq(self, paper_query, paper_quick):
        graph, source, target, interval = paper_query
        tight = tight_upper_bound_graph(paper_quick, source, target, interval)
        tspg = brute_force_tspg(graph, source, target, interval)
        assert is_subgraph(tight, paper_quick)
        assert set(tspg.edges) <= set(tight.edge_tuples())

    def test_wrapper_returns_tcv(self, paper_query, paper_quick):
        _, source, target, interval = paper_query
        tight, tcv = tight_upper_bound_with_tcv(paper_quick, source, target, interval)
        assert set(tight.edge_tuples()) == PAPER_GT_EDGES
        assert tcv.from_source("b", 2) == {"b"}


class TestContainmentOnOtherGraphs:
    @pytest.mark.parametrize(
        "edges, source, target, interval",
        [
            ([("s", "a", 1), ("a", "t", 3), ("s", "b", 2), ("b", "t", 4)], "s", "t", (1, 4)),
            ([("s", "a", 1), ("a", "b", 2), ("b", "a", 3), ("a", "t", 4)], "s", "t", (1, 5)),
            ([("s", "x", 2), ("x", "y", 3), ("y", "x", 4), ("x", "t", 5), ("y", "t", 6)], "s", "t", (1, 6)),
        ],
    )
    def test_tspg_contained_in_tight_bound(self, edges, source, target, interval):
        graph = TemporalGraph(edges=edges)
        quick = quick_upper_bound_graph(graph, source, target, interval)
        tight = tight_upper_bound_graph(quick, source, target, interval)
        tspg = brute_force_tspg(graph, source, target, interval)
        assert set(tspg.edges) <= set(tight.edge_tuples())
        assert is_subgraph(tight, quick)

    def test_empty_quick_graph_gives_empty_tight_graph(self):
        graph = TemporalGraph(edges=[("s", "a", 5), ("a", "t", 3)])
        quick = quick_upper_bound_graph(graph, "s", "t", (1, 10))
        tight = tight_upper_bound_graph(quick, "s", "t", (1, 10))
        assert tight.num_edges == 0

    def test_revisit_blocking_vertex_is_pruned(self):
        # Every path from s to m and every path from n to t passes through w,
        # so the edge (m, n, ·) cannot be on any simple path and is pruned.
        graph = TemporalGraph(
            edges=[
                ("s", "w", 1),
                ("w", "m", 2),
                ("m", "n", 3),
                ("n", "w", 4),
                ("w", "t", 5),
            ]
        )
        quick = quick_upper_bound_graph(graph, "s", "t", (1, 5))
        assert quick.has_edge("m", "n", 3)
        tight = tight_upper_bound_graph(quick, "s", "t", (1, 5))
        assert not tight.has_edge("m", "n", 3)
        tspg = brute_force_tspg(graph, "s", "t", (1, 5))
        assert set(tspg.edges) <= set(tight.edge_tuples())
