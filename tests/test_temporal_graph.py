"""Unit tests for the TemporalGraph data structure."""

from __future__ import annotations

import pytest

from repro.graph.edge import TemporalEdge, TimeInterval
from repro.graph.temporal_graph import TemporalGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = TemporalGraph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert graph.timestamps() == []
        assert graph.time_interval() is None

    def test_add_edges_and_vertices(self):
        graph = TemporalGraph(edges=[("a", "b", 1)], vertices=["isolated"])
        assert graph.num_vertices == 3
        assert graph.has_vertex("isolated")
        assert graph.has_edge("a", "b", 1)

    def test_duplicate_edges_collapse(self):
        graph = TemporalGraph()
        assert graph.add_edge("a", "b", 1) is True
        assert graph.add_edge("a", "b", 1) is False
        assert graph.num_edges == 1

    def test_parallel_edges_with_different_timestamps(self):
        graph = TemporalGraph(edges=[("a", "b", 1), ("a", "b", 2)])
        assert graph.num_edges == 2
        assert graph.out_degree("a") == 2

    def test_self_loops_rejected(self):
        graph = TemporalGraph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "a", 1)

    def test_add_edges_returns_new_count(self):
        graph = TemporalGraph()
        added = graph.add_edges([("a", "b", 1), ("a", "b", 1), ("b", "c", 2)])
        assert added == 2


class TestAccessors:
    @pytest.fixture
    def graph(self) -> TemporalGraph:
        return TemporalGraph(
            edges=[("a", "b", 5), ("a", "b", 1), ("a", "c", 3), ("c", "b", 2), ("b", "a", 4)]
        )

    def test_neighbor_lists_sorted_by_timestamp(self, graph):
        assert graph.out_neighbors("a") == [("b", 1), ("c", 3), ("b", 5)]
        assert graph.in_neighbors("b") == [("a", 1), ("c", 2), ("a", 5)]

    def test_degrees(self, graph):
        assert graph.out_degree("a") == 3
        assert graph.in_degree("a") == 1
        assert graph.degree("a") == 4
        assert graph.max_degree() == 3
        assert graph.out_degree("missing") == 0

    def test_timestamps(self, graph):
        assert graph.timestamps() == [1, 2, 3, 4, 5]
        assert graph.min_timestamp == 1
        assert graph.max_timestamp == 5
        assert graph.out_timestamps("a") == [1, 3, 5]
        assert graph.in_timestamps("b") == [1, 2, 5]

    def test_sorted_edges(self, graph):
        forward = graph.sorted_edges()
        assert [e.timestamp for e in forward] == [1, 2, 3, 4, 5]
        backward = graph.sorted_edges(reverse=True)
        assert [e.timestamp for e in backward] == [5, 4, 3, 2, 1]

    def test_range_queries(self, graph):
        assert graph.out_neighbors_after("a", 1) == [("c", 3), ("b", 5)]
        assert graph.out_neighbors_after("a", 1, strict=False) == [("b", 1), ("c", 3), ("b", 5)]
        assert graph.in_neighbors_before("b", 5) == [("a", 1), ("c", 2)]
        assert graph.in_neighbors_before("b", 5, strict=False) == [("a", 1), ("c", 2), ("a", 5)]

    def test_contains_protocol(self, graph):
        assert "a" in graph
        assert ("a", "b", 1) in graph
        assert TemporalEdge("a", "b", 1) in graph
        assert ("a", "b", 99) not in graph
        assert "zz" not in graph

    def test_len_and_repr(self, graph):
        assert len(graph) == 3
        assert "TemporalGraph" in repr(graph)


class TestDerivedGraphs:
    @pytest.fixture
    def graph(self) -> TemporalGraph:
        return TemporalGraph(edges=[("a", "b", 1), ("b", "c", 5), ("c", "a", 9)])

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        assert clone == graph
        clone.add_edge("a", "c", 2)
        assert clone != graph

    def test_project(self, graph):
        projected = graph.project((1, 5))
        assert set(projected.edge_tuples()) == {("a", "b", 1), ("b", "c", 5)}
        assert not projected.has_vertex("c") or projected.has_vertex("c")
        # Vertices are induced by the surviving edges only.
        assert set(projected.vertices()) == {"a", "b", "c"}

    def test_edge_induced_subgraph(self, graph):
        sub = graph.edge_induced_subgraph([("a", "b", 1)])
        assert set(sub.edge_tuples()) == {("a", "b", 1)}
        with pytest.raises(KeyError):
            graph.edge_induced_subgraph([("a", "b", 99)])

    def test_reverse(self, graph):
        reverse = graph.reverse()
        assert reverse.has_edge("b", "a", 1)
        assert reverse.num_edges == graph.num_edges
        assert set(reverse.vertices()) == set(graph.vertices())

    def test_time_interval(self, graph):
        assert graph.time_interval() == TimeInterval(1, 9)

    def test_equality_ignores_insertion_order(self):
        left = TemporalGraph(edges=[("a", "b", 1), ("b", "c", 2)])
        right = TemporalGraph(edges=[("b", "c", 2), ("a", "b", 1)])
        assert left == right
        assert left != TemporalGraph(edges=[("a", "b", 1)])
        assert left.__eq__(42) is NotImplemented

    def test_graphs_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(TemporalGraph())


class TestMutationEpoch:
    def test_new_graph_starts_at_epoch_zero(self):
        assert TemporalGraph().epoch == 0

    def test_add_edge_bumps_epoch(self):
        graph = TemporalGraph()
        before = graph.epoch
        graph.add_edge("a", "b", 1)
        assert graph.epoch > before

    def test_duplicate_edge_does_not_bump(self):
        graph = TemporalGraph(edges=[("a", "b", 1)])
        before = graph.epoch
        assert graph.add_edge("a", "b", 1) is False
        assert graph.epoch == before

    def test_add_vertex_bumps_only_when_new(self):
        graph = TemporalGraph()
        graph.add_vertex("a")
        bumped = graph.epoch
        assert bumped > 0
        graph.add_vertex("a")
        assert graph.epoch == bumped

    def test_add_edges_bumps_per_new_edge(self):
        graph = TemporalGraph()
        graph.add_edges([("a", "b", 1), ("b", "c", 2), ("a", "b", 1)])
        first = graph.epoch
        graph.add_edges([("a", "b", 1)])  # all duplicates
        assert graph.epoch == first

    def test_epoch_is_monotonic(self):
        graph = TemporalGraph()
        seen = [graph.epoch]
        for t in range(1, 6):
            graph.add_edge("u", f"v{t}", t)
            seen.append(graph.epoch)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)


class TestAliasingRegression:
    """Returned collections must be copies: mutating them cannot corrupt
    the internal sorted adjacency state (the `_view` variants stay
    zero-copy by contract)."""

    @pytest.fixture
    def graph(self) -> TemporalGraph:
        return TemporalGraph(edges=[("a", "b", 1), ("a", "c", 5), ("c", "a", 9)])

    def test_out_neighbors_returns_a_copy(self, graph):
        entries = graph.out_neighbors("a")
        entries.append(("zz", 0))  # would break the sorted invariant
        entries.reverse()
        assert graph.out_neighbors("a") == [("b", 1), ("c", 5)]
        assert graph.out_neighbors_view("a") == [("b", 1), ("c", 5)]

    def test_in_neighbors_returns_a_copy(self, graph):
        entries = graph.in_neighbors("a")
        entries.clear()
        assert graph.in_neighbors("a") == [("c", 9)]

    def test_range_queries_return_copies(self, graph):
        after = graph.out_neighbors_after("a", 0)
        after.insert(0, ("zz", -1))
        before = graph.in_neighbors_before("a", 99)
        before.clear()
        assert graph.out_neighbors_after("a", 0) == [("b", 1), ("c", 5)]
        assert graph.in_neighbors_before("a", 99) == [("c", 9)]

    def test_sorted_edges_and_timestamps_return_copies(self, graph):
        edges = graph.sorted_edges()
        edges.clear()
        ts = graph.timestamps()
        ts.append(-1)
        out_ts = graph.out_timestamps("a")
        out_ts.append(-1)
        in_ts = graph.in_timestamps("a")
        in_ts.append(-1)
        assert [e.timestamp for e in graph.sorted_edges()] == [1, 5, 9]
        assert graph.timestamps() == [1, 5, 9]
        assert graph.out_timestamps("a") == [1, 5]
        assert graph.in_timestamps("a") == [9]

    def test_mutated_copy_cannot_corrupt_lookups(self, graph):
        # End-to-end: corrupt a returned list, then check binary-searched
        # range lookups still see the pristine sorted order.
        returned = graph.out_neighbors("a")
        returned.sort(key=lambda entry: -entry[1])  # descending: invalid order
        assert graph.out_neighbors_after("a", 1) == [("c", 5)]
        assert graph.out_neighbors_after("a", 1, strict=False) == [("b", 1), ("c", 5)]


class TestCopyCarriesWarmth:
    def test_copy_carries_warmed_caches(self):
        graph = TemporalGraph(edges=[("a", "b", 1), ("b", "c", 5)])
        graph.warm_indices()
        graph.sorted_edges()  # also materialise the edge-object stage
        clone = graph.copy()
        assert clone._sorted_tuples_cache is not None
        assert clone._sorted_edges_cache is not None
        assert clone._ts_cache is not None
        assert len(clone._out_ts_cache) == clone.num_vertices
        assert clone.sorted_edges() == graph.sorted_edges()
        assert clone.out_timestamps("a") == graph.out_timestamps("a")

    def test_copy_stamps_the_source_epoch(self):
        graph = TemporalGraph(edges=[("a", "b", 1), ("b", "c", 5)])
        clone = graph.copy()
        assert clone.epoch == graph.epoch

    def test_cold_copy_stays_cold(self):
        graph = TemporalGraph(edges=[("a", "b", 1)])
        graph._sorted_edges_cache = None  # ensure nothing is warmed
        graph._ts_cache = None
        clone = graph.copy()
        assert clone._sorted_edges_cache is None
        assert clone._ts_cache is None
        assert clone == graph

    def test_copies_do_not_alias_internal_state(self):
        graph = TemporalGraph(edges=[("a", "b", 1)])
        graph.warm_indices()
        clone = graph.copy()
        clone.add_edge("a", "b", 2)
        assert graph.out_neighbors("a") == [("b", 1)]
        assert graph.out_timestamps("a") == [1]
        assert clone.out_timestamps("a") == [1, 2]
        assert len(graph.sorted_edges()) == 1

    def test_warmed_copy_of_snapshot_loaded_graph(self):
        from repro.store import snapshot_bytes  # noqa: F401 — exercised elsewhere

        graph = TemporalGraph(edges=[("a", "b", 1), ("b", "c", 5)])
        state = graph.warmed_state()
        loaded = TemporalGraph.from_warmed_state(state)
        clone = loaded.copy()
        assert clone._sorted_tuples_cache is not None
        assert clone.sorted_edges() == graph.sorted_edges()
        assert clone.epoch == graph.epoch


class TestBackingDeterminism:
    def test_edge_order_is_hash_seed_independent(self):
        """The sorted backing must not leak set iteration order.

        Runs the same graph build under several ``PYTHONHASHSEED`` values in
        subprocesses and asserts every one produces the identical
        ``edge_tuples()`` sequence — the property the snapshot format (byte
        reproducibility) and the view/materialize consistency rest on.
        Regression for the timestamp-only sort key that made equal-timestamp
        tie order flake at ~1 in 10 hash seeds.
        """
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        script = (
            "from repro.graph.generators import paper_running_example\n"
            "print(paper_running_example().edge_tuples())\n"
        )
        src_root = str(Path(repro.__file__).resolve().parents[1])
        outputs = set()
        for seed in ("0", "1", "2", "3", "4"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(proc.stdout)
        assert len(outputs) == 1, "edge order varied with PYTHONHASHSEED"
