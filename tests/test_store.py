"""Tests for repro.store: snapshot round-trips, corruption handling, stores."""

from __future__ import annotations

import os
import struct

import pytest

from repro.graph.generators import uniform_random_temporal_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.service import TspgService
from repro.store import (
    HEADER_SIZE,
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    GraphStore,
    InMemoryGraphStore,
    SnapshotError,
    SnapshotGraphStore,
    load_snapshot,
    peek_snapshot,
    save_snapshot,
    store_for,
)


def _random_graph(seed: int) -> TemporalGraph:
    return uniform_random_temporal_graph(
        num_vertices=15, num_edges=90, num_timestamps=25, seed=seed
    )


def _assert_graphs_identical(loaded: TemporalGraph, original: TemporalGraph) -> None:
    """Structural equality across every index a snapshot must preserve."""
    assert loaded == original
    assert loaded.num_vertices == original.num_vertices
    assert loaded.num_edges == original.num_edges
    assert loaded.sorted_edges() == original.sorted_edges()
    assert loaded.timestamps() == original.timestamps()
    assert loaded.epoch == original.epoch
    for vertex in original.vertices():
        assert loaded.out_neighbors(vertex) == original.out_neighbors(vertex)
        assert loaded.in_neighbors(vertex) == original.in_neighbors(vertex)
        assert loaded.out_timestamps(vertex) == original.out_timestamps(vertex)
        assert loaded.in_timestamps(vertex) == original.in_timestamps(vertex)


# ----------------------------------------------------------------------
# round-trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_graph_round_trip(self, tmp_path, seed):
        graph = _random_graph(seed)
        path = tmp_path / f"g{seed}.tspgsnap"
        info = save_snapshot(graph, path)
        assert info.num_vertices == graph.num_vertices
        assert info.num_edges == graph.num_edges
        assert info.epoch == graph.epoch
        _assert_graphs_identical(load_snapshot(path), graph)

    def test_string_and_tuple_vertices(self, tmp_path):
        graph = TemporalGraph(
            edges=[("stop A", ("line", 1), 3), (("line", 1), "stop B", 7)],
        )
        path = tmp_path / "mixed.tspgsnap"
        save_snapshot(graph, path)
        _assert_graphs_identical(load_snapshot(path), graph)

    def test_isolated_vertices_survive(self, tmp_path):
        graph = TemporalGraph(edges=[("a", "b", 1)], vertices=["lonely", "a"])
        path = tmp_path / "iso.tspgsnap"
        save_snapshot(graph, path)
        loaded = load_snapshot(path)
        assert loaded.has_vertex("lonely")
        _assert_graphs_identical(loaded, graph)

    def test_empty_graph_round_trip(self, tmp_path):
        graph = TemporalGraph()
        path = tmp_path / "empty.tspgsnap"
        save_snapshot(graph, path)
        loaded = load_snapshot(path)
        assert loaded.num_vertices == 0
        assert loaded.num_edges == 0

    def test_loaded_graph_is_warm_and_sort_free(self, tmp_path):
        graph = _random_graph(seed=6)
        path = tmp_path / "warm.tspgsnap"
        save_snapshot(graph, path)
        loaded = load_snapshot(path)
        # Warm indices are adopted: the timestamp caches are populated and
        # the sorted-edge index has its pre-sorted backing, so warming again
        # touches no edge.
        assert loaded._ts_cache is not None
        assert loaded._sorted_tuples_cache is not None
        assert len(loaded._out_ts_cache) == loaded.num_vertices
        stats = loaded.warm_indices()
        assert stats["sorted_edges"] == graph.num_edges

    def test_loaded_graph_stays_mutable(self, tmp_path):
        graph = _random_graph(seed=7)
        path = tmp_path / "mut.tspgsnap"
        save_snapshot(graph, path)
        loaded = load_snapshot(path)
        epoch = loaded.epoch
        assert loaded.add_edge("fresh-u", "fresh-v", 5)
        assert loaded.epoch > epoch
        assert loaded.has_edge("fresh-u", "fresh-v", 5)
        assert loaded.sorted_edges()[0].timestamp <= 5

    def test_snapshot_queries_match_direct_queries(self, tmp_path):
        graph = _random_graph(seed=8)
        path = tmp_path / "svc.tspgsnap"
        save_snapshot(graph, path)
        service = TspgService.from_snapshot(path)
        direct = TspgService(graph)
        for source, target, interval in [
            (0, 5, (1, 12)), (3, 9, (5, 20)), (1, 2, (0, 25)),
        ]:
            if source == target:
                continue
            a = service.query(source, target, interval)
            b = direct.query(source, target, interval)
            assert a.result.vertices == b.result.vertices
            assert a.result.edges == b.result.edges


# ----------------------------------------------------------------------
# header validation and corruption
# ----------------------------------------------------------------------
class TestCorruption:
    @pytest.fixture()
    def snapshot(self, tmp_path):
        graph = _random_graph(seed=11)
        path = tmp_path / "base.tspgsnap"
        save_snapshot(graph, path)
        return path

    def test_peek_reads_header_only(self, snapshot):
        info = peek_snapshot(snapshot)
        assert info.version == SNAPSHOT_VERSION
        assert info.num_edges > 0
        assert os.path.getsize(snapshot) == HEADER_SIZE + info.payload_bytes

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot open"):
            load_snapshot(tmp_path / "nope.tspgsnap")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(SnapshotError, match="truncated snapshot header"):
            load_snapshot(path)

    def test_bad_magic(self, tmp_path, snapshot):
        raw = snapshot.read_bytes()
        bad = tmp_path / "magic.bin"
        bad.write_bytes(b"NOTASNAP" + raw[8:])
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(bad)
        with pytest.raises(SnapshotError, match="bad magic"):
            peek_snapshot(bad)

    def test_wrong_version(self, tmp_path, snapshot):
        raw = bytearray(snapshot.read_bytes())
        raw[8:10] = struct.pack(">H", 99)
        bad = tmp_path / "version.bin"
        bad.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="unsupported snapshot format version 99"):
            load_snapshot(bad)

    def test_version1_snapshot_still_loads(self, tmp_path):
        # A pre-view snapshot (format v1: no "view" columns in the payload)
        # must keep its O(read) boot; the view is rebuilt lazily instead.
        import pickle
        import zlib

        graph = _random_graph(seed=21)
        state = graph.warmed_state()
        state.pop("view")
        payload = zlib.compress(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
        header = struct.pack(
            ">8sHQQQQQI",
            SNAPSHOT_MAGIC,
            1,
            graph.epoch,
            graph.num_vertices,
            graph.num_edges,
            len(graph.timestamps()),
            len(payload),
            zlib.crc32(payload) & 0xFFFFFFFF,
        )
        old = tmp_path / "v1.tspgsnap"
        old.write_bytes(header + payload)
        assert peek_snapshot(old).version == 1
        loaded = load_snapshot(old)
        assert loaded == graph
        assert loaded._view_cache is None  # nothing adopted…
        assert loaded.view().num_edges == graph.num_edges  # …built on demand

    def test_truncated_payload(self, tmp_path, snapshot):
        raw = snapshot.read_bytes()
        bad = tmp_path / "trunc.bin"
        bad.write_bytes(raw[:-7])
        with pytest.raises(SnapshotError, match="truncated snapshot payload"):
            load_snapshot(bad)

    def test_truncated_header(self, tmp_path, snapshot):
        raw = snapshot.read_bytes()
        bad = tmp_path / "hdr.bin"
        bad.write_bytes(raw[: HEADER_SIZE - 3])
        with pytest.raises(SnapshotError, match="truncated snapshot header"):
            load_snapshot(bad)

    def test_trailing_garbage(self, tmp_path, snapshot):
        raw = snapshot.read_bytes()
        bad = tmp_path / "trail.bin"
        bad.write_bytes(raw + b"extra")
        with pytest.raises(SnapshotError, match="trailing data"):
            load_snapshot(bad)

    @pytest.mark.parametrize("offset_from_header", [0, 10, 100])
    def test_flipped_payload_byte_fails_checksum(
        self, tmp_path, snapshot, offset_from_header
    ):
        raw = bytearray(snapshot.read_bytes())
        raw[HEADER_SIZE + offset_from_header] ^= 0xFF
        bad = tmp_path / "flip.bin"
        bad.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            load_snapshot(bad)

    def test_header_payload_count_mismatch(self, tmp_path, snapshot):
        # Forge the edge count in the header (and keep everything else
        # intact): the payload decodes fine but the cross-check must fire.
        raw = bytearray(snapshot.read_bytes())
        magic, version, epoch, n_v, n_e, n_t, p_len, crc = struct.unpack(
            ">8sHQQQQQI", raw[:HEADER_SIZE]
        )
        raw[:HEADER_SIZE] = struct.pack(
            ">8sHQQQQQI", magic, version, epoch, n_v, n_e + 1, n_t, p_len, crc
        )
        bad = tmp_path / "counts.bin"
        bad.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="header does not match payload"):
            load_snapshot(bad)

    def test_random_junk_is_rejected(self, tmp_path):
        import random

        rng = random.Random(99)
        path = tmp_path / "junk.bin"
        path.write_bytes(bytes(rng.randrange(256) for _ in range(512)))
        with pytest.raises(SnapshotError):
            load_snapshot(path)


# ----------------------------------------------------------------------
# the GraphStore layer
# ----------------------------------------------------------------------
class TestGraphStore:
    def test_in_memory_store_warms_and_returns_same_graph(self):
        graph = _random_graph(seed=21)
        store = InMemoryGraphStore(graph)
        loaded = store.load()
        assert loaded is graph
        assert loaded._ts_cache is not None  # warmed
        assert store.describe()["backend"] == "memory"

    def test_snapshot_store_save_load_info(self, tmp_path):
        graph = _random_graph(seed=22)
        store = SnapshotGraphStore(tmp_path / "s.tspgsnap")
        assert not store.exists()
        info = store.save(graph)
        assert store.exists()
        assert store.info() == info
        _assert_graphs_identical(store.load(), graph)
        assert store.describe()["backend"] == "snapshot"

    def test_atomic_save_leaves_no_tmp_file(self, tmp_path):
        graph = _random_graph(seed=23)
        store = SnapshotGraphStore(tmp_path / "atomic.tspgsnap")
        store.save(graph)
        assert os.listdir(tmp_path) == ["atomic.tspgsnap"]

    def test_store_for_coercions(self, tmp_path):
        graph = _random_graph(seed=24)
        assert isinstance(store_for(graph), InMemoryGraphStore)
        path_store = store_for(tmp_path / "x.tspgsnap")
        assert isinstance(path_store, SnapshotGraphStore)
        assert store_for(path_store) is path_store
        assert isinstance(store_for(graph), GraphStore)

    def test_service_from_store(self, tmp_path):
        graph = _random_graph(seed=25)
        store = SnapshotGraphStore(tmp_path / "svc.tspgsnap")
        store.save(graph)
        service = TspgService.from_store(store)
        assert service.graph == graph
        assert service.index_stats["sorted_edges"] == graph.num_edges
