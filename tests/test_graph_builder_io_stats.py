"""Tests for the builder, edge-list IO, validation and statistics modules."""

from __future__ import annotations

import pytest

from repro.graph.builder import TemporalGraphBuilder, graph_from_edges
from repro.graph.edge import TemporalEdge
from repro.graph.io import (
    EdgeListFormatError,
    edge_list_lines,
    load_edge_list,
    load_json,
    parse_edge_line,
    save_edge_list,
    save_json,
)
from repro.graph.statistics import compute_statistics, degree_histogram, timestamp_histogram
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validation import (
    ValidationError,
    assert_edges_within_interval,
    assert_subgraph,
    is_subgraph,
    validate_graph,
)


class TestBuilder:
    def test_basic_building(self):
        builder = TemporalGraphBuilder()
        builder.add_interaction("a", "b", 1).add_interaction("b", "c", 2)
        graph = builder.build()
        assert graph.num_edges == 2
        assert builder.num_events == 2

    def test_self_loops_dropped_silently(self):
        builder = TemporalGraphBuilder()
        builder.add_interaction("a", "a", 1)
        assert builder.num_events == 0
        assert builder.dropped_self_loops == 1

    def test_records_with_custom_parser(self):
        builder = TemporalGraphBuilder()
        builder.add_record(
            {"source": "a", "target": "b", "timestamp": "07"}, time_parser=int
        )
        assert builder.build().has_edge("a", "b", 7)

    def test_relabelling(self):
        builder = TemporalGraphBuilder(relabel=True)
        builder.add_interactions([("alice", "bob", 1), ("bob", "carol", 2)])
        graph = builder.build()
        assert set(graph.vertices()) == {0, 1, 2}
        assert builder.id_of("alice") == 0
        assert builder.label_of(2) == "carol"
        assert builder.vertex_labels() == ["alice", "bob", "carol"]

    def test_relabel_helpers_require_relabel_mode(self):
        builder = TemporalGraphBuilder()
        with pytest.raises(ValueError):
            builder.label_of(0)
        with pytest.raises(ValueError):
            builder.id_of("x")

    def test_graph_from_edges(self):
        graph = graph_from_edges([("a", "b", 1)], vertices=["lonely"])
        assert graph.has_vertex("lonely")
        assert graph.num_edges == 1


class TestEdgeListIO:
    def test_parse_edge_line_variants(self):
        assert parse_edge_line("1 2 30") == ("1", "2", 30)
        assert parse_edge_line("1 2 1.0 30") == ("1", "2", 30)
        assert parse_edge_line("# comment") is None
        assert parse_edge_line("% comment") is None
        assert parse_edge_line("   ") is None
        with pytest.raises(EdgeListFormatError):
            parse_edge_line("1 2")
        with pytest.raises(EdgeListFormatError):
            parse_edge_line("1 2 not-a-number")

    def test_round_trip(self, tmp_path):
        graph = TemporalGraph(edges=[(1, 2, 5), (2, 3, 7)])
        path = tmp_path / "edges.txt"
        written = save_edge_list(graph, path, header="demo graph")
        assert written == 2
        loaded = load_edge_list(path)
        assert loaded == graph

    def test_self_loops_skipped_on_load(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 1 5\n1 2 6\n")
        graph = load_edge_list(path)
        assert graph.num_edges == 1

    def test_string_vertices_preserved(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice bob 3\n")
        graph = load_edge_list(path)
        assert graph.has_edge("alice", "bob", 3)

    def test_json_round_trip(self, tmp_path):
        graph = TemporalGraph(edges=[("stop a", "stop b", 550)], vertices=["lonely stop"])
        path = tmp_path / "graph.json"
        save_json(graph, path)
        loaded = load_json(path)
        assert loaded.has_edge("stop a", "stop b", 550)
        assert loaded.has_vertex("lonely stop")

    def test_edge_list_lines(self):
        graph = TemporalGraph(edges=[("a", "b", 2), ("b", "c", 1)])
        assert edge_list_lines(graph) == ["b c 1", "a b 2"]


class TestValidation:
    def test_validate_graph_accepts_well_formed_graphs(self, paper_graph):
        validate_graph(paper_graph)

    def test_is_subgraph(self, paper_graph):
        sub = paper_graph.edge_induced_subgraph([("s", "b", 2)])
        assert is_subgraph(sub, paper_graph)
        assert not is_subgraph(paper_graph, sub)
        assert_subgraph(sub, paper_graph)
        with pytest.raises(ValidationError):
            assert_subgraph(paper_graph, sub)

    def test_edges_within_interval(self, paper_graph):
        assert_edges_within_interval(paper_graph, (2, 7))
        with pytest.raises(ValidationError):
            assert_edges_within_interval(paper_graph, (2, 6))


class TestStatistics:
    def test_paper_graph_statistics(self, paper_graph):
        stats = compute_statistics(paper_graph)
        assert stats.num_vertices == 8
        assert stats.num_edges == 14
        assert stats.num_timestamps == 6
        assert stats.max_degree == 4  # b has 4 out-going temporal edges
        assert stats.min_timestamp == 2
        assert stats.max_timestamp == 7
        assert stats.timestamp_span == 6
        row = stats.as_row()
        assert row["|V|"] == 8 and row["|E|"] == 14

    def test_empty_graph_statistics(self):
        stats = compute_statistics(TemporalGraph())
        assert stats.num_vertices == 0
        assert stats.timestamp_span == 0
        assert stats.density == 0.0

    def test_degree_histogram(self, paper_graph):
        histogram = degree_histogram(paper_graph, direction="out")
        assert sum(histogram.values()) == paper_graph.num_vertices
        with pytest.raises(ValueError):
            degree_histogram(paper_graph, direction="sideways")

    def test_timestamp_histogram(self, paper_graph):
        bins = timestamp_histogram(paper_graph, num_bins=3)
        assert len(bins) == 3
        assert sum(bins) == paper_graph.num_edges
        with pytest.raises(ValueError):
            timestamp_histogram(paper_graph, num_bins=0)
