"""Tests for the analysis utilities (ratios, comparison, memory, oracle)."""

from __future__ import annotations

import pytest

from repro.algorithms import get_algorithm
from repro.analysis.comparison import (
    ResultMismatchError,
    assert_same_result,
    compare_algorithms,
    describe_difference,
    verify_containment_chain,
)
from repro.analysis.memory import SpaceProfile, collect_space_profiles, measure_deep_size
from repro.analysis.oracle import brute_force_tspg
from repro.analysis.upper_bound_ratio import (
    UPPER_BOUND_METHODS,
    UpperBoundObservation,
    upper_bound_ratio_for_query,
    upper_bound_ratios_for_workload,
)
from repro.baselines.interface import AlgorithmResult
from repro.core.result import PathGraph
from repro.graph.generators import uniform_random_temporal_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.queries.query import QueryWorkload, TspgQuery

from repro.testing import PAPER_TSPG_EDGES


class TestOracle:
    def test_paper_example(self, paper_query):
        graph, source, target, interval = paper_query
        oracle = brute_force_tspg(graph, source, target, interval)
        assert set(oracle.edges) == PAPER_TSPG_EDGES

    def test_empty_when_unreachable(self, unreachable_graph):
        assert brute_force_tspg(unreachable_graph, "s", "t", (1, 10)).is_empty


class TestUpperBoundRatios:
    def test_methods_registered(self):
        assert set(UPPER_BOUND_METHODS) == {"dtTSG", "esTSG", "tgTSG", "QuickUBG", "TightUBG"}

    def test_single_query_ordering(self, paper_query):
        graph, source, target, interval = paper_query
        observations = upper_bound_ratio_for_query(graph, source, target, interval)
        ratios = {name: obs.ratio for name, obs in observations.items()}
        # Tighter bounds have higher ratios; tgTSG and QuickUBG coincide.
        assert ratios["dtTSG"] <= ratios["esTSG"] <= ratios["tgTSG"] <= ratios["TightUBG"]
        assert ratios["tgTSG"] == pytest.approx(ratios["QuickUBG"])
        assert ratios["TightUBG"] == pytest.approx(100 * 4 / 5)
        assert ratios["dtTSG"] == pytest.approx(100 * 4 / 14)

    def test_workload_average(self, paper_query):
        graph, source, target, interval = paper_query
        workload = QueryWorkload("paper", [TspgQuery(source, target, interval)])
        summaries = upper_bound_ratios_for_workload(graph, workload)
        assert summaries["TightUBG"].average_ratio == pytest.approx(80.0)
        row = summaries["TightUBG"].as_row()
        assert row["queries"] == 1

    def test_empty_bound_handled(self):
        observation = UpperBoundObservation(method="dtTSG", tspg_edges=0, upper_bound_edges=0)
        assert observation.ratio is None


class TestComparison:
    def test_assert_same_result_passes_and_fails(self, paper_query):
        graph, source, target, interval = paper_query
        a = brute_force_tspg(graph, source, target, interval)
        b = brute_force_tspg(graph, source, target, interval)
        assert_same_result("a", a, "b", b)
        smaller = PathGraph.from_edges(source, target, interval, [("s", "b", 2)])
        with pytest.raises(ResultMismatchError):
            assert_same_result("a", a, "smaller", smaller)
        text = describe_difference("a", a, "smaller", smaller)
        assert "edges only in a" in text

    def test_compare_algorithms_agree(self, paper_query):
        graph, source, target, interval = paper_query
        queries = [TspgQuery(source, target, interval)]
        report = compare_algorithms(
            [get_algorithm("VUG"), get_algorithm("EPdtTSG"), get_algorithm("EPtgTSG")],
            graph,
            queries,
        )
        assert report.all_agree
        assert report.num_queries == 1
        assert report.num_agreements == 1
        assert report.as_dict()["mismatches"] == []

    def test_compare_algorithms_requires_input(self, paper_graph):
        with pytest.raises(ValueError):
            compare_algorithms([], paper_graph, [])

    def test_verify_containment_chain_reports_violation(self):
        small = TemporalGraph(edges=[("a", "b", 1)])
        big = TemporalGraph(edges=[("a", "b", 1), ("b", "c", 2)])
        assert verify_containment_chain([small, big]) == []
        violations = verify_containment_chain([big, small], names=["big", "small"])
        assert len(violations) == 1
        assert "big" in violations[0]


class TestMemory:
    def test_space_profile(self):
        profile = SpaceProfile("VUG")
        for cost in (10, 50, 20):
            profile.add(cost)
        assert profile.max_cost == 50
        assert profile.min_cost == 10
        assert profile.spread == 5.0
        assert profile.as_row()["algorithm"] == "VUG"

    def test_empty_profile(self):
        profile = SpaceProfile("X")
        assert profile.max_cost == 0
        assert profile.spread == 1.0

    def test_collect_space_profiles(self, paper_query):
        graph, source, target, interval = paper_query
        results = [
            AlgorithmResult("VUG", PathGraph.empty(source, target, interval), 0.0, space_cost=5),
            AlgorithmResult("VUG", PathGraph.empty(source, target, interval), 0.0, space_cost=9),
            AlgorithmResult("EPdtTSG", PathGraph.empty(source, target, interval), 0.0, space_cost=100),
        ]
        profiles = collect_space_profiles(results)
        assert profiles["VUG"].max_cost == 9
        assert profiles["EPdtTSG"].min_cost == 100

    def test_measure_deep_size_grows_with_content(self):
        small = {"a": [1, 2, 3]}
        large = {"a": list(range(1000)), "b": {"nested": tuple(range(100))}}
        assert measure_deep_size(large) > measure_deep_size(small) > 0

    def test_measure_deep_size_handles_objects_and_cycles(self, paper_graph):
        size = measure_deep_size(paper_graph)
        assert size > 0
        cyclic = []
        cyclic.append(cyclic)
        assert measure_deep_size(cyclic) > 0
