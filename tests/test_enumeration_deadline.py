"""Deadline regressions for the enumeration baselines.

The enumeration half of every EP baseline is exponential in the worst case,
so the cooperative deadline must be polled *inside* the DFS — per node
expansion and per enumerated path — not just between pipeline phases.
These tests pin that behaviour on a layered graph whose path count is far
beyond what any budget could enumerate, plus the honest-accounting contract
of a timed-out EP result (satellites of the vectorized-kernels PR; the
polling itself landed with it).
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.enumeration import (
    EnumerationDeadlineExpired,
    tspg_by_enumeration,
)
from repro.baselines.ep_algorithms import EPdtTSG, NaiveEnumeration
from repro.core.deadline import Deadline
from repro.graph.temporal_graph import TemporalGraph


def layered_blowup_graph(layers: int = 12, width: int = 4) -> TemporalGraph:
    """Complete bipartite layers with ascending timestamps: ``width**layers``
    temporal simple paths from ``s`` to ``t`` — unenumerable in any budget.
    """
    graph = TemporalGraph()
    previous = ["s"]
    for layer in range(layers):
        current = [f"L{layer}_{i}" for i in range(width)]
        for u in previous:
            for v in current:
                graph.add_edge(u, v, layer + 1)
        previous = current
    for u in previous:
        graph.add_edge(u, "t", layers + 1)
    return graph


@pytest.fixture(scope="module")
def blowup():
    return layered_blowup_graph()


class TestMidEnumerationExpiry:
    def test_dfs_raises_within_the_documented_slack(self, blowup):
        """The DFS itself must notice an in-flight expiry promptly."""
        span = blowup.time_interval()
        deadline = Deadline.after(0.05)
        started = time.perf_counter()
        with pytest.raises(EnumerationDeadlineExpired) as info:
            tspg_by_enumeration(
                blowup, "s", "t", (span.begin, span.end), deadline=deadline
            )
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0, (
            f"enumeration overran an expired deadline by {elapsed - 0.05:.2f}s"
        )
        # The cut-off carries the work counters for honest space accounting.
        assert info.value.num_paths >= 0
        assert info.value.total_path_edges >= 0

    def test_baseline_returns_empty_timed_out_result(self, blowup):
        span = blowup.time_interval()
        for algorithm in (NaiveEnumeration(), EPdtTSG()):
            started = time.perf_counter()
            outcome = algorithm.run(
                blowup, "s", "t", (span.begin, span.end),
                deadline=Deadline.after(0.05),
            )
            assert time.perf_counter() - started < 2.0, algorithm.name
            assert outcome.timed_out is True, algorithm.name
            assert outcome.result.vertices == set(), algorithm.name
            assert outcome.result.edges == set(), algorithm.name

    def test_unbounded_run_completes_on_a_small_graph(self):
        """Sanity: with no deadline the same code path still enumerates."""
        graph = layered_blowup_graph(layers=3, width=2)
        span = graph.time_interval()
        outcome = tspg_by_enumeration(graph, "s", "t", (span.begin, span.end))
        assert outcome.num_paths == 2 ** 3
        assert outcome.result.num_edges == graph.num_edges


class TestTimedOutAccounting:
    """A cut-off EP result reports the space actually consumed, full extras."""

    def test_space_cost_counts_upper_bound_and_partial_work(self, blowup):
        span = blowup.time_interval()
        algorithm = EPdtTSG()
        outcome = algorithm.run(
            blowup, "s", "t", (span.begin, span.end),
            deadline=Deadline.after(0.05),
        )
        assert outcome.timed_out is True
        extras = outcome.extras
        # The dtTSG projection was fully built before the cut-off, so it is
        # real consumed memory even though the answer is empty.
        assert extras["upper_bound_edges"] > 0
        assert extras["upper_bound_vertices"] > 0
        assert outcome.space_cost >= (
            extras["upper_bound_edges"]
            + extras["upper_bound_vertices"]
            + extras["total_path_edges"]
        )

    def test_extras_keys_match_a_completed_run(self, blowup):
        """A *mid-enumeration* cut-off keeps the completed-run extras schema.

        (An already-expired deadline is rejected at the interface layer
        before any work happens and reports only the arrival marker — the
        full schema is owed exactly when partial work was done.)
        """
        small = layered_blowup_graph(layers=3, width=2)
        span = small.time_interval()
        algorithm = EPdtTSG()
        completed = algorithm.run(small, "s", "t", (span.begin, span.end))
        assert completed.timed_out is False
        big_span = blowup.time_interval()
        cut_off = algorithm.run(
            blowup, "s", "t", (big_span.begin, big_span.end),
            deadline=Deadline.after(0.05),
        )
        assert cut_off.timed_out is True
        assert set(cut_off.extras) == set(completed.extras)
