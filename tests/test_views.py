"""Unit tests for the frozen CSR views (repro.graph.views).

Covers the GraphView columnar projection, the SubgraphView edge-mask read
API against the equivalent materialized ``TemporalGraph``, the
``.materialize()`` boundary, snapshot persistence of the columnar state and
the graph-layer satellites (edge_tuples sequence, bulk add_edges, insort).
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.quick_ubg import quick_upper_bound_graph
from repro.core.tight_ubg import tight_upper_bound_graph
from repro.graph.generators import paper_running_example, uniform_random_temporal_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.views import GraphView, SubgraphView


def _random_graph(seed: int = 3) -> TemporalGraph:
    return uniform_random_temporal_graph(
        num_vertices=20, num_edges=120, num_timestamps=30, seed=seed
    )


# ----------------------------------------------------------------------
# GraphView: the columnar projection
# ----------------------------------------------------------------------
class TestGraphView:
    def test_columns_mirror_the_sorted_backing(self):
        graph = _random_graph()
        view = graph.view()
        assert view.num_vertices == graph.num_vertices
        assert view.num_edges == graph.num_edges
        labels = view.labels
        rebuilt = [
            (labels[view.src[i]], labels[view.dst[i]], view.ts[i])
            for i in range(view.num_edges)
        ]
        assert rebuilt == list(graph.edge_tuples())
        # The ts column is the bisect substrate: it must be sorted.
        assert all(a <= b for a, b in zip(view.ts, list(view.ts)[1:]))

    def test_csr_slices_match_adjacency_lists(self):
        # Equal-timestamp ties may be ordered differently (CSR slices follow
        # the sorted backing, adjacency lists follow insertion order); every
        # consumer either re-sorts or is order-independent at equal
        # timestamps, so the contract is: same multiset, timestamp-sorted.
        graph = _random_graph()
        view = graph.view()
        labels = view.labels
        for vertex in graph.vertices():
            vid = view.index_of[vertex]
            out_entries = [
                (labels[view.dst[e]], view.ts[e]) for e in view.out_slice(vid)
            ]
            in_entries = [
                (labels[view.src[e]], view.ts[e]) for e in view.in_slice(vid)
            ]
            assert sorted(out_entries) == sorted(graph.out_neighbors(vertex))
            assert sorted(in_entries) == sorted(graph.in_neighbors(vertex))
            assert [t for _, t in out_entries] == sorted(t for _, t in out_entries)
            assert [t for _, t in in_entries] == sorted(t for _, t in in_entries)

    def test_aligned_columns_agree_with_csr(self):
        view = _random_graph().view()
        for j, e in enumerate(view.out_edges):
            assert view.out_ts[j] == view.ts[e]
            assert view.out_dst[j] == view.dst[e]
        for j, e in enumerate(view.in_edges):
            assert view.in_ts[j] == view.ts[e]
            assert view.in_src[j] == view.src[e]

    def test_view_is_cached_per_epoch_and_invalidated_by_mutation(self):
        graph = _random_graph()
        view = graph.view()
        assert graph.view() is view  # cached
        assert view.epoch == graph.epoch
        graph.add_edge("brand", "new", 7)
        fresh = graph.view()
        assert fresh is not view
        assert fresh.num_edges == view.num_edges + 1
        assert fresh.epoch == graph.epoch

    def test_copy_shares_the_frozen_view(self):
        graph = _random_graph()
        view = graph.view()
        clone = graph.copy()
        assert clone.view() is view
        clone.add_edge("x", "y", 1)  # clone rebuilds, original unaffected
        assert clone.view() is not view
        assert graph.view() is view

    def test_slice_bounds_bisect_the_window(self):
        graph = TemporalGraph(edges=[("a", "b", t) for t in (1, 3, 5, 9)]
                              + [("a", "c", 3), ("b", "c", 2), ("b", "c", 7)])
        view = graph.view()
        lo, hi = view.slice_bounds((3, 7))
        assert [view.ts[i] for i in range(lo, hi)] == [3, 3, 5, 7]

    def test_full_view_selects_everything(self):
        graph = _random_graph()
        full = graph.view().full_view()
        assert full.num_edges == graph.num_edges
        assert set(full.edge_tuples()) == set(graph.edge_tuples())
        assert full == graph


# ----------------------------------------------------------------------
# SubgraphView: the edge-mask read API vs the materialized graph
# ----------------------------------------------------------------------
class TestSubgraphView:
    @pytest.fixture()
    def quick_pair(self):
        """A real mask view (Gq of the paper example) plus its materialization."""
        graph = paper_running_example()
        quick = quick_upper_bound_graph(graph, "s", "t", (2, 7))
        assert isinstance(quick, SubgraphView)
        return quick, quick.materialize()

    def test_read_api_matches_materialized_graph(self, quick_pair):
        view, graph = quick_pair
        assert view.num_vertices == graph.num_vertices
        assert view.num_edges == graph.num_edges
        assert set(view.vertices()) == set(graph.vertices())
        assert tuple(view.edge_tuples()) == tuple(graph.edge_tuples())
        assert view.sorted_edges() == graph.sorted_edges()
        assert view.sorted_edges(reverse=True) == graph.sorted_edges(reverse=True)
        assert view.timestamps() == graph.timestamps()
        assert view.min_timestamp == graph.min_timestamp
        assert view.max_timestamp == graph.max_timestamp
        assert view.time_interval() == graph.time_interval()
        for vertex in graph.vertices():
            assert view.out_neighbors(vertex) == graph.out_neighbors(vertex)
            assert view.in_neighbors(vertex) == graph.in_neighbors(vertex)
            assert view.out_degree(vertex) == graph.out_degree(vertex)
            assert view.in_degree(vertex) == graph.in_degree(vertex)
            assert view.out_timestamps(vertex) == graph.out_timestamps(vertex)
            assert view.in_timestamps(vertex) == graph.in_timestamps(vertex)
            assert view.out_neighbors_after(vertex, 4) == graph.out_neighbors_after(vertex, 4)
            assert view.in_neighbors_before(vertex, 4, strict=False) == (
                graph.in_neighbors_before(vertex, 4, strict=False)
            )

    def test_membership_and_dunders(self, quick_pair):
        view, graph = quick_pair
        for (u, v, t) in graph.edge_tuples():
            assert view.has_edge(u, v, t)
            assert (u, v, t) in view
        assert not view.has_edge("s", "a", 3)  # pruned by Lemma 1
        assert not view.has_vertex("a")
        assert len(view) == graph.num_vertices
        assert view == graph
        assert graph == view  # reflected comparison via SubgraphView.__eq__

    def test_views_are_unhashable(self, quick_pair):
        view, _ = quick_pair
        with pytest.raises(TypeError):
            hash(view)

    def test_masks_of_different_phases_compare_by_members(self):
        graph = paper_running_example()
        quick = quick_upper_bound_graph(graph, "s", "t", (2, 7))
        tight = tight_upper_bound_graph(quick, "s", "t", (2, 7))
        assert isinstance(tight, SubgraphView)
        assert tight.base is quick.base
        assert tight != quick  # TightUBG prunes at least one edge here
        assert set(tight.edge_tuples()) < set(quick.edge_tuples())

    def test_materialize_round_trips_through_temporal_graph(self):
        graph = _random_graph()
        full = graph.view().full_view()
        materialized = full.materialize()
        assert materialized == graph
        # and the materialized graph builds its own identical view
        assert set(materialized.view().full_view().edge_tuples()) == set(
            graph.edge_tuples()
        )

    def test_empty_view(self):
        graph = TemporalGraph(edges=[("a", "b", 1)])
        quick = quick_upper_bound_graph(graph, "a", "z", (1, 5))
        assert quick.num_edges == 0
        assert quick.num_vertices == 0
        assert list(quick.vertices()) == []
        assert quick.timestamps() == []
        assert quick.min_timestamp is None
        assert quick.time_interval() is None
        assert quick.materialize().num_edges == 0


# ----------------------------------------------------------------------
# snapshot persistence of the columnar state
# ----------------------------------------------------------------------
class TestViewPersistence:
    def test_warmed_state_round_trips_the_view(self):
        graph = _random_graph()
        state = graph.warmed_state()
        assert "view" in state
        rebuilt = TemporalGraph.from_warmed_state(state)
        # The adopted view is served without a rebuild…
        adopted = rebuilt.view()
        assert adopted.epoch == rebuilt.epoch
        assert list(adopted.ts) == list(graph.view().ts)
        assert list(adopted.out_edges) == list(graph.view().out_edges)
        assert adopted.labels == graph.view().labels

    def test_from_warmed_state_without_view_rebuilds_lazily(self):
        graph = _random_graph()
        state = graph.warmed_state()
        state.pop("view")
        rebuilt = TemporalGraph.from_warmed_state(state)
        view = rebuilt.view()  # built on demand, not adopted
        assert view.num_edges == graph.num_edges

    def test_snapshot_boot_is_view_servable(self, tmp_path):
        from repro.service import TspgService
        from repro.store import save_snapshot

        graph = _random_graph()
        path = tmp_path / "g.tspgsnap"
        save_snapshot(graph, path)
        service = TspgService.from_snapshot(path)
        assert service.graph._view_cache is not None
        vertices = sorted(service.graph.vertices())
        outcome = service.query(vertices[0], vertices[1], (1, 30))
        reference = TspgService(graph).query(vertices[0], vertices[1], (1, 30))
        assert outcome.result.edges == reference.result.edges


# ----------------------------------------------------------------------
# graph-layer satellites
# ----------------------------------------------------------------------
class TestEdgeTuplesSequence:
    def test_edge_tuples_is_sorted_and_shared(self):
        graph = _random_graph()
        first = graph.edge_tuples()
        assert isinstance(first, tuple)
        assert [t for (_, _, t) in first] == sorted(t for (_, _, t) in first)
        assert graph.edge_tuples() is first  # no per-call copy
        graph.add_edge("q", "r", 2)
        assert graph.edge_tuples() is not first  # invalidated by mutation

    def test_deprecated_set_alias(self):
        graph = _random_graph()
        with pytest.deprecated_call():
            old_shape = graph.edge_tuple_set()
        assert old_shape == set(graph.edge_tuples())
        assert isinstance(old_shape, set)

    def test_tie_order_is_a_function_of_the_edge_set(self):
        # Regression: the backing used to sort the edge *set* keyed on
        # timestamp only, so equal-timestamp tie order leaked the set's
        # hash-seed/insertion-dependent iteration order — a materialized
        # view could disagree with its source on edge_tuples() order
        # (flaked at ~1 in 10 PYTHONHASHSEEDs).  Same edges, any insertion
        # history → same order.
        edges = [("f", "b", 5), ("f", "e", 5), ("a", "b", 5),
                 ("s", "b", 2), ("b", "e", 5), ("e", "f", 2)]
        forward = TemporalGraph(edges=edges)
        backward = TemporalGraph(edges=list(reversed(edges)))
        one_by_one = TemporalGraph()
        for u, v, t in sorted(edges, key=lambda e: repr(e)):
            one_by_one.add_edge(u, v, t)
        assert tuple(forward.edge_tuples()) == tuple(backward.edge_tuples())
        assert tuple(forward.edge_tuples()) == tuple(one_by_one.edge_tuples())

    def test_materialized_view_preserves_edge_order(self):
        # The concrete shape of the old flake: the quick-UBG mask view and
        # its materialization must agree element-for-element, ties included.
        graph = paper_running_example()
        quick = quick_upper_bound_graph(graph, "s", "t", (2, 7))
        assert tuple(quick.edge_tuples()) == tuple(
            quick.materialize().edge_tuples()
        )


class TestBulkAddEdges:
    def test_bulk_equals_incremental(self):
        edges = [(u, v, t) for (u, v, t) in _random_graph(seed=9).edge_tuples()]
        bulk = TemporalGraph()
        assert bulk.add_edges(edges) == len(edges)
        incremental = TemporalGraph()
        for u, v, t in edges:
            incremental.add_edge(u, v, t)
        assert bulk == incremental
        for vertex in incremental.vertices():
            assert bulk.out_neighbors(vertex) == incremental.out_neighbors(vertex)
            assert bulk.in_neighbors(vertex) == incremental.in_neighbors(vertex)
        assert list(bulk.edge_tuples()) == list(incremental.edge_tuples())

    def test_bulk_preserves_tie_order_with_existing_entries(self):
        graph = TemporalGraph(edges=[("a", "x", 5)])
        graph.add_edges([("a", "y", 5), ("a", "z", 5), ("a", "w", 4)])
        assert graph.out_neighbors("a") == [("w", 4), ("x", 5), ("y", 5), ("z", 5)]

    def test_bulk_deduplicates_and_counts_new_edges_only(self):
        graph = TemporalGraph(edges=[("a", "b", 1)])
        added = graph.add_edges([("a", "b", 1), ("a", "c", 2), ("a", "c", 2)])
        assert added == 1
        assert graph.num_edges == 2

    def test_bulk_self_loop_is_atomic(self):
        graph = TemporalGraph()
        with pytest.raises(ValueError, match="self loops"):
            graph.add_edges([("a", "b", 1), ("c", "c", 2)])
        assert graph.num_edges == 0  # nothing from the batch was applied

    def test_bulk_bumps_epoch_once_per_batch(self):
        graph = TemporalGraph(vertices=["a", "b", "c"])
        before = graph.epoch
        graph.add_edges([("a", "b", 1), ("b", "c", 2)])
        assert graph.epoch == before + 1

    def test_project_uses_the_bulk_path(self):
        graph = _random_graph(seed=4)
        projected = graph.project((5, 20))
        assert all(5 <= t <= 20 for (_, _, t) in projected.edge_tuples())
        expected = {(u, v, t) for (u, v, t) in graph.edge_tuples() if 5 <= t <= 20}
        assert set(projected.edge_tuples()) == expected
