"""Tests for the benchmark reporting helpers."""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport, format_value, render_series, render_table


class TestFormatting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(float("inf")) == "INF"
        assert format_value(0.0) == "0"
        assert format_value(3.14159) == "3.142"
        assert format_value(0.0000123) == "1.230e-05"
        assert format_value(123456.0) == "1.235e+05"
        assert format_value("text") == "text"
        assert format_value(42) == "42"

    def test_render_table(self):
        rows = [{"name": "VUG", "time": 0.5}, {"name": "EPdtTSG", "time": 12.0}]
        text = render_table(rows, title="demo")
        assert "demo" in text
        assert "VUG" in text and "EPdtTSG" in text
        assert text.splitlines()[1].startswith("name")

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([], title="empty")
        assert render_table([]) == "(no rows)"

    def test_render_series(self):
        series = {"VUG": {8: 0.1, 10: 0.2}, "EPdtTSG": {8: 1.0}}
        text = render_series(series, x_label="theta")
        assert "theta" in text
        assert "VUG" in text
        # Missing points render as '-'.
        assert "-" in text


class TestExperimentReport:
    def test_rows_series_notes(self):
        report = ExperimentReport(experiment="Exp-X", description="demo experiment")
        report.add_row(dataset="D1", VUG=0.2)
        report.add_point("VUG", "D1", 0.2)
        report.add_note("substitution applied")
        text = report.render(x_label="dataset")
        assert "Exp-X" in text
        assert "demo experiment" in text
        assert "substitution applied" in text
        assert "D1" in text
        assert str(report)
