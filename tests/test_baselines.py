"""Tests for the baseline reductions and enumeration-based algorithms."""

from __future__ import annotations

import pytest

from repro.analysis.oracle import brute_force_tspg
from repro.baselines.enumeration import EnumerationBudgetExceeded, tspg_by_enumeration
from repro.baselines.ep_algorithms import EPdtTSG, EPesTSG, EPtgTSG, NaiveEnumeration
from repro.baselines.reductions import (
    dt_tsg_reduction,
    es_tsg_reduction,
    tg_tsg_reduction,
)
from repro.core.quick_ubg import quick_upper_bound_graph
from repro.core.tight_ubg import tight_upper_bound_graph
from repro.graph.generators import uniform_random_temporal_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validation import is_subgraph

from repro.testing import PAPER_GQ_EDGES, PAPER_TSPG_EDGES


class TestReductionsOnPaperExample:
    def test_dt_tsg_is_the_projected_graph(self, paper_query):
        graph, source, target, interval = paper_query
        reduced = dt_tsg_reduction(graph, source, target, interval)
        expected = graph.project(interval)
        assert reduced == expected
        # The edge with timestamp outside [2, 7] would be pruned; the running
        # example has none, so the projection keeps all 14 edges.
        assert reduced.num_edges == graph.num_edges

    def test_es_tsg_prunes_dead_edges(self, paper_query):
        graph, source, target, interval = paper_query
        reduced = es_tsg_reduction(graph, source, target, interval)
        # Fig. 2(b): s->a and d's incident edges are gone, cycle edges remain.
        assert not reduced.has_edge("s", "a", 3)
        assert not reduced.has_edge("d", "t", 2)
        assert reduced.has_edge("e", "c", 6)
        assert is_subgraph(reduced, graph)

    def test_tg_tsg_equals_quick_ubg(self, paper_query):
        graph, source, target, interval = paper_query
        reduced = tg_tsg_reduction(graph, source, target, interval)
        assert set(reduced.edge_tuples()) == PAPER_GQ_EDGES

    def test_containment_chain(self, paper_query):
        graph, source, target, interval = paper_query
        dt = dt_tsg_reduction(graph, source, target, interval)
        es = es_tsg_reduction(graph, source, target, interval)
        tg = tg_tsg_reduction(graph, source, target, interval)
        quick = quick_upper_bound_graph(graph, source, target, interval)
        tight = tight_upper_bound_graph(quick, source, target, interval)
        assert is_subgraph(tight, quick)
        assert is_subgraph(quick, tg) and is_subgraph(tg, quick)
        assert is_subgraph(tg, es)
        assert is_subgraph(es, dt)
        assert is_subgraph(dt, graph)


class TestReductionsOnRandomGraphs:
    @pytest.mark.parametrize("seed", range(5))
    def test_containment_chain_random(self, seed):
        graph = uniform_random_temporal_graph(15, 90, num_timestamps=12, seed=seed)
        source, target, interval = 0, 7, (2, 11)
        dt = dt_tsg_reduction(graph, source, target, interval)
        es = es_tsg_reduction(graph, source, target, interval)
        tg = tg_tsg_reduction(graph, source, target, interval)
        quick = quick_upper_bound_graph(graph, source, target, interval)
        tight = tight_upper_bound_graph(quick, source, target, interval)
        tspg = brute_force_tspg(graph, source, target, interval)
        assert set(tspg.edges) <= set(tight.edge_tuples())
        assert is_subgraph(tight, quick)
        assert set(quick.edge_tuples()) == set(tg.edge_tuples())
        assert is_subgraph(tg, es)
        assert is_subgraph(es, dt)


class TestEnumeration:
    def test_enumeration_on_projected_graph_matches_oracle(self, paper_query):
        graph, source, target, interval = paper_query
        outcome = tspg_by_enumeration(graph.project(interval), source, target, interval)
        assert set(outcome.result.edges) == PAPER_TSPG_EDGES
        assert outcome.num_paths == 2
        assert outcome.total_path_edges == 5  # one 3-hop path plus one 2-hop path

    def test_budget_exceeded(self, paper_query):
        graph, source, target, interval = paper_query
        with pytest.raises(EnumerationBudgetExceeded):
            tspg_by_enumeration(graph, source, target, interval, max_paths=1)

    def test_unreachable_returns_empty(self, unreachable_graph):
        outcome = tspg_by_enumeration(unreachable_graph, "s", "t", (1, 10))
        assert outcome.result.is_empty
        assert outcome.num_paths == 0

    def test_space_cost_grows_with_paths(self):
        graph = TemporalGraph(
            edges=[("s", "a", 1), ("s", "b", 1), ("a", "t", 2), ("b", "t", 2), ("s", "t", 3)]
        )
        outcome = tspg_by_enumeration(graph, "s", "t", (1, 3))
        assert outcome.num_paths == 3
        assert outcome.space_cost >= outcome.total_path_edges


class TestEPAlgorithms:
    @pytest.mark.parametrize("algorithm_cls", [NaiveEnumeration, EPdtTSG, EPesTSG, EPtgTSG])
    def test_paper_example_agreement(self, algorithm_cls, paper_query):
        graph, source, target, interval = paper_query
        outcome = algorithm_cls().run(graph, source, target, interval)
        assert set(outcome.result.edges) == PAPER_TSPG_EDGES
        assert outcome.elapsed_seconds >= 0.0
        assert outcome.space_cost > 0

    @pytest.mark.parametrize("algorithm_cls", [EPdtTSG, EPesTSG, EPtgTSG])
    @pytest.mark.parametrize("seed", range(3))
    def test_random_graph_agreement_with_oracle(self, algorithm_cls, seed):
        graph = uniform_random_temporal_graph(12, 70, num_timestamps=10, seed=seed)
        source, target, interval = 1, 8, (1, 9)
        expected = brute_force_tspg(graph, source, target, interval)
        outcome = algorithm_cls().run(graph, source, target, interval)
        assert outcome.result.same_members(expected)

    def test_max_paths_marks_timeout(self, paper_query):
        graph, source, target, interval = paper_query
        outcome = EPdtTSG(max_paths=1).run(graph, source, target, interval)
        assert outcome.timed_out
        assert outcome.result.is_empty

    def test_upper_bound_sizes_recorded(self, paper_query):
        graph, source, target, interval = paper_query
        dt = EPdtTSG().run(graph, source, target, interval)
        tg = EPtgTSG().run(graph, source, target, interval)
        assert dt.extras["upper_bound_edges"] >= tg.extras["upper_bound_edges"]
