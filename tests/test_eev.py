"""Unit tests for escaped edges verification (Algorithms 6 and 7)."""

from __future__ import annotations

import pytest

from repro.analysis.oracle import brute_force_tspg
from repro.core.eev import BidirectionalSearcher, escaped_edges_verification
from repro.core.quick_ubg import quick_upper_bound_graph
from repro.core.tight_ubg import tight_upper_bound_graph
from repro.graph.edge import TemporalEdge, TimeInterval
from repro.graph.temporal_graph import TemporalGraph

from repro.testing import PAPER_TSPG_EDGES, PAPER_TSPG_VERTICES


@pytest.fixture
def paper_tight(paper_query):
    graph, source, target, interval = paper_query
    quick = quick_upper_bound_graph(graph, source, target, interval)
    return tight_upper_bound_graph(quick, source, target, interval)


class TestPaperExample:
    def test_exact_tspg(self, paper_query, paper_tight):
        _, source, target, interval = paper_query
        result = escaped_edges_verification(paper_tight, source, target, interval)
        assert set(result.edges) == PAPER_TSPG_EDGES
        assert set(result.vertices) == PAPER_TSPG_VERTICES

    def test_statistics_account_for_every_edge(self, paper_query, paper_tight):
        _, source, target, interval = paper_query
        result, stats = escaped_edges_verification(
            paper_tight, source, target, interval, collect_statistics=True
        )
        assert set(result.edges) == PAPER_TSPG_EDGES
        assert stats.edges_total == paper_tight.num_edges
        # s->b, b->t, c->t are confirmed by Lemma 2, b->c by Lemma 10 and
        # c->f is rejected by the bidirectional search.
        assert stats.confirmed_by_lemma2 == 3
        assert stats.confirmed_by_lemma10 == 1
        assert stats.rejected_by_search == 1
        assert stats.searches_performed == 1

    def test_without_lemma10_same_result(self, paper_query, paper_tight):
        _, source, target, interval = paper_query
        result = escaped_edges_verification(
            paper_tight, source, target, interval, use_lemma10=False
        )
        assert set(result.edges) == PAPER_TSPG_EDGES

    def test_eev_on_quick_bound_matches_oracle(self, paper_query):
        graph, source, target, interval = paper_query
        quick = quick_upper_bound_graph(graph, source, target, interval)
        result = escaped_edges_verification(
            quick, source, target, interval, use_lemma10=False
        )
        oracle = brute_force_tspg(graph, source, target, interval)
        assert result.same_members(oracle)


class TestReplacementEdges:
    def test_parallel_edges_confirmed_in_one_batch(self):
        # Two parallel edges a->b at timestamps 3 and 4 both complete a simple
        # path; Lemma 11 confirms them from a single witness search.
        graph = TemporalGraph(
            edges=[("s", "a", 1), ("a", "b", 3), ("a", "b", 4), ("b", "c", 5), ("c", "t", 6)]
        )
        interval = (1, 6)
        quick = quick_upper_bound_graph(graph, "s", "t", interval)
        tight = tight_upper_bound_graph(quick, "s", "t", interval)
        result, stats = escaped_edges_verification(
            tight, "s", "t", interval, collect_statistics=True
        )
        oracle = brute_force_tspg(graph, "s", "t", interval)
        assert result.same_members(oracle)
        assert ("a", "b", 3) in result.edges
        assert ("a", "b", 4) in result.edges
        # The cheap rules plus batch confirmation keep the search count low.
        assert stats.searches_performed <= 1

    def test_replacement_edge_outside_window_not_confirmed(self):
        graph = TemporalGraph(
            edges=[("s", "a", 2), ("a", "b", 3), ("a", "b", 9), ("b", "c", 4), ("c", "t", 5)]
        )
        interval = (1, 6)
        quick = quick_upper_bound_graph(graph, "s", "t", interval)
        tight = tight_upper_bound_graph(quick, "s", "t", interval)
        result = escaped_edges_verification(tight, "s", "t", interval)
        assert ("a", "b", 3) in result.edges
        assert ("a", "b", 9) not in result.edges


class TestBidirectionalSearcher:
    def test_witness_found_for_tspg_edge(self, paper_query, paper_tight):
        _, source, target, interval = paper_query
        searcher = BidirectionalSearcher(paper_tight, source, target, interval)
        witness = searcher.find_witness_path(TemporalEdge("b", "c", 3))
        assert witness is not None
        assert witness.source == source
        assert witness.target == target
        assert witness.is_simple()
        assert witness.contains_edge(TemporalEdge("b", "c", 3))

    def test_no_witness_for_pruned_edge(self, paper_query, paper_tight):
        _, source, target, interval = paper_query
        searcher = BidirectionalSearcher(paper_tight, source, target, interval)
        assert searcher.find_witness_path(TemporalEdge("c", "f", 4)) is None

    def test_direct_edge_between_endpoints(self):
        graph = TemporalGraph(edges=[("s", "t", 3)])
        searcher = BidirectionalSearcher(graph, "s", "t", TimeInterval(1, 5))
        witness = searcher.find_witness_path(TemporalEdge("s", "t", 3))
        assert witness is not None
        assert witness.length == 1

    def test_edge_outside_interval_has_no_witness(self):
        graph = TemporalGraph(edges=[("s", "t", 30)])
        searcher = BidirectionalSearcher(graph, "s", "t", TimeInterval(1, 5))
        assert searcher.find_witness_path(TemporalEdge("s", "t", 30)) is None

    def test_vertex_disjointness_is_enforced(self):
        # The only continuation from b to t revisits a, so the edge (a, b, 2)
        # admits no simple witness.
        graph = TemporalGraph(
            edges=[("s", "a", 1), ("a", "b", 2), ("b", "a", 3), ("a", "t", 4)]
        )
        searcher = BidirectionalSearcher(graph, "s", "t", TimeInterval(1, 5))
        witness = searcher.find_witness_path(TemporalEdge("b", "a", 3))
        assert witness is None

    def test_search_direction_heuristic_does_not_change_result(self):
        graph = TemporalGraph(
            edges=[
                ("s", "a", 1),
                ("a", "m", 2),
                ("m", "b", 8),
                ("b", "t", 9),
                ("s", "m", 7),
                ("m", "t", 8),
            ]
        )
        searcher = BidirectionalSearcher(graph, "s", "t", TimeInterval(1, 9))
        # τ - τb > τe - τ  → forward first.
        late = searcher.find_witness_path(TemporalEdge("m", "b", 8))
        # τ - τb < τe - τ  → backward first.
        early = searcher.find_witness_path(TemporalEdge("a", "m", 2))
        assert late is not None and late.is_simple()
        assert early is not None and early.is_simple()


class TestEdgeCases:
    def test_empty_tight_graph(self):
        empty = TemporalGraph()
        result = escaped_edges_verification(empty, "s", "t", (1, 5))
        assert result.is_empty

    def test_result_is_symmetric_under_parallel_source_edges(self):
        graph = TemporalGraph(
            edges=[("s", "a", 1), ("s", "a", 2), ("a", "t", 3), ("a", "t", 4)]
        )
        interval = (1, 4)
        quick = quick_upper_bound_graph(graph, "s", "t", interval)
        tight = tight_upper_bound_graph(quick, "s", "t", interval)
        result = escaped_edges_verification(tight, "s", "t", interval)
        oracle = brute_force_tspg(graph, "s", "t", interval)
        assert result.same_members(oracle)
        assert len(result.edges) == 4
