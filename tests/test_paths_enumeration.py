"""Tests for path enumeration, reachability and counting."""

from __future__ import annotations

import pytest

from repro.graph.temporal_graph import TemporalGraph
from repro.paths.counting import (
    count_temporal_paths,
    count_temporal_simple_paths,
    count_temporal_simple_paths_capped,
)
from repro.paths.enumerate import (
    EnumerationLimitExceeded,
    collect_path_graph_members,
    enumerate_temporal_paths,
    enumerate_temporal_simple_paths,
    exists_temporal_path,
    exists_temporal_simple_path,
)
from repro.paths.reachability import (
    INFINITY,
    NEG_INFINITY,
    can_reach,
    co_reachable_set,
    earliest_arrival_times,
    latest_departure_times,
    reachable_set,
)


class TestEnumeration:
    def test_paper_example_has_two_paths(self, paper_query):
        graph, source, target, interval = paper_query
        paths = list(enumerate_temporal_simple_paths(graph, source, target, interval))
        assert len(paths) == 2
        rendered = {tuple(edge.as_tuple() for edge in path.edges) for path in paths}
        assert (("s", "b", 2), ("b", "t", 6)) in rendered
        assert (("s", "b", 2), ("b", "c", 3), ("c", "t", 7)) in rendered

    def test_all_paths_are_simple_and_within_interval(self, paper_query):
        graph, source, target, interval = paper_query
        for path in enumerate_temporal_simple_paths(graph, source, target, interval):
            assert path.is_simple()
            assert path.within(interval)
            assert path.source == source and path.target == target

    def test_interval_restricts_results(self, paper_graph):
        paths = list(enumerate_temporal_simple_paths(paper_graph, "s", "t", (2, 6)))
        assert len(paths) == 1  # only s->b->t fits into [2, 6]

    def test_same_source_target_yields_nothing(self, paper_graph):
        assert list(enumerate_temporal_simple_paths(paper_graph, "s", "s", (2, 7))) == []

    def test_missing_vertices_yield_nothing(self, paper_graph):
        assert list(enumerate_temporal_simple_paths(paper_graph, "zz", "t", (2, 7))) == []
        assert list(enumerate_temporal_simple_paths(paper_graph, "s", "zz", (2, 7))) == []

    def test_max_paths_limit(self, paper_query):
        graph, source, target, interval = paper_query
        with pytest.raises(EnumerationLimitExceeded):
            list(enumerate_temporal_simple_paths(graph, source, target, interval, max_paths=1))

    def test_max_length_limit(self, paper_query):
        graph, source, target, interval = paper_query
        short = list(
            enumerate_temporal_simple_paths(graph, source, target, interval, max_length=2)
        )
        assert len(short) == 1

    def test_temporal_paths_include_non_simple_walks(self):
        graph = TemporalGraph(
            edges=[("s", "a", 1), ("a", "b", 2), ("b", "a", 3), ("a", "t", 4), ("a", "t", 2)]
        )
        simple = list(enumerate_temporal_simple_paths(graph, "s", "t", (1, 4)))
        walks = list(enumerate_temporal_paths(graph, "s", "t", (1, 4)))
        assert len(walks) > len(simple)
        assert any(not walk.is_simple() for walk in walks)

    def test_collect_path_graph_members(self, paper_query):
        graph, source, target, interval = paper_query
        vertices, edges, count = collect_path_graph_members(graph, source, target, interval)
        assert count == 2
        assert vertices == {"s", "b", "c", "t"}
        assert edges == {("s", "b", 2), ("b", "c", 3), ("b", "t", 6), ("c", "t", 7)}

    def test_existence_helpers(self, paper_query, unreachable_graph):
        graph, source, target, interval = paper_query
        assert exists_temporal_simple_path(graph, source, target, interval)
        assert exists_temporal_path(graph, source, target, interval)
        assert not exists_temporal_simple_path(unreachable_graph, "s", "t", (1, 10))


class TestReachability:
    def test_earliest_arrival_strict_vs_nonstrict(self):
        graph = TemporalGraph(edges=[("s", "a", 3), ("a", "b", 3), ("b", "t", 4)])
        strict = earliest_arrival_times(graph, "s", (1, 5), strict=True)
        relaxed = earliest_arrival_times(graph, "s", (1, 5), strict=False)
        assert strict["b"] == INFINITY
        assert relaxed["b"] == 3

    def test_latest_departure_strict_vs_nonstrict(self):
        graph = TemporalGraph(edges=[("s", "a", 3), ("a", "t", 3)])
        strict = latest_departure_times(graph, "t", (1, 5), strict=True)
        relaxed = latest_departure_times(graph, "t", (1, 5), strict=False)
        assert strict["s"] == NEG_INFINITY
        assert relaxed["s"] == 3

    def test_forbidden_vertex_blocks_paths(self):
        graph = TemporalGraph(edges=[("s", "x", 1), ("x", "b", 2)])
        blocked = earliest_arrival_times(graph, "s", (1, 5), forbidden="x")
        assert blocked["b"] == INFINITY

    def test_can_reach_and_sets(self, paper_query):
        graph, source, target, interval = paper_query
        assert can_reach(graph, source, target, interval)
        assert not can_reach(graph, source, source, interval)
        assert target in reachable_set(graph, source, interval)
        assert source in co_reachable_set(graph, target, interval)

    def test_interval_bounds_respected(self, paper_graph):
        assert not can_reach(paper_graph, "s", "t", (7, 7))
        assert can_reach(paper_graph, "s", "t", (2, 6))


class TestCounting:
    def test_counts_match_enumeration(self, paper_query):
        graph, source, target, interval = paper_query
        expected = len(list(enumerate_temporal_simple_paths(graph, source, target, interval)))
        assert count_temporal_simple_paths(graph, source, target, interval) == expected

    def test_cap_saturation(self, paper_query):
        graph, source, target, interval = paper_query
        capped = count_temporal_simple_paths_capped(graph, source, target, interval, cap=1)
        assert capped.count == 1
        assert capped.capped
        assert int(capped) == 1

    def test_count_temporal_paths_at_least_simple_count(self):
        graph = TemporalGraph(
            edges=[("s", "a", 1), ("a", "b", 2), ("b", "a", 3), ("a", "t", 4)]
        )
        simple = count_temporal_simple_paths(graph, "s", "t", (1, 4))
        walks = count_temporal_paths(graph, "s", "t", (1, 4))
        assert walks.count >= simple

    def test_zero_for_unreachable(self, unreachable_graph):
        assert count_temporal_simple_paths(unreachable_graph, "s", "t", (1, 10)) == 0
        assert count_temporal_paths(unreachable_graph, "s", "t", (1, 10)).count == 0
