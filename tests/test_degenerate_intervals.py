"""Degenerate query windows: one empty-slice convention for every backend.

The vectorized kernels and the pure-Python mask builds must agree on what a
degenerate interval means *before* either is allowed to diverge:

* an inverted interval (``begin > end``) is a construction error —
  :class:`TimeInterval` rejects it, so no kernel ever sees one;
* a window that covers no edges (entirely before/after the graph's time
  span, or a gap between timestamps) slices to ``lo == hi`` and yields the
  empty mask view;
* a single-instant window (``begin == end``) is valid and selects exactly
  the edges at that timestamp that Lemma 1 admits.

These tests iterate the full algorithm registry, so any backend registered
later (``VUG-vectorized``) is covered automatically.
"""

from __future__ import annotations

import pytest

from repro.algorithms import available_algorithms, get_algorithm
from repro.graph.edge import TimeInterval, as_interval
from repro.graph.generators import bursty_email_graph
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture(scope="module")
def graph():
    g = bursty_email_graph(
        num_vertices=16, num_bursts=4, edges_per_burst=30, burst_width=4,
        gap_between_bursts=5, seed=5,
    )
    g.warm_indices()
    return g


class TestInvertedIntervals:
    def test_time_interval_rejects_begin_after_end(self):
        with pytest.raises(ValueError):
            TimeInterval(5, 3)

    def test_as_interval_rejects_inverted_pairs(self):
        with pytest.raises(ValueError):
            as_interval((7, 2))

    def test_every_algorithm_rejects_inverted_windows(self, graph):
        vertices = sorted(graph.vertices())
        for name in available_algorithms():
            with pytest.raises(ValueError):
                get_algorithm(name).run(graph, vertices[0], vertices[1], (9, 1))


class TestEmptyWindows:
    """Windows covering no edges: ``lo == hi`` and the empty result."""

    def _empty_windows(self, graph):
        span = graph.time_interval()
        # Entirely before, entirely after, and a single instant in the gap
        # between the first two bursts (the generator leaves one).
        windows = [
            (span.begin - 10, span.begin - 1),
            (span.end + 1, span.end + 10),
        ]
        timestamps = graph.timestamps()
        for earlier, later in zip(timestamps, timestamps[1:]):
            if later - earlier > 1:
                windows.append((earlier + 1, later - 1))
                break
        return windows

    def test_slice_bounds_collapse(self, graph):
        view = graph.view()
        for window in self._empty_windows(graph):
            lo, hi = view.slice_bounds(window)
            assert lo == hi, window

    def test_full_pipeline_returns_empty_everywhere(self, graph):
        vertices = sorted(graph.vertices())
        source, target = vertices[0], vertices[1]
        for window in self._empty_windows(graph):
            for name in available_algorithms():
                outcome = get_algorithm(name).run(graph, source, target, window)
                assert outcome.result.vertices == set(), (name, window)
                assert outcome.result.edges == set(), (name, window)
                assert outcome.timed_out is False, (name, window)

    def test_empty_mask_view_is_well_behaved(self, graph):
        from repro.core.polarity import compute_polarity_id_arrays
        from repro.core.quick_ubg import quick_mask_kernel

        view = graph.view()
        span = graph.time_interval()
        window = (span.begin - 10, span.begin - 1)
        vertices = sorted(graph.vertices())
        arrival, departure = compute_polarity_id_arrays(
            view, vertices[0], vertices[1], window
        )
        empty = quick_mask_kernel(view, arrival, departure, window)
        assert empty.num_edges == 0
        assert empty.num_vertices == 0
        assert list(empty.vertices()) == []
        assert empty.timestamps() == []
        assert empty.time_interval() is None
        assert empty.sorted_edges() == []


class TestSingleInstantWindows:
    """``begin == end`` is legal: only direct s→t edges at τ can survive."""

    def test_instant_window_results_agree_across_registry(self, graph):
        vertices = sorted(graph.vertices())
        source, target = vertices[0], vertices[1]
        reference_algorithm = get_algorithm("VUG-materializing")
        for timestamp in graph.timestamps()[:6]:
            window = (timestamp, timestamp)
            reference = reference_algorithm.run(graph, source, target, window)
            # Any path within [τ, τ] has exactly one edge: s → t at τ.
            direct = {
                (u, v, t)
                for (u, v, t) in graph.edge_tuples()
                if u == source and v == target and t == timestamp
            }
            assert reference.result.edges == direct, window
            for name in available_algorithms():
                outcome = get_algorithm(name).run(graph, source, target, window)
                assert outcome.result.vertices == reference.result.vertices, (
                    name,
                    window,
                )
                assert outcome.result.edges == reference.result.edges, (name, window)
