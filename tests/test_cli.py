"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.io import save_edge_list
from repro.graph.temporal_graph import TemporalGraph


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_requires_input_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--source", "a", "--target", "b",
                                       "--begin", "1", "--end", "2"])


class TestQueryCommand:
    def test_query_on_edge_list(self, tmp_path, capsys):
        graph = TemporalGraph(edges=[("s", "b", 2), ("b", "t", 6), ("b", "c", 3), ("c", "t", 7)])
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        exit_code = main([
            "query", "--edge-list", str(path),
            "--source", "s", "--target", "t",
            "--begin", "2", "--end", "7", "--show-edges",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "4 edges" in captured
        assert "s -> b @ 2" in captured

    def test_query_on_builtin_dataset_with_integer_vertices(self, capsys):
        exit_code = main([
            "query", "--dataset", "D1",
            "--source", "0", "--target", "1",
            "--begin", "1", "--end", "40",
        ])
        assert exit_code == 0
        assert "tspG has" in capsys.readouterr().out

    def test_query_with_alternative_algorithm(self, tmp_path, capsys):
        graph = TemporalGraph(edges=[("s", "t", 3)])
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        exit_code = main([
            "query", "--edge-list", str(path),
            "--source", "s", "--target", "t",
            "--begin", "1", "--end", "5",
            "--algorithm", "EPdtTSG",
        ])
        assert exit_code == 0
        assert "EPdtTSG" in capsys.readouterr().out


class TestOtherCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "D1" in out and "D10" in out
        assert "email-Eu-core" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_theta_sweep(self, capsys):
        assert main([
            "experiment", "exp2", "--dataset", "D1", "--queries", "2",
            "--thetas", "4", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Exp-2" in out

    def test_experiment_multi_dataset(self, capsys):
        assert main([
            "experiment", "exp4", "--datasets", "D1", "--queries", "2",
        ]) == 0
        assert "Exp-4" in capsys.readouterr().out

    def test_case_study(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "Silver Ave" in out
        assert "30th St" in out
