"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.io import save_edge_list
from repro.graph.temporal_graph import TemporalGraph


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_requires_input_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--source", "a", "--target", "b",
                                       "--begin", "1", "--end", "2"])


class TestQueryCommand:
    def test_query_on_edge_list(self, tmp_path, capsys):
        graph = TemporalGraph(edges=[("s", "b", 2), ("b", "t", 6), ("b", "c", 3), ("c", "t", 7)])
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        exit_code = main([
            "query", "--edge-list", str(path),
            "--source", "s", "--target", "t",
            "--begin", "2", "--end", "7", "--show-edges",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "4 edges" in captured
        assert "s -> b @ 2" in captured

    def test_query_on_builtin_dataset_with_integer_vertices(self, capsys):
        exit_code = main([
            "query", "--dataset", "D1",
            "--source", "0", "--target", "1",
            "--begin", "1", "--end", "40",
        ])
        assert exit_code == 0
        assert "tspG has" in capsys.readouterr().out

    def test_query_with_alternative_algorithm(self, tmp_path, capsys):
        graph = TemporalGraph(edges=[("s", "t", 3)])
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        exit_code = main([
            "query", "--edge-list", str(path),
            "--source", "s", "--target", "t",
            "--begin", "1", "--end", "5",
            "--algorithm", "EPdtTSG",
        ])
        assert exit_code == 0
        assert "EPdtTSG" in capsys.readouterr().out


class TestOtherCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "D1" in out and "D10" in out
        assert "email-Eu-core" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_theta_sweep(self, capsys):
        assert main([
            "experiment", "exp2", "--dataset", "D1", "--queries", "2",
            "--thetas", "4", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Exp-2" in out

    def test_experiment_multi_dataset(self, capsys):
        assert main([
            "experiment", "exp4", "--datasets", "D1", "--queries", "2",
        ]) == 0
        assert "Exp-4" in capsys.readouterr().out

    def test_case_study(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "Silver Ave" in out
        assert "30th St" in out


class TestWarmCommand:
    def test_warm_writes_a_loadable_snapshot(self, tmp_path, capsys):
        from repro.store import peek_snapshot

        graph = TemporalGraph(edges=[("s", "b", 2), ("b", "t", 6), ("b", "c", 3)])
        edge_list = tmp_path / "graph.txt"
        save_edge_list(graph, edge_list)
        snapshot = tmp_path / "graph.tspgsnap"
        assert main([
            "warm", "--edge-list", str(edge_list), "--output", str(snapshot),
        ]) == 0
        out = capsys.readouterr().out
        assert "snapshot v4 written" in out
        info = peek_snapshot(snapshot)
        assert info.num_edges == 3

    def test_warm_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warm", "--output", "x.tspgsnap"])

    def test_warm_shards_writes_a_bootable_shard_set(self, tmp_path, capsys):
        from repro.store import ShardSnapshotSet

        graph = TemporalGraph(
            edges=[("s", "b", 2), ("b", "t", 6), ("b", "c", 3), ("c", "t", 7)]
        )
        edge_list = tmp_path / "graph.txt"
        save_edge_list(graph, edge_list)
        shard_dir = tmp_path / "shards"
        assert main([
            "warm", "--edge-list", str(edge_list),
            "--shards", "2", "--shard-overlap", "3",
            "--output", str(shard_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "shard set v1 written" in out
        assert "2 shards" in out
        manifest = ShardSnapshotSet(shard_dir).manifest()
        assert manifest.num_shards == 2
        assert manifest.overlap == 3

    def test_warm_validates_shard_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--shards"):
            main(["warm", "--dataset", "D1", "--shards", "0", "--output", "x"])
        with pytest.raises(SystemExit, match="--shard-overlap"):
            main(["warm", "--dataset", "D1", "--shards", "2",
                  "--shard-overlap", "-1", "--output", "x"])


class TestBatchCommand:
    def _edge_list(self, tmp_path):
        graph = TemporalGraph(
            edges=[("s", "b", 2), ("b", "t", 6), ("b", "c", 3), ("c", "t", 7),
                   ("s", "c", 4), ("c", "b", 5)]
        )
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        return path

    def test_batch_from_snapshot(self, tmp_path, capsys):
        edge_list = self._edge_list(tmp_path)
        snapshot = tmp_path / "g.tspgsnap"
        assert main(["warm", "--edge-list", str(edge_list),
                     "--output", str(snapshot)]) == 0
        capsys.readouterr()
        assert main([
            "batch", "--snapshot", str(snapshot),
            "--num-queries", "5", "--theta", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "snapshot" in out
        assert "Batch of 5 queries" in out

    def test_batch_sharded(self, tmp_path, capsys):
        edge_list = self._edge_list(tmp_path)
        assert main([
            "batch", "--edge-list", str(edge_list),
            "--num-queries", "5", "--theta", "4",
            "--shards", "2", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "fallback" in out

    def test_batch_sharded_from_snapshot_end_to_end(self, tmp_path, capsys):
        edge_list = self._edge_list(tmp_path)
        snapshot = tmp_path / "g.tspgsnap"
        assert main(["warm", "--edge-list", str(edge_list),
                     "--output", str(snapshot)]) == 0
        capsys.readouterr()
        assert main([
            "batch", "--snapshot", str(snapshot),
            "--num-queries", "5", "--theta", "4",
            "--shards", "3", "--shard-overlap", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 shards" in out
        assert "5/5" in out

    def test_batch_from_shard_snapshots_with_process_executor(self, tmp_path, capsys):
        edge_list = self._edge_list(tmp_path)
        shard_dir = tmp_path / "shards"
        assert main(["warm", "--edge-list", str(edge_list),
                     "--shards", "2", "--shard-overlap", "3",
                     "--output", str(shard_dir)]) == 0
        capsys.readouterr()
        assert main([
            "batch", "--shard-snapshots", str(shard_dir),
            "--num-queries", "5", "--theta", "4",
            "--workers", "2", "--executor", "processes",
        ]) == 0
        out = capsys.readouterr().out
        assert "shard snapshots" in out
        assert "2 shards" in out
        assert "5/5" in out

    def test_batch_shard_snapshots_conflicts_with_shards_flag(self, tmp_path):
        with pytest.raises(SystemExit, match="conflicts"):
            main(["batch", "--shard-snapshots", str(tmp_path),
                  "--shards", "2", "--num-queries", "2"])
        with pytest.raises(SystemExit, match="conflicts"):
            main(["batch", "--shard-snapshots", str(tmp_path),
                  "--shard-overlap", "6", "--num-queries", "2"])

    def test_batch_rejects_missing_shard_set(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot open shard manifest"):
            main(["batch", "--shard-snapshots", str(tmp_path / "nope"),
                  "--num-queries", "2"])

    def test_batch_rejects_corrupt_snapshot(self, tmp_path):
        bad = tmp_path / "bad.tspgsnap"
        bad.write_bytes(b"not a snapshot at all")
        with pytest.raises(SystemExit, match="not a tspG snapshot|truncated"):
            main(["batch", "--snapshot", str(bad), "--num-queries", "2"])

    def test_batch_validates_shard_flags(self, tmp_path):
        edge_list = self._edge_list(tmp_path)
        with pytest.raises(SystemExit, match="--shards"):
            main(["batch", "--edge-list", str(edge_list), "--shards", "0"])
        with pytest.raises(SystemExit, match="--shard-overlap"):
            main(["batch", "--edge-list", str(edge_list),
                  "--shards", "2", "--shard-overlap", "-1"])

    def test_snapshot_and_dataset_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["batch", "--dataset", "D1", "--snapshot", "x.tspgsnap"]
            )

    def test_process_fallback_note_names_the_specific_reason(self, tmp_path, capsys):
        # No snapshot attached: the note must say so, not recite every
        # possible degrade condition.
        edge_list = self._edge_list(tmp_path)
        assert main([
            "batch", "--edge-list", str(edge_list),
            "--num-queries", "4", "--theta", "4",
            "--workers", "2", "--executor", "processes",
        ]) == 0
        out = capsys.readouterr().out
        assert "no snapshot is attached" in out
        assert "max_workers=1" not in out

    def test_process_fallback_note_names_single_query_batch(self, tmp_path, capsys):
        # Regression: a <=1-query batch degrades to serial inside
        # run_batch, which process_fallback_reasons cannot see — the CLI
        # must name it rather than claim everything was cache-served.
        edge_list = self._edge_list(tmp_path)
        snapshot = tmp_path / "g.tspgsnap"
        assert main(["warm", "--edge-list", str(edge_list),
                     "--output", str(snapshot)]) == 0
        capsys.readouterr()
        assert main([
            "batch", "--snapshot", str(snapshot),
            "--num-queries", "1", "--theta", "4",
            "--workers", "2", "--executor", "processes",
        ]) == 0
        out = capsys.readouterr().out
        assert "a batch of one query runs serially" in out
        assert "answered from the result cache" not in out

    def test_process_fallback_note_names_serial_request(self, tmp_path, capsys):
        edge_list = self._edge_list(tmp_path)
        snapshot = tmp_path / "g.tspgsnap"
        assert main(["warm", "--edge-list", str(edge_list),
                     "--output", str(snapshot)]) == 0
        capsys.readouterr()
        assert main([
            "batch", "--snapshot", str(snapshot),
            "--num-queries", "4", "--theta", "4",
            "--workers", "1", "--executor", "processes",
        ]) == 0
        out = capsys.readouterr().out
        assert "max_workers=1" in out
        assert "no snapshot is attached" not in out


class TestServeCommand:
    def _edge_list(self, tmp_path):
        graph = TemporalGraph(
            edges=[("s", "b", 2), ("b", "t", 6), ("b", "c", 3), ("c", "t", 7),
                   ("s", "c", 4), ("c", "b", 5)]
        )
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        return path

    def _run(self, tmp_path, requests, extra_args=(), capsys=None):
        script = tmp_path / "requests.jsonl"
        script.write_text("\n".join(requests) + "\n", encoding="utf-8")
        edge_list = self._edge_list(tmp_path)
        code = main([
            "serve", "--edge-list", str(edge_list),
            "--executor", "threads", "--input", str(script), *extra_args,
        ])
        assert code == 0
        out = capsys.readouterr().out
        return [json.loads(line) for line in out.splitlines() if line.strip()]

    def test_query_batch_and_stats_round_trip(self, tmp_path, capsys):
        responses = self._run(tmp_path, [
            '{"source": "s", "target": "t", "begin": 2, "end": 7}',
            '{"queries": [["s", "t", 2, 7], ["b", "t", 3, 7]]}',
            '{"op": "stats"}',
        ], capsys=capsys)
        query, batch, stats = responses
        assert query["ok"] and query["op"] == "query"
        assert query["num_edges"] > 0 and query["timed_out"] is False
        assert batch["ok"] and batch["op"] == "batch"
        assert batch["queries"] == "2/2"
        assert stats["ok"] and stats["cache"]["misses"] >= 2
        assert "pool" not in stats  # thread executor attaches no pool

    def test_expired_deadline_reports_timed_out(self, tmp_path, capsys):
        responses = self._run(tmp_path, [
            '{"source": "s", "target": "t", "begin": 2, "end": 7, "deadline_ms": -1}',
        ], capsys=capsys)
        assert responses[0]["ok"] is True
        assert responses[0]["timed_out"] is True
        assert responses[0]["num_edges"] == 0

    def test_malformed_requests_do_not_end_the_loop(self, tmp_path, capsys):
        responses = self._run(tmp_path, [
            "definitely not json",
            '{"op": "unknown-op"}',
            '{"source": "s", "target": "t"}',
            '{"queries": [], "op": "batch"}',
            '{"algorithm": "nope", "source": "s", "target": "t", "begin": 1, "end": 2}',
            '{"source": "s", "target": "t", "begin": 2, "end": 7}',
        ], capsys=capsys)
        assert [r["ok"] for r in responses] == [False] * 5 + [True]
        assert "missing begin, end" in responses[2]["error"]
        assert "unknown algorithm" in responses[4]["error"]

    def test_quit_ends_the_session_early(self, tmp_path, capsys):
        # quit is acknowledged (so shutdown is observable, symmetric with
        # every other op) and everything after it goes unanswered.
        responses = self._run(tmp_path, [
            '{"op": "quit"}',
            '{"source": "s", "target": "t", "begin": 2, "end": 7}',
        ], capsys=capsys)
        assert responses == [{"ok": True, "op": "quit"}]

    def test_blank_lines_and_comments_answer_nothing(self, tmp_path, capsys):
        # Keystroke artifacts of an interactive session are not requests:
        # no error response per blank line, and the loop keeps serving.
        responses = self._run(tmp_path, [
            "",
            "   ",
            "# a comment, not a request",
            '{"source": "s", "target": "t", "begin": 2, "end": 7}',
        ], capsys=capsys)
        assert len(responses) == 1
        assert responses[0]["ok"] is True and responses[0]["op"] == "query"

    def test_eof_and_quit_shutdown_paths_are_symmetric(self, tmp_path, capsys):
        # Same requests, one session ended by quit and one by EOF: both
        # answer every request, print the same served-count summary, and
        # differ only by the quit ack itself.
        edge_list = self._edge_list(tmp_path)
        outputs = {}
        for name, requests in (
            ("eof", ['{"source": "s", "target": "t", "begin": 2, "end": 7}']),
            ("quit", ['{"source": "s", "target": "t", "begin": 2, "end": 7}',
                      '{"op": "quit"}']),
        ):
            script = tmp_path / f"{name}.jsonl"
            script.write_text("\n".join(requests) + "\n", encoding="utf-8")
            assert main([
                "serve", "--edge-list", str(edge_list),
                "--executor", "threads", "--input", str(script),
            ]) == 0
            captured = capsys.readouterr()
            outputs[name] = (
                [json.loads(line) for line in captured.out.splitlines() if line.strip()],
                captured.err,
            )
        eof_responses, eof_err = outputs["eof"]
        quit_responses, quit_err = outputs["quit"]

        def stable(response):
            return {k: v for k, v in response.items() if k != "elapsed_ms"}

        assert [stable(r) for r in quit_responses[:-1]] == [
            stable(r) for r in eof_responses
        ]
        assert quit_responses[-1] == {"ok": True, "op": "quit"}
        assert "served 1 requests" in eof_err
        assert "served 1 requests" in quit_err

    def test_serve_over_a_persistent_pool(self, tmp_path, capsys):
        edge_list = self._edge_list(tmp_path)
        snapshot = tmp_path / "g.tspgsnap"
        assert main(["warm", "--edge-list", str(edge_list),
                     "--output", str(snapshot)]) == 0
        capsys.readouterr()
        script = tmp_path / "requests.jsonl"
        script.write_text(
            '{"queries": [["s", "t", 2, 7], ["b", "t", 3, 7]]}\n'
            '{"queries": [["s", "t", 2, 7], ["b", "t", 3, 7]]}\n'
            '{"op": "stats"}\n',
            encoding="utf-8",
        )
        assert main([
            "serve", "--snapshot", str(snapshot), "--workers", "2",
            "--executor", "processes", "--cache-size", "0",
            "--input", str(script),
        ]) == 0
        out = capsys.readouterr().out
        responses = [json.loads(line) for line in out.splitlines() if line.strip()]
        first, second, stats = responses
        assert first["executor"] == "processes"
        assert second["executor"] == "processes"
        # One worker set served both batches: the pool never re-forked.
        assert stats["pool"]["batches_served"] == 2
        assert stats["pool"]["generation"] == 1


class TestExperimentExp10:
    def test_exp10_runs_on_a_small_dataset(self, capsys):
        assert main([
            "experiment", "exp10", "--dataset", "D1", "--queries", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Exp-10" in out
        assert "snapshot-boot" in out
        assert "cold-boot" in out
