"""Tests for per-shard snapshots, the process batch backend and the
exception-vs-timeout / empty-batch / describe() report fixes."""

from __future__ import annotations

import time

import pytest

from repro.algorithms import available_algorithms, get_algorithm
from repro.baselines.interface import AlgorithmResult, TspgAlgorithm
from repro.core.deadline import Deadline
from repro.core.result import PathGraph
from repro.graph.generators import uniform_random_temporal_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.queries.query import TspgQuery
from repro.queries.runner import QueryRunner
from repro.queries.workload import generate_workload
from repro.service import FALLBACK_SHARD, ShardedTspgService, TspgService
from repro.service.service import BatchItem, BatchReport
from repro.store import (
    SHARD_MANIFEST_NAME,
    ShardSnapshotSet,
    SnapshotError,
    save_snapshot,
)


def _random_case(seed: int, num_queries: int = 10, theta: int = 8):
    graph = uniform_random_temporal_graph(
        num_vertices=16, num_edges=100, num_timestamps=30, seed=seed
    )
    workload = generate_workload(
        graph, num_queries=num_queries, theta=theta, seed=seed, name=f"ps-{seed}"
    )
    return graph, list(workload)


class FailingAlgorithm(TspgAlgorithm):
    """Test double: always raises from compute()."""

    name = "Failing"

    def compute(self, graph, source, target, interval) -> AlgorithmResult:
        raise RuntimeError("worker blew up")


class SlowAlgorithm(TspgAlgorithm):
    """Test double: sleeps per query so budgets trigger deterministically."""

    name = "Slow"

    def __init__(self, delay: float = 0.05) -> None:
        self.delay = delay

    def compute(self, graph, source, target, interval) -> AlgorithmResult:
        time.sleep(self.delay)
        return AlgorithmResult(
            algorithm=self.name,
            result=PathGraph.empty(source, target, interval),
            elapsed_seconds=self.delay,
        )


def _star_graph(count: int) -> TemporalGraph:
    return TemporalGraph(edges=[("s", f"v{i}", 1) for i in range(count)])


def _star_queries(count: int):
    return [TspgQuery("s", f"v{i}", (1, 10)) for i in range(count)]


# ----------------------------------------------------------------------
# regression: worker exceptions must not masquerade as budget cut-offs
# ----------------------------------------------------------------------
class TestExceptionVsTimeout:
    def _run_direct(self, budget):
        """Drive _run_batch_parallel with a report we keep a handle on."""
        service = TspgService(_star_graph(4))
        report = BatchReport(
            algorithm="Failing",
            items=[BatchItem(query=query) for query in _star_queries(4)],
            num_workers=2,
        )
        deadline = None if budget is None else Deadline.after(budget)
        with pytest.raises(RuntimeError, match="worker blew up"):
            service._run_batch_parallel(
                report, FailingAlgorithm(), 2, False, deadline
            )
        return report

    def test_exception_without_budget_leaves_report_clean(self):
        # The regression: FIRST_EXCEPTION used to mark every not-yet-done
        # query skipped and stamp timed_out=True even with no budget at all.
        report = self._run_direct(budget=None)
        assert report.timed_out is False
        assert not any(item.skipped for item in report.items)

    def test_exception_with_unexpired_budget_leaves_report_clean(self):
        report = self._run_direct(budget=30.0)
        assert report.timed_out is False
        assert not any(item.skipped for item in report.items)

    def test_expired_budget_without_exception_still_flags_timeout(self):
        service = TspgService(_star_graph(6))
        report = service.run_batch(
            _star_queries(6), SlowAlgorithm(delay=0.05),
            max_workers=2, use_cache=False, time_budget_seconds=0.08,
        )
        assert report.timed_out is True
        assert any(item.skipped for item in report.items)

    def test_expired_budget_refuses_queries_before_they_run(self):
        # Admission control: a batch whose budget is already gone never
        # runs a query at all — the failing algorithm cannot raise because
        # it is never invoked, and every row reports the cut-off.
        service = TspgService(_star_graph(4))
        report = service.run_batch(
            _star_queries(4), FailingAlgorithm(),
            max_workers=2, use_cache=False, time_budget_seconds=0.0,
        )
        assert report.timed_out is True
        assert all(
            item.skipped or (item.outcome is not None and item.outcome.timed_out)
            for item in report.items
        )


# ----------------------------------------------------------------------
# regression: empty sharded batches must validate the algorithm name
# ----------------------------------------------------------------------
class TestShardedEmptyBatchValidation:
    def test_unknown_name_raises_like_the_flat_service(self):
        graph, _ = _random_case(seed=31)
        router = ShardedTspgService(graph, 2)
        flat = TspgService(graph)
        with pytest.raises(KeyError, match="unknown algorithm 'nope'"):
            flat.run_batch([], algorithm="nope")
        with pytest.raises(KeyError, match="unknown algorithm 'nope'"):
            router.run_batch([], algorithm="nope")

    def test_valid_name_and_instance_still_resolve(self):
        graph, _ = _random_case(seed=32)
        router = ShardedTspgService(graph, 2)
        assert router.run_batch([], "Naive").algorithm == "Naive"
        assert router.run_batch([]).algorithm == router.default_algorithm
        assert router.run_batch([], get_algorithm("VUG")).algorithm == "VUG"

    def test_empty_batch_does_not_build_the_fallback(self):
        graph, _ = _random_case(seed=33)
        router = ShardedTspgService(graph, 2)
        router.run_batch([], "VUG")
        assert router._fallback_service is None


# ----------------------------------------------------------------------
# regression: describe() must not advertise an unbuilt fallback as warmed
# ----------------------------------------------------------------------
class TestDescribeFallbackRow:
    def test_unbuilt_fallback_reports_zero_and_built_false(self):
        graph, _ = _random_case(seed=34)
        router = ShardedTspgService(graph, 3, overlap=4)
        row = router.describe()[-1]
        assert row["shard"] == FALLBACK_SHARD
        assert row["built"] is False
        assert row["vertices"] == 0
        assert row["edges"] == 0
        # index_stats aggregates only built services; the shard rows alone
        # must account for everything describe() claims is warmed.
        assert router.index_stats["sorted_edges"] == sum(
            r["edges"] for r in router.describe() if r["shard"] != FALLBACK_SHARD
        )

    def test_built_fallback_reports_full_graph_counts(self):
        graph, _ = _random_case(seed=35)
        router = ShardedTspgService(graph, 3)
        span = graph.time_interval()
        source, target = sorted(graph.vertices())[:2]
        # A span-wide interval no single shard covers forces the fallback.
        router.query(source, target, (span.begin, span.end))
        row = router.describe()[-1]
        assert row["built"] is True
        assert row["vertices"] == graph.num_vertices
        assert row["edges"] == graph.num_edges
        assert all(r["built"] is True for r in router.describe()[:-1])


# ----------------------------------------------------------------------
# the shard snapshot set: round trips and corruption
# ----------------------------------------------------------------------
class TestShardSnapshotSet:
    def test_save_shards_writes_manifest_and_per_shard_files(self, tmp_path):
        graph, _ = _random_case(seed=36)
        router = ShardedTspgService(graph, 3, overlap=5)
        manifest = router.save_shards(tmp_path / "shards")
        assert manifest.num_shards == 3
        assert manifest.overlap == 5
        assert manifest.epoch == graph.epoch
        assert manifest.span == graph.time_interval().as_tuple()
        shard_set = ShardSnapshotSet(tmp_path / "shards")
        assert shard_set.exists()
        names = sorted(p.name for p in (tmp_path / "shards").iterdir())
        assert names == sorted(
            [SHARD_MANIFEST_NAME] + [entry.filename for entry in manifest.shards]
        )
        for entry, shard_graph in shard_set.load_all():
            assert shard_graph.num_edges == entry.num_edges
            assert shard_graph.num_vertices == entry.num_vertices
            spec = router.shards[entry.index]
            assert entry.core == spec.core.as_tuple()
            assert entry.extent == spec.extent.as_tuple()

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot open shard manifest"):
            ShardSnapshotSet(tmp_path / "nowhere").manifest()

    def test_corrupt_shard_file_raises_checksum_mismatch(self, tmp_path):
        graph, _ = _random_case(seed=37)
        manifest = ShardedTspgService(graph, 2).save_shards(tmp_path / "shards")
        shard_set = ShardSnapshotSet(tmp_path / "shards")
        victim = tmp_path / "shards" / manifest.shards[1].filename
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            shard_set.load_all()

    def test_tampered_manifest_counts_raise(self, tmp_path):
        graph, _ = _random_case(seed=38)
        ShardedTspgService(graph, 2).save_shards(tmp_path / "shards")
        manifest_path = tmp_path / "shards" / SHARD_MANIFEST_NAME
        text = manifest_path.read_text(encoding="utf-8")
        import json

        raw = json.loads(text)
        # The file CRC covers the snapshot bytes, not the manifest, so a
        # count edit slips past the checksum and must be caught by the
        # decoded-count cross-check.
        raw["shards"][0]["num_edges"] += 1
        manifest_path.write_text(json.dumps(raw), encoding="utf-8")
        with pytest.raises(SnapshotError, match="does not match its manifest"):
            ShardSnapshotSet(tmp_path / "shards").load_all()

    def test_resave_commits_a_new_generation_and_prunes_the_old(self, tmp_path):
        # Re-warming over a live set must never touch the files the current
        # manifest references: each save writes a fresh generation, commits
        # via the manifest swap, then prunes what is no longer referenced.
        graph, queries = _random_case(seed=56)
        router = ShardedTspgService(graph, 4, overlap=3)
        first = router.save_shards(tmp_path / "shards")
        second = ShardedTspgService(graph, 2, overlap=5).save_shards(
            tmp_path / "shards"
        )
        first_names = {entry.filename for entry in first.shards}
        second_names = {entry.filename for entry in second.shards}
        assert first_names.isdisjoint(second_names)
        remaining = {p.name for p in (tmp_path / "shards").iterdir()}
        assert remaining == second_names | {SHARD_MANIFEST_NAME}
        booted = ShardedTspgService.from_shard_snapshots(tmp_path / "shards")
        assert booted.num_shards == 2
        assert booted.overlap == 5
        flat = TspgService(graph)
        for query in queries[:3]:
            mine = booted.submit(query, use_cache=False)
            reference = flat.submit(query, use_cache=False)
            assert mine.result.edges == reference.result.edges

    def test_manifest_shard_count_mismatch_raises(self, tmp_path):
        graph, _ = _random_case(seed=39)
        ShardedTspgService(graph, 2).save_shards(tmp_path / "shards")
        manifest_path = tmp_path / "shards" / SHARD_MANIFEST_NAME
        import json

        raw = json.loads(manifest_path.read_text(encoding="utf-8"))
        raw["num_shards"] = 5
        manifest_path.write_text(json.dumps(raw), encoding="utf-8")
        with pytest.raises(SnapshotError, match="claims 5 shards"):
            ShardSnapshotSet(tmp_path / "shards").manifest()


# ----------------------------------------------------------------------
# booting a router from shard snapshots alone
# ----------------------------------------------------------------------
class TestFromShardSnapshots:
    def test_boot_is_full_graph_free_until_fallback_needed(self, tmp_path):
        graph, queries = _random_case(seed=40)
        ShardedTspgService(graph, 3, overlap=8).save_shards(tmp_path / "shards")
        booted = ShardedTspgService.from_shard_snapshots(tmp_path / "shards")
        assert booted._graph is None  # nothing has forced the union yet
        assert booted.num_shards == 3
        assert booted.overlap == 8
        # Shard-coverable queries never materialise the full graph.
        flat = TspgService(graph)
        for query in queries:
            if booted.route(query.interval) == FALLBACK_SHARD:
                continue
            mine = booted.submit(query, use_cache=False)
            reference = flat.submit(query, use_cache=False)
            assert mine.result.vertices == reference.result.vertices
            assert mine.result.edges == reference.result.edges
        assert booted._graph is None

    def test_lazy_union_equals_source_graph(self, tmp_path):
        graph, _ = _random_case(seed=41)
        ShardedTspgService(graph, 4, overlap=3).save_shards(tmp_path / "shards")
        booted = ShardedTspgService.from_shard_snapshots(tmp_path / "shards")
        assert booted.graph == graph  # union of shard extents covers the span
        # Materialising the union is a reconstruction, not a mutation: the
        # topology must survive it without a repartition.
        assert booted.graph.epoch == booted._topology.epoch

    def test_isolated_vertices_survive_the_round_trip(self, tmp_path):
        # Shard projections only keep edge-incident vertices; the shard set
        # persists edge-less ones separately so the union loses nothing
        # (parity with the flat snapshot path, which keeps them).
        graph, _ = _random_case(seed=53)
        graph.add_vertex("isolated-stop")
        graph.add_vertex(("compound", 7))
        router = ShardedTspgService(graph, 3, overlap=4)
        manifest = router.save_shards(tmp_path / "shards")
        assert manifest.isolated is not None
        assert manifest.isolated[2] == 2
        booted = ShardedTspgService.from_shard_snapshots(tmp_path / "shards")
        assert booted.graph == graph
        assert booted.graph.has_vertex("isolated-stop")
        assert booted.graph.has_vertex(("compound", 7))

    def test_corrupt_isolated_file_raises(self, tmp_path):
        graph, _ = _random_case(seed=54)
        graph.add_vertex("lonely")
        manifest = ShardedTspgService(graph, 2).save_shards(tmp_path / "shards")
        victim = tmp_path / "shards" / manifest.isolated[0]
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            ShardedTspgService.from_shard_snapshots(tmp_path / "shards")

    def test_fallback_query_on_booted_router_matches_flat(self, tmp_path):
        graph, _ = _random_case(seed=42)
        ShardedTspgService(graph, 3).save_shards(tmp_path / "shards")
        booted = ShardedTspgService.from_shard_snapshots(tmp_path / "shards")
        span = graph.time_interval()
        source, target = sorted(graph.vertices())[:2]
        wide = TspgQuery(source, target, (span.begin, span.end))
        assert booted.route(wide.interval) == FALLBACK_SHARD
        mine = booted.submit(wide, use_cache=False)
        reference = TspgService(graph).submit(wide, use_cache=False)
        assert mine.result.vertices == reference.result.vertices
        assert mine.result.edges == reference.result.edges


# ----------------------------------------------------------------------
# the process execution backend
# ----------------------------------------------------------------------
class TestProcessBackend:
    def test_oracle_serial_threads_processes_every_algorithm(self, tmp_path):
        """Randomized oracle: all three regimes bit-identical, registry-wide."""
        graph, queries = _random_case(seed=43, num_queries=8)
        flat = TspgService(graph)
        router = ShardedTspgService(graph, 3, overlap=8)
        router.save_shards(tmp_path / "shards")
        for name in available_algorithms():
            serial = flat.run_batch(queries, name, use_cache=False)
            threaded = router.run_batch(
                queries, name, max_workers=3, use_cache=False, executor="threads"
            )
            processed = router.run_batch(
                queries, name, max_workers=3, use_cache=False, executor="processes"
            )
            assert processed.executor == "processes", name
            assert threaded.algorithm == processed.algorithm == serial.algorithm
            for base, thread_item, process_item in zip(
                serial.items, threaded.items, processed.items
            ):
                for item in (thread_item, process_item):
                    assert item.outcome.result.vertices == base.outcome.result.vertices, name
                    assert item.outcome.result.edges == base.outcome.result.edges, name

    def test_flat_service_process_backend_matches_serial(self, tmp_path):
        graph, queries = _random_case(seed=44, num_queries=8)
        path = tmp_path / "flat.tspgsnap"
        save_snapshot(graph, path)
        service = TspgService.from_snapshot(path)
        serial = service.run_batch(queries, use_cache=False)
        processed = service.run_batch(
            queries, max_workers=2, use_cache=False, executor="processes"
        )
        assert processed.executor == "processes"
        for base, item in zip(serial.items, processed.items):
            assert item.outcome.result.vertices == base.outcome.result.vertices
            assert item.outcome.result.edges == base.outcome.result.edges

    def test_processes_fall_back_to_threads_without_snapshots(self):
        graph, queries = _random_case(seed=45, num_queries=6)
        service = TspgService(graph)  # no snapshot attached
        report = service.run_batch(
            queries, max_workers=2, use_cache=False, executor="processes"
        )
        assert report.executor == "threads"
        assert report.num_completed == len(queries)
        router = ShardedTspgService(graph, 2)  # no save_shards call
        sharded = router.run_batch(
            queries, max_workers=2, use_cache=False, executor="processes"
        )
        assert sharded.executor == "threads"
        assert sharded.num_completed == len(queries)

    def test_processes_fall_back_for_algorithm_instances(self, tmp_path):
        graph, queries = _random_case(seed=46, num_queries=4)
        router = ShardedTspgService(graph, 2, overlap=8)
        router.save_shards(tmp_path / "shards")
        report = router.run_batch(
            queries, get_algorithm("VUG"), max_workers=2, use_cache=False,
            executor="processes",
        )
        assert report.executor == "threads"  # instances stay in-process
        assert report.num_completed == len(queries)

    def test_mutation_invalidates_shard_snapshots(self, tmp_path):
        graph, queries = _random_case(seed=47, num_queries=4)
        router = ShardedTspgService(graph, 2, overlap=8)
        router.save_shards(tmp_path / "shards")
        graph.add_edge("fresh-u", "fresh-v", 999)
        report = router.run_batch(
            queries, max_workers=2, use_cache=False, executor="processes"
        )
        # Stale shard files must not serve the mutated graph.
        assert report.executor == "threads"
        assert report.num_completed == len(queries)

    def test_workers_one_stays_serial_even_with_snapshots(self, tmp_path):
        # --workers 1 means serial on both services; forking a pool for a
        # serial request would only add boot cost.
        graph, queries = _random_case(seed=57, num_queries=4)
        router = ShardedTspgService(graph, 2, overlap=8)
        router.save_shards(tmp_path / "shards")
        report = router.run_batch(
            queries, max_workers=1, use_cache=False, executor="processes"
        )
        assert report.executor == "threads"
        assert report.num_completed == len(queries)

    def test_pre_v3_snapshots_do_not_leak_stale_tie_order(self, tmp_path):
        # A snapshot written by an older build may carry hash-seed-dependent
        # equal-timestamp tie order; loading one must not adopt that order
        # (the backing and view rebuild lazily under the deterministic key).
        from repro.store import load_snapshot, write_legacy_snapshot
        from repro.store.snapshot import _HEADER_STRUCT

        graph, _ = _random_case(seed=58)
        path = tmp_path / "old.tspgsnap"
        write_legacy_snapshot(graph, path, version=3)
        blob = bytearray(path.read_bytes())
        fields = list(_HEADER_STRUCT.unpack(blob[: _HEADER_STRUCT.size]))
        assert fields[1] == 3
        fields[1] = 2  # masquerade as a v2 file (header is not CRC-covered)
        blob[: _HEADER_STRUCT.size] = _HEADER_STRUCT.pack(*fields)
        path.write_bytes(bytes(blob))
        loaded = load_snapshot(path)
        assert loaded == graph
        assert loaded._sorted_tuples_cache is None  # not adopted
        assert loaded._view_cache is None  # rebuilt lazily, not adopted
        assert tuple(loaded.edge_tuples()) == tuple(graph.edge_tuples())

    def test_invalid_executor_rejected(self):
        graph, queries = _random_case(seed=48, num_queries=2)
        with pytest.raises(ValueError, match="unknown executor"):
            TspgService(graph).run_batch(queries, executor="widgets")
        with pytest.raises(ValueError, match="unknown executor"):
            ShardedTspgService(graph, 2).run_batch(queries, executor="widgets")
        with pytest.raises(ValueError, match="unknown executor"):
            TspgService(graph, executor="widgets")
        with pytest.raises(ValueError, match="unknown executor"):
            ShardedTspgService(graph, 2, executor="widgets")

    def test_worker_exception_propagates_from_processes(self, tmp_path):
        # An unknown option set makes the worker's registry lookup blow up
        # inside the pool; the error must re-raise in the parent.
        graph, queries = _random_case(seed=49, num_queries=4)
        router = ShardedTspgService(
            graph, 2, overlap=8,
            algorithm_options={"VUG": {"no_such_option": True}},
        )
        router.save_shards(tmp_path / "shards")
        with pytest.raises(TypeError):
            router.run_batch(
                queries, "VUG", max_workers=2, use_cache=False,
                executor="processes",
            )

    def test_process_backend_serves_repeats_from_the_parent_cache(self, tmp_path):
        # Worker processes die with their pool, so memoization only helps if
        # the parent's LRU stays authoritative: hits answered before the
        # fan-out, worker outcomes stored back on merge.
        graph, queries = _random_case(seed=55, num_queries=8)
        router = ShardedTspgService(graph, 3, overlap=8)
        router.save_shards(tmp_path / "shards")
        cold = router.run_batch(
            queries, max_workers=3, use_cache=True, executor="processes"
        )
        warm = router.run_batch(
            queries, max_workers=3, use_cache=True, executor="processes"
        )
        assert cold.num_cache_hits == 0
        assert warm.num_cache_hits == len(queries)
        assert warm.algorithm == cold.algorithm
        assert cold.executor == "processes"
        # Fully cache-served: no worker ran, so the report must not claim
        # the process backend executed anything.
        assert warm.executor == "threads"
        for cold_item, warm_item in zip(cold.items, warm.items):
            assert warm_item.outcome.result.vertices == cold_item.outcome.result.vertices
            assert warm_item.outcome.result.edges == cold_item.outcome.result.edges

        path = tmp_path / "flat.tspgsnap"
        save_snapshot(graph, path)
        flat = TspgService.from_snapshot(path)
        flat_cold = flat.run_batch(
            queries, max_workers=2, use_cache=True, executor="processes"
        )
        flat_warm = flat.run_batch(
            queries, max_workers=2, use_cache=True, executor="processes"
        )
        assert flat_cold.num_cache_hits == 0
        assert flat_warm.num_cache_hits == len(queries)

    def test_skewed_groups_are_subchunked_across_workers(self, tmp_path):
        # One shard receiving nearly the whole batch must still spread over
        # the worker budget (multiple pool tasks per group), not serialise
        # inside a single worker — and stay bit-identical doing so.
        graph = TemporalGraph(
            edges=[("s", f"v{i}", 1 + (i % 3)) for i in range(12)]
            + [("s", "far", 28), ("far", "wide", 29)]
        )
        queries = [TspgQuery("s", f"v{i}", (1, 4)) for i in range(12)]
        queries.append(TspgQuery("s", "wide", (27, 30)))
        router = ShardedTspgService(graph, 2, overlap=2)
        router.save_shards(tmp_path / "shards")
        serial = TspgService(graph).run_batch(queries, use_cache=False)
        report = router.run_batch(
            queries, max_workers=4, use_cache=False, executor="processes"
        )
        assert report.executor == "processes"
        assert report.num_completed == len(queries)
        for base, item in zip(serial.items, report.items):
            assert item.outcome.result.vertices == base.outcome.result.vertices
            assert item.outcome.result.edges == base.outcome.result.edges

    def test_process_backend_honours_time_budget(self, tmp_path):
        graph, queries = _random_case(seed=50, num_queries=6)
        router = ShardedTspgService(graph, 2, overlap=8)
        router.save_shards(tmp_path / "shards")
        report = router.run_batch(
            queries, max_workers=2, use_cache=False, executor="processes",
            time_budget_seconds=0.0,
        )
        assert report.timed_out is True
        assert all(item.skipped for item in report.items if item.outcome is None)


# ----------------------------------------------------------------------
# QueryRunner wiring
# ----------------------------------------------------------------------
class TestRunnerWiring:
    def test_runner_snapshot_boot_attaches_process_backend(self, tmp_path):
        graph, queries = _random_case(seed=51, num_queries=4)
        path = tmp_path / "runner.tspgsnap"
        save_snapshot(graph, path)
        runner = QueryRunner(executor="processes")
        loaded = runner.graph_from_snapshot(path)
        service = runner._service_for(loaded)
        report = service.run_batch(queries, max_workers=2, use_cache=False)
        assert report.executor == "processes"

    def test_runner_boots_router_from_shard_snapshots(self, tmp_path):
        graph, queries = _random_case(seed=52, num_queries=6)
        ShardedTspgService(graph, 2, overlap=8).save_shards(tmp_path / "shards")
        runner = QueryRunner(keep_results=True, executor="processes")
        loaded = runner.graph_from_shard_snapshots(tmp_path / "shards")
        assert loaded == graph
        service = runner._service_for(loaded)
        assert isinstance(service, ShardedTspgService)
        from repro.queries.query import QueryWorkload

        outcome = runner.run_workload(
            get_algorithm("VUG"), loaded, QueryWorkload("wl", queries)
        )
        reference = QueryRunner(keep_results=True).run_workload(
            get_algorithm("VUG"), graph, QueryWorkload("wl", queries)
        )
        assert outcome.num_completed == reference.num_completed
        for mine, theirs in zip(outcome.results, reference.results):
            assert mine.vertices == theirs.vertices
            assert mine.edges == theirs.edges
