"""Documentation suite checks: required files exist, relative links resolve.

The acceptance criterion of the docs satellite: ``README.md`` and the
``docs/`` deep dives must exist and stay link-check clean.  The check runs
in tier-1 (and as the CI ``docs`` job) so a renamed file or a moved anchor
target breaks the build instead of silently 404ing for readers.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every markdown file the suite must contain and keep link-clean.
REQUIRED_DOCS = (
    "README.md",
    "docs/architecture.md",
    "docs/serving.md",
    "docs/snapshot-format.md",
    "ROADMAP.md",
    "CHANGES.md",
)

#: ``[text](target)`` — good enough for the plain links these docs use.
_LINK_PATTERN = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: Link schemes that are not local files and are not checked here.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _markdown_files():
    return [REPO_ROOT / name for name in REQUIRED_DOCS]


def test_required_documentation_exists():
    missing = [str(path) for path in _markdown_files() if not path.is_file()]
    assert not missing, f"documentation files missing: {missing}"


@pytest.mark.parametrize("name", REQUIRED_DOCS)
def test_relative_links_resolve(name):
    """Every relative link in ``name`` points at an existing file/directory."""
    path = REPO_ROOT / name
    text = path.read_text(encoding="utf-8")
    broken = []
    for match in _LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        # Drop an in-page fragment; the file part is what must exist.
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{name}: broken relative links: {broken}"


def test_readme_documents_the_layers_and_cli():
    """The README keeps its promised sections: install, quickstart, layers."""
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for needle in (
        "## Install",
        "## Quickstart",
        "graph (repro.graph)",
        "tspg serve",
        "docs/architecture.md",
        "docs/serving.md",
        "docs/snapshot-format.md",
    ):
        assert needle in text, f"README.md lost its {needle!r} section/link"


def test_roadmap_stays_a_planning_doc():
    """ROADMAP's architecture prose lives in docs/ now — only pointers remain."""
    text = (REPO_ROOT / "ROADMAP.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in text
    assert "docs/serving.md" in text
    assert "docs/snapshot-format.md" in text
    # The slimmed section should stay an order of magnitude smaller than
    # the documentation it points to.
    architecture = text.split("## Architecture", 1)[1].split("## Open items", 1)[0]
    assert len(architecture) < 3500, (
        "ROADMAP's Architecture section is growing back into a reference "
        "document; move the prose into docs/ and keep pointers here"
    )
