"""Randomized oracle: the zero-materialization pipeline is bit-identical.

The property under test is the acceptance criterion of the view refactor:
for every query, every algorithm in the registry — and in particular the
default view-based ``VUG`` against the retained pre-refactor
``VUG-materializing`` pipeline — returns the *same* ``tspG`` (vertex and
edge sets), and the VUG variants also report the same per-phase edge counts
in their ``extras`` (``Gq``/``Gt`` sizes), because the masks must select
exactly the edges the materializing phases used to insert.

The oracle draws ≥200 random queries over a family of D1-style generated
graphs (bursty email-like traffic, the profile of the paper's smallest
dataset) plus uniform-random multigraphs, and additionally routes a sample
through the serial, parallel and sharded service paths.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms import available_algorithms, get_algorithm
from repro.graph.generators import bursty_email_graph, uniform_random_temporal_graph
from repro.queries.query import TspgQuery
from repro.service import ShardedTspgService, TspgService

#: Total number of random queries the VUG-vs-materializing oracle draws.
NUM_ORACLE_QUERIES = 210

#: Queries per graph for the all-algorithms cross-check (slow baselines).
NUM_CROSS_ALGORITHM_QUERIES = 6


def _d1_style_graphs():
    """Small D1-style analogues (bursty email traffic) plus random noise."""
    graphs = [
        bursty_email_graph(
            num_vertices=24, num_bursts=6, edges_per_burst=45, burst_width=5,
            gap_between_bursts=3, seed=seed,
        )
        for seed in (11, 22, 33)
    ]
    graphs.append(
        uniform_random_temporal_graph(
            num_vertices=18, num_edges=140, num_timestamps=24, seed=44
        )
    )
    return graphs


def _random_queries(graph, rng, count):
    vertices = sorted(graph.vertices())
    span = graph.time_interval()
    queries = []
    for _ in range(count):
        source, target = rng.sample(vertices, 2)
        begin = rng.randint(span.begin, span.end)
        end = rng.randint(begin, span.end)
        queries.append(TspgQuery(source=source, target=target, interval=(begin, end)))
    return queries


def test_view_pipeline_matches_materializing_pipeline_on_200_queries():
    """≥200 random queries: identical tspG *and* identical phase edge counts."""
    rng = random.Random(2025)
    graphs = _d1_style_graphs()
    per_graph = -(-NUM_ORACLE_QUERIES // len(graphs))  # ceil division
    view_vug = get_algorithm("VUG")
    materializing_vug = get_algorithm("VUG-materializing")
    checked = 0
    for graph in graphs:
        graph.warm_indices()
        for query in _random_queries(graph, rng, per_graph):
            viewed = view_vug.run(graph, query.source, query.target, query.interval)
            reference = materializing_vug.run(
                graph, query.source, query.target, query.interval
            )
            assert viewed.result.vertices == reference.result.vertices, query
            assert viewed.result.edges == reference.result.edges, query
            assert (
                viewed.extras["quick_ubg_edges"] == reference.extras["quick_ubg_edges"]
            ), query
            assert (
                viewed.extras["tight_ubg_edges"] == reference.extras["tight_ubg_edges"]
            ), query
            checked += 1
    assert checked >= 200


def test_every_registry_algorithm_agrees_with_the_materializing_reference():
    """All registry algorithms produce the reference tspG on random queries."""
    rng = random.Random(77)
    graph = _d1_style_graphs()[0]
    graph.warm_indices()
    queries = _random_queries(graph, rng, NUM_CROSS_ALGORITHM_QUERIES)
    reference_algorithm = get_algorithm("VUG-materializing")
    algorithms = [get_algorithm(name) for name in available_algorithms()]
    for query in queries:
        reference = reference_algorithm.run(
            graph, query.source, query.target, query.interval
        )
        for algorithm in algorithms:
            outcome = algorithm.run(graph, query.source, query.target, query.interval)
            assert outcome.result.vertices == reference.result.vertices, (
                algorithm.name,
                query,
            )
            assert outcome.result.edges == reference.result.edges, (
                algorithm.name,
                query,
            )


def test_vectorized_backend_is_identical_under_active_deadlines():
    """The numpy-kernel engine under a live deadline stays bit-identical.

    Deadline polls must be read-only for the vectorized path exactly as for
    the Python one: a generous in-flight budget changes nothing, and an
    already-expired one cuts both engines to the same empty timed-out
    answer.
    """
    from repro.core import Deadline

    rng = random.Random(404)
    vectorized = get_algorithm("VUG-vectorized")
    reference_algorithm = get_algorithm("VUG-materializing")
    for graph in _d1_style_graphs():
        graph.warm_indices()
        for query in _random_queries(graph, rng, 15):
            bounded = vectorized.run(
                graph, query.source, query.target, query.interval,
                deadline=Deadline.after(3600.0),
            )
            reference = reference_algorithm.run(
                graph, query.source, query.target, query.interval
            )
            assert bounded.timed_out is False, query
            assert bounded.result.vertices == reference.result.vertices, query
            assert bounded.result.edges == reference.result.edges, query
            expired = vectorized.run(
                graph, query.source, query.target, query.interval,
                deadline=Deadline.after(-1.0),
            )
            assert expired.timed_out is True, query
            assert expired.result.edges == set(), query


@pytest.mark.parametrize("mode", ["serial", "parallel", "sharded"])
def test_service_paths_serve_view_results_identical_to_reference(mode):
    """The serving layer (serial / parallel / sharded) stays bit-identical."""
    rng = random.Random(99)
    graph = _d1_style_graphs()[1]
    queries = _random_queries(graph, rng, 12)
    reference = TspgService(graph, default_algorithm="VUG-materializing").run_batch(
        queries, use_cache=False
    )
    if mode == "serial":
        report = TspgService(graph).run_batch(queries, use_cache=False)
    elif mode == "parallel":
        report = TspgService(graph).run_batch(
            queries, max_workers=4, use_cache=False
        )
    else:
        router = ShardedTspgService(graph, num_shards=3, overlap=8)
        report = router.run_batch(queries, max_workers=3, use_cache=False)
    assert report.num_completed == len(queries)
    for item, expected in zip(report.items, reference.items):
        assert item.outcome.result.vertices == expected.outcome.result.vertices
        assert item.outcome.result.edges == expected.outcome.result.edges
