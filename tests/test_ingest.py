"""Live ingest across the stack: EdgeDelta, journal, view extension, serving.

Covers the epoch-delta append path end to end — the structured
:class:`~repro.graph.temporal_graph.EdgeDelta` mutation record, the
incremental :meth:`GraphView.extended_with` extension (append-only
zero-copy fast path and out-of-order fallback), the CRC-checked epoch
journal sidecar (:mod:`repro.store.journal`) with its replay/stale/ahead
boot rules, copy-on-write of mmap boots under both mutator families, the
service's delta-aware cache invalidation, and the sharded router's
ingest → journal → generation-swap re-warm lifecycle.
"""

from __future__ import annotations

import os
import random
import threading

import pytest

from repro.algorithms import get_algorithm
from repro.graph.columns import ChainedColumn
from repro.graph.generators import uniform_random_temporal_graph
from repro.graph.temporal_graph import TemporalGraph
from repro.queries.query import TspgQuery
from repro.service import ShardedTspgService, TspgService
from repro.store import (
    ResidencyPolicy,
    SnapshotError,
    SnapshotGraphStore,
    append_journal_delta,
    boot_snapshot,
    clear_journal,
    inspect_journal,
    journal_path,
    read_journal,
    replay_journal,
    save_snapshot,
)


def sample_graph():
    return TemporalGraph(edges=[
        ("s", "b", 2), ("s", "a", 3), ("b", "c", 3), ("b", "d", 3),
        ("a", "d", 5), ("c", "t", 7), ("d", "t", 2), ("b", "t", 6),
    ])


def answers(graph, source="s", target="t", interval=(1, 9)):
    outcome = get_algorithm("VUG").run(graph, source, target, interval)
    return (
        frozenset(outcome.result.vertices),
        frozenset(outcome.result.edges),
    )


# ----------------------------------------------------------------------
# EdgeDelta and the append log
# ----------------------------------------------------------------------
class TestEdgeDelta:
    def test_append_returns_ordered_delta(self):
        graph = sample_graph()
        epoch = graph.epoch
        delta = graph.append_edges([("t", "z", 9), ("c", "z", 8)])
        assert delta.rows == (("c", "z", 8), ("t", "z", 9))
        assert delta.old_epoch == epoch and delta.new_epoch == epoch + 1
        assert delta.append_only
        assert delta.min_timestamp == 8 and delta.max_timestamp == 9
        assert delta.new_vertices == ("z",)
        assert graph.epoch == epoch + 1

    def test_empty_delta_does_not_advance_the_epoch(self):
        graph = sample_graph()
        epoch = graph.epoch
        delta = graph.append_edges([("s", "b", 2)])  # exact duplicate
        assert not delta
        assert delta.num_rows == 0
        assert graph.epoch == epoch

    def test_self_loop_rejected_before_any_row_applies(self):
        graph = sample_graph()
        before = graph.num_edges
        with pytest.raises(ValueError):
            graph.append_edges([("a", "z", 9), ("z", "z", 10)])
        assert graph.num_edges == before

    def test_out_of_order_rows_are_not_append_only(self):
        graph = sample_graph()
        delta = graph.append_edges([("a", "c", 2)])
        assert not delta.append_only
        assert graph.sorted_edges()[0].timestamp == 2

    def test_deltas_since_returns_the_contiguous_chain(self):
        graph = sample_graph()
        epoch = graph.epoch
        first = graph.append_edges([("t", "x", 9)])
        second = graph.append_edges([("x", "y", 10)])
        assert graph.deltas_since(graph.epoch) == []
        assert graph.deltas_since(epoch) == [first, second]
        assert graph.deltas_since(first.new_epoch) == [second]

    def test_legacy_mutation_breaks_the_chain(self):
        graph = sample_graph()
        epoch = graph.epoch
        graph.append_edges([("t", "x", 9)])
        graph.add_edge("x", "y", 10)  # invalidate-everything contract
        assert graph.deltas_since(epoch) is None

    def test_append_matches_legacy_add_edges_end_state(self):
        base = uniform_random_temporal_graph(
            num_vertices=14, num_edges=90, num_timestamps=25, seed=3
        )
        rng = random.Random(4)
        rows = [
            (rng.randrange(14), rng.randrange(14), rng.randint(1, 40))
            for _ in range(60)
        ]
        rows = [(u, v, t) for (u, v, t) in rows if u != v]
        appended, legacy = base.copy(), base.copy()
        appended.append_edges(rows)
        legacy.add_edges(rows)
        assert list(appended.edge_tuples()) == list(legacy.edge_tuples())
        assert appended.timestamps() == legacy.timestamps()


# ----------------------------------------------------------------------
# Incremental view extension
# ----------------------------------------------------------------------
class TestViewExtension:
    def test_append_only_extension_replaces_the_cached_view(self):
        graph = sample_graph()
        old_view = graph.view()
        graph.append_edges([("t", "z", 9)])
        view = graph.view()
        assert view is not old_view
        assert view.epoch == graph.epoch
        assert old_view.num_edges + 1 == view.num_edges

    def test_mmap_extension_chains_the_mapped_columns(self, tmp_path):
        path = str(tmp_path / "chain.tspgsnap")
        save_snapshot(sample_graph(), path)
        boot = boot_snapshot(path, mmap=True)
        if not boot.graph.is_lazily_booted:
            pytest.skip("zero-copy boot unavailable on this platform")
        boot.graph.append_edges([("t", "z", 9)])
        view = boot.graph.view()
        assert isinstance(view.ts, ChainedColumn)
        assert list(view.ts)[-1] == 9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_extension_equals_full_rebuild(self, seed):
        graph = uniform_random_temporal_graph(
            num_vertices=12, num_edges=70, num_timestamps=20, seed=seed
        )
        rng = random.Random(seed + 10)
        rows = []
        while len(rows) < 25:
            u, v = rng.randrange(12), rng.randrange(12)
            if u != v:
                rows.append((u, v, rng.randint(1, 60)))  # mixed: some out-of-order
        graph.view()
        graph.append_edges(rows)
        extended = graph.view()
        rebuilt = graph.copy()
        rebuilt._view_cache = None
        fresh = rebuilt.view()
        assert extended.num_edges == fresh.num_edges
        assert list(extended.ts) == list(fresh.ts)
        assert [extended.labels[i] for i in extended.src] == [
            fresh.labels[i] for i in fresh.src
        ]
        assert [extended.labels[i] for i in extended.dst] == [
            fresh.labels[i] for i in fresh.dst
        ]


# ----------------------------------------------------------------------
# The epoch-delta journal sidecar
# ----------------------------------------------------------------------
class TestJournal:
    def _snapshot(self, tmp_path, graph=None):
        path = str(tmp_path / "live.tspgsnap")
        save_snapshot(graph or sample_graph(), path)
        return path

    def test_store_append_journals_and_boot_replays(self, tmp_path):
        path = self._snapshot(tmp_path)
        store = SnapshotGraphStore(path)
        graph = store.load()
        store.append([("t", "z", 9)])
        store.append([("z", "q", 11)])
        sidecar = journal_path(path)
        assert os.path.exists(sidecar)
        info, records = read_journal(sidecar)
        assert len(records) == 2
        assert info.base_epoch + 2 == graph.epoch
        boot = boot_snapshot(path)
        assert boot.journal_records == 2
        assert boot.graph.epoch == graph.epoch
        assert list(boot.graph.edge_tuples()) == list(graph.edge_tuples())

    def test_compact_save_folds_the_journal(self, tmp_path):
        path = self._snapshot(tmp_path)
        store = SnapshotGraphStore(path)
        graph = store.load()
        store.append([("t", "z", 9)])
        save_snapshot(graph, path, compact=True)
        assert not os.path.exists(journal_path(path))
        boot = boot_snapshot(path)
        assert boot.journal_records == 0
        assert boot.graph.epoch == graph.epoch
        assert ("t", "z", 9) in set(boot.graph.edge_tuples())

    def test_stale_journal_from_a_compaction_crash_is_skipped(self, tmp_path):
        path = self._snapshot(tmp_path)
        store = SnapshotGraphStore(path)
        graph = store.load()
        store.append([("t", "z", 9)])
        # A crash between the snapshot rewrite and the journal unlink
        # leaves a sidecar whose base epoch predates the snapshot.
        save_snapshot(graph, path)
        boot = boot_snapshot(path)
        assert boot.journal_records == 0
        assert boot.graph.epoch == graph.epoch

    def test_journal_ahead_of_the_snapshot_raises(self, tmp_path):
        path = self._snapshot(tmp_path)
        graph = boot_snapshot(path).graph
        graph.append_edges([("t", "z", 9)])  # not journaled
        delta = graph.append_edges([("z", "q", 11)])
        # The journal starts one epoch past the snapshot on disk — the
        # file regressed underneath its sidecar.
        append_journal_delta(path, delta)
        with pytest.raises(SnapshotError, match="regressed"):
            boot_snapshot(path)

    def test_corrupt_record_flagged_by_inspect_and_rejected_by_replay(
        self, tmp_path
    ):
        path = self._snapshot(tmp_path)
        store = SnapshotGraphStore(path)
        store.load()
        store.append([("t", "z", 9)])
        sidecar = journal_path(path)
        blob = bytearray(open(sidecar, "rb").read())
        blob[-1] ^= 0xFF
        with open(sidecar, "wb") as handle:
            handle.write(blob)
        _info, records = inspect_journal(sidecar)
        assert not records[-1].crc_ok
        with pytest.raises(SnapshotError):
            read_journal(sidecar)
        with pytest.raises(SnapshotError):
            boot_snapshot(path)

    def test_gap_in_the_delta_chain_is_rejected(self, tmp_path):
        path = self._snapshot(tmp_path)
        graph = boot_snapshot(path).graph
        append_journal_delta(path, graph.append_edges([("t", "z", 9)]))
        graph.add_edge("z", "q", 11)  # legacy mutation outside the journal
        delta = graph.append_edges([("q", "r", 12)])
        with pytest.raises(SnapshotError, match="journaled append path"):
            append_journal_delta(path, delta)

    def test_replay_with_interval_clips_rows_and_pins_the_epoch(
        self, tmp_path
    ):
        path = self._snapshot(tmp_path)
        store = SnapshotGraphStore(path)
        graph = store.load()
        store.append([("t", "z", 9), ("z", "q", 30)])
        clipped = boot_snapshot(path, interval=(1, 9)).graph
        assert ("t", "z", 9) in set(clipped.edge_tuples())
        assert ("z", "q", 30) not in set(clipped.edge_tuples())
        assert clipped.epoch == graph.epoch

    def test_clear_journal_reports_whether_anything_was_removed(
        self, tmp_path
    ):
        path = self._snapshot(tmp_path)
        assert not clear_journal(path)
        store = SnapshotGraphStore(path)
        store.load()
        store.append([("t", "z", 9)])
        assert clear_journal(path)
        assert not os.path.exists(journal_path(path))

    def test_replay_journal_is_idempotent_per_boot(self, tmp_path):
        path = self._snapshot(tmp_path)
        store = SnapshotGraphStore(path)
        store.load()
        store.append([("t", "z", 9)])
        graph = boot_snapshot(path).graph
        # A second replay of the same sidecar starts from the already
        # advanced epoch — the chain no longer lines up.
        with pytest.raises(SnapshotError):
            replay_journal(graph, journal_path(path))


# ----------------------------------------------------------------------
# Copy-on-write of mmap boots, both mutator families
# ----------------------------------------------------------------------
class TestMmapCopyOnWrite:
    def _mmap_boot(self, tmp_path, name):
        path = str(tmp_path / f"{name}.tspgsnap")
        graph = sample_graph()
        graph.warm_indices()
        save_snapshot(graph, path)
        boot = boot_snapshot(path, mmap=True)
        if not boot.graph.is_lazily_booted:
            pytest.skip("zero-copy boot unavailable on this platform")
        return path, boot.graph, open(path, "rb").read()

    def test_legacy_mutator_hydrates_and_leaves_the_file_alone(
        self, tmp_path
    ):
        path, graph, before = self._mmap_boot(tmp_path, "legacy")
        graph.add_edge("t", "z", 9)
        assert not graph.is_lazily_booted
        assert graph._out_data is not None
        assert ("z", 9) in graph._out_data["t"]
        assert open(path, "rb").read() == before

    def test_journaled_append_only_ingest_does_not_hydrate(self, tmp_path):
        path, graph, before = self._mmap_boot(tmp_path, "delta")
        delta = graph.append_edges([("t", "z", 9)])
        assert delta.append_only
        assert graph.is_lazily_booted
        assert graph._out_data is None  # adjacency still unpickled
        assert graph.num_edges == 9
        # The eventual first adjacency touch replays the delta.
        assert ("z", 9) in graph.out_neighbors_after("t", 0)
        assert open(path, "rb").read() == before

    def test_out_of_order_append_degrades_to_hydration(self, tmp_path):
        _path, graph, _before = self._mmap_boot(tmp_path, "ooo")
        delta = graph.append_edges([("a", "c", 2)])
        assert not delta.append_only
        assert not graph.is_lazily_booted
        reference = sample_graph()
        reference.append_edges([("a", "c", 2)])
        assert answers(graph) == answers(reference)

    def test_copy_of_a_lazy_boot_stays_lazy(self, tmp_path):
        _path, graph, _before = self._mmap_boot(tmp_path, "clone")
        clone = graph.copy()
        assert clone.is_lazily_booted and graph.is_lazily_booted
        clone.append_edges([("t", "z", 9)])
        assert clone.is_lazily_booted
        assert clone.num_edges == graph.num_edges + 1
        assert ("t", "z", 9) not in set(graph.edge_tuples())


# ----------------------------------------------------------------------
# Delta-aware service cache invalidation
# ----------------------------------------------------------------------
class TestServiceIngest:
    def test_disjoint_window_survives_the_ingest(self):
        service = TspgService(sample_graph())
        query = TspgQuery("s", "t", (1, 9))
        service.submit(query)
        service.ingest([("t", "z", 40)])  # beyond every cached window
        outcome = service.submit(query)
        assert outcome.extras.get("cache_hit")
        assert service.cache_stats().hits == 1

    def test_intersecting_window_is_dropped(self):
        service = TspgService(sample_graph())
        query = TspgQuery("s", "t", (1, 9))
        baseline = service.submit(query)
        service.ingest([("s", "c", 4), ("c", "t", 5)])
        outcome = service.submit(query)
        assert not outcome.extras.get("cache_hit")
        assert outcome.result.edges > baseline.result.edges

    def test_new_vertex_endpoint_is_dropped_even_when_disjoint(self):
        service = TspgService(sample_graph())
        query = TspgQuery("s", "t", (1, 9))
        service.submit(query)
        delta = service.ingest([("z", "q", 40)])
        assert set(delta.new_vertices) == {"z", "q"}
        # The old query touches neither new vertex and its window is
        # disjoint, so its entry survived — re-stamped to the new epoch.
        assert service.submit(query).extras.get("cache_hit")
        assert service.warmed_epoch == delta.new_epoch
        # A query *on* a new vertex answers (uncached) against fresh state.
        outcome = service.submit(TspgQuery("z", "q", (35, 45)))
        assert not outcome.extras.get("cache_hit")
        assert outcome.result.edges

    def test_legacy_mutation_still_clears_wholesale(self):
        service = TspgService(sample_graph())
        low = TspgQuery("s", "t", (1, 4))
        service.submit(low)
        service.graph.add_edge("t", "z", 40)
        outcome = service.submit(low)
        assert not outcome.extras.get("cache_hit")

    def test_snapshot_booted_service_journals_and_reboots(self, tmp_path):
        path = str(tmp_path / "svc.tspgsnap")
        save_snapshot(sample_graph(), path)
        service = TspgService.from_snapshot(path)
        service.ingest([("t", "z", 9)])
        service.ingest([("z", "q", 11)])
        assert os.path.exists(journal_path(path))
        reboot = TspgService.from_snapshot(path)
        assert reboot.graph.epoch == service.graph.epoch
        assert list(reboot.graph.edge_tuples()) == list(
            service.graph.edge_tuples()
        )

    def test_concurrent_ingest_and_queries_stay_consistent(self):
        graph = uniform_random_temporal_graph(
            num_vertices=16, num_edges=110, num_timestamps=30, seed=9
        )
        service = TspgService(graph.copy())
        batches = [
            [(1, 2, 31 + i), (3, 4, 32 + i)] for i in range(0, 12, 2)
        ]
        query = TspgQuery(0, 5, (1, 30))
        failures = []

        def run_queries():
            try:
                for _ in range(40):
                    service.submit(query)
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=run_queries) for _ in range(2)]
        for thread in threads:
            thread.start()
        for batch in batches:
            service.ingest(batch)
        for thread in threads:
            thread.join()
        assert not failures
        reference = graph.copy()
        for batch in batches:
            reference.append_edges(batch)
        assert answers(service.graph, 0, 5, (1, 30)) == answers(
            reference, 0, 5, (1, 30)
        )


# ----------------------------------------------------------------------
# Residency retirement on generation swap
# ----------------------------------------------------------------------
class TestResidencyRetirement:
    def test_retire_all_counts_and_clears(self):
        policy = ResidencyPolicy()
        policy.register(bytearray(4096))
        policy.register(bytearray(4096))
        assert policy.stats()["mappings"] == 2
        assert policy.retire_all() == 2
        assert policy.stats()["mappings"] == 0
        assert policy.stats()["retirements"] == 2
        assert policy.retire_all() == 0
        assert policy.stats()["retirements"] == 2

    def test_merged_stats_sum_retirements(self):
        first, second = ResidencyPolicy(), ResidencyPolicy()
        first.register(bytearray(4096))
        first.retire_all()
        merged = first.merged_with([second])
        assert merged["retirements"] == 1


# ----------------------------------------------------------------------
# Router ingest, set journal replay and the generation swap
# ----------------------------------------------------------------------
class TestRouterIngest:
    def _shard_dir(self, tmp_path, graph):
        path = str(tmp_path / "shards")
        ShardedTspgService(graph, 3).save_shards(path)
        return path

    def test_ingest_journals_and_a_fresh_boot_replays(self, tmp_path):
        graph = sample_graph()
        shard_dir = self._shard_dir(tmp_path, graph)
        router = ShardedTspgService.from_shard_snapshots(shard_dir)
        rows = [("t", "z", 9), ("z", "q", 30)]  # in-span + beyond-span
        delta = router.ingest(rows)
        assert delta.num_rows == 2
        assert os.path.exists(os.path.join(shard_dir, "ingest.tspgjournal"))
        reference = graph.copy()
        reference.append_edges(rows)
        for contender in (
            router,
            ShardedTspgService.from_shard_snapshots(shard_dir),
        ):
            outcome = contender.submit(TspgQuery("s", "q", (1, 30)))
            assert answers(reference, "s", "q", (1, 30)) == (
                frozenset(outcome.result.vertices),
                frozenset(outcome.result.edges),
            )

    def test_snapshot_booted_ingest_does_not_materialise_the_union(
        self, tmp_path
    ):
        shard_dir = self._shard_dir(tmp_path, sample_graph())
        router = ShardedTspgService.from_shard_snapshots(shard_dir)
        router.ingest([("t", "z", 9)])
        assert router._graph is None

    def test_rewarm_folds_the_journal_into_generation_n_plus_1(
        self, tmp_path
    ):
        graph = sample_graph()
        shard_dir = self._shard_dir(tmp_path, graph)
        router = ShardedTspgService.from_shard_snapshots(shard_dir)
        delta = router.ingest([("t", "z", 9), ("z", "q", 30)])
        manifest = router.rewarm_shards()
        assert manifest.epoch == delta.new_epoch
        assert not os.path.exists(
            os.path.join(shard_dir, "ingest.tspgjournal")
        )
        reference = graph.copy()
        reference.append_edges([("t", "z", 9), ("z", "q", 30)])
        regen = ShardedTspgService.from_shard_snapshots(shard_dir)
        outcome = regen.submit(TspgQuery("s", "q", (1, 30)))
        assert answers(reference, "s", "q", (1, 30)) == (
            frozenset(outcome.result.vertices),
            frozenset(outcome.result.edges),
        )

    def test_rewarm_retires_the_old_generations_residency(self, tmp_path):
        shard_dir = self._shard_dir(tmp_path, sample_graph())
        router = ShardedTspgService.from_shard_snapshots(
            shard_dir, mmap=True, residency=True
        )
        stats = router.residency_stats()
        if stats is None or not stats.get("mappings"):
            pytest.skip("no residency mappings on this platform")
        mapped = stats["mappings"]
        router.ingest([("t", "z", 9)])
        router.rewarm_shards()
        assert router.residency_stats()["retirements"] >= mapped

    def test_background_rewarm_returns_a_joinable_thread(self, tmp_path):
        graph = sample_graph()
        shard_dir = self._shard_dir(tmp_path, graph)
        router = ShardedTspgService.from_shard_snapshots(shard_dir)
        router.ingest([("t", "z", 9)])
        worker = router.rewarm_shards(background=True)
        worker.join(timeout=30)
        assert not worker.is_alive()
        assert not os.path.exists(
            os.path.join(shard_dir, "ingest.tspgjournal")
        )

    def test_rewarm_without_an_attached_set_raises(self):
        router = ShardedTspgService(sample_graph(), 2)
        with pytest.raises(RuntimeError, match="shard snapshot set"):
            router.rewarm_shards()
