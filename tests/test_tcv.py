"""Unit tests for time-stream common vertices (Algorithm 4, Definition 5)."""

from __future__ import annotations

import pytest

from repro.core.quick_ubg import quick_upper_bound_graph
from repro.core.tcv import compute_time_stream_common_vertices
from repro.graph.temporal_graph import TemporalGraph
from repro.paths.enumerate import enumerate_temporal_simple_paths


@pytest.fixture
def paper_tcv(paper_query):
    graph, source, target, interval = paper_query
    quick = quick_upper_bound_graph(graph, source, target, interval)
    return compute_time_stream_common_vertices(quick, source, target, interval)


class TestPaperExample:
    """The TCV tables of Fig. 4(a)-(b)."""

    def test_source_side_entries(self, paper_tcv):
        assert paper_tcv.from_source("b", 2) == {"b"}
        assert paper_tcv.from_source("c", 3) == {"b", "c"}
        assert paper_tcv.from_source("c", 6) == {"b", "c"}
        assert paper_tcv.from_source("f", 4) == {"b", "c", "f"}
        assert paper_tcv.from_source("e", 5) == {"b", "c", "f", "e"}

    def test_target_side_entries(self, paper_tcv):
        assert paper_tcv.to_target("b", 6) == {"b"}
        assert paper_tcv.to_target("c", 7) == {"c"}
        assert paper_tcv.to_target("e", 6) == {"c", "e"}
        # Example 7: the entry for f is first {c, e, f} then refined to {f}.
        assert paper_tcv.to_target("f", 5) == {"f"}

    def test_lemma5_lookup_between_entries(self, paper_tcv):
        # TCV_4(s, c) falls back to the entry at timestamp 3 (Lemma 5).
        assert paper_tcv.from_source("c", 4) == {"b", "c"}
        # TCV_5(c, t) falls forward to the entry at timestamp 7.
        assert paper_tcv.to_target("c", 5) == {"c"}

    def test_anchor_vertices_map_to_empty_set(self, paper_tcv):
        assert paper_tcv.from_source("s", 3) == frozenset()
        assert paper_tcv.to_target("t", 3) == frozenset()

    def test_lookup_before_first_entry_is_undefined(self, paper_tcv):
        assert paper_tcv.from_source("c", 2) is None
        assert paper_tcv.to_target("b", 7) is None
        # ... and the Algorithm 5 default kicks in.
        assert paper_tcv.from_source_or_default("c", 2) == {"c"}
        assert paper_tcv.to_target_or_default("b", 7) == {"b"}

    def test_space_cost_is_positive(self, paper_tcv):
        assert paper_tcv.space_cost() > 0
        assert paper_tcv.source_index.num_entries() >= 4
        assert paper_tcv.target_index.num_entries() >= 4


def definition_tcv_source(graph, source, target, interval, vertex, timestamp):
    """Brute-force TCV_τ(s, u) straight from Definition 5."""
    common = None
    for path in enumerate_temporal_simple_paths(graph, source, vertex, (interval[0], timestamp)):
        if target in path.vertex_set():
            continue
        members = path.vertex_set() - {source}
        common = members if common is None else (common & members)
    return common


def definition_tcv_target(graph, source, target, interval, vertex, timestamp):
    """Brute-force TCV_τ(u, t) straight from Definition 5."""
    common = None
    for path in enumerate_temporal_simple_paths(graph, vertex, target, (timestamp, interval[1])):
        if source in path.vertex_set():
            continue
        members = path.vertex_set() - {target}
        common = members if common is None else (common & members)
    return common


class TestAgainstDefinition:
    """The streaming computation agrees with the brute-force definition."""

    def test_paper_example_source_side(self, paper_query, paper_tcv):
        graph, source, target, interval = paper_query
        quick = quick_upper_bound_graph(graph, source, target, interval)
        for vertex in ("b", "c", "e", "f"):
            for timestamp in quick.in_timestamps(vertex):
                expected = definition_tcv_source(
                    quick, source, target, interval.as_tuple(), vertex, timestamp
                )
                assert paper_tcv.from_source(vertex, timestamp) == expected

    def test_paper_example_target_side(self, paper_query, paper_tcv):
        graph, source, target, interval = paper_query
        quick = quick_upper_bound_graph(graph, source, target, interval)
        for vertex in ("b", "c", "e", "f"):
            for timestamp in quick.out_timestamps(vertex):
                expected = definition_tcv_target(
                    quick, source, target, interval.as_tuple(), vertex, timestamp
                )
                assert paper_tcv.to_target(vertex, timestamp) == expected

    def test_diamond_graph(self, diamond_graph):
        source, target, interval = "s", "t", (1, 4)
        quick = quick_upper_bound_graph(diamond_graph, source, target, interval)
        tcv = compute_time_stream_common_vertices(quick, source, target, interval)
        for vertex in quick.vertices():
            if vertex in (source, target):
                continue
            for timestamp in quick.in_timestamps(vertex):
                expected = definition_tcv_source(quick, source, target, interval, vertex, timestamp)
                assert tcv.from_source(vertex, timestamp) == expected


class TestLemma7Pruning:
    def test_completed_vertex_keeps_singleton_for_later_timestamps(self):
        # b gets TCV = {b} at its first in-timestamp; later lookups stay {b}.
        graph = TemporalGraph(
            edges=[("s", "b", 1), ("a", "b", 5), ("s", "a", 4), ("b", "t", 6), ("b", "t", 7)]
        )
        quick = quick_upper_bound_graph(graph, "s", "t", (1, 7))
        tcv = compute_time_stream_common_vertices(quick, "s", "t", (1, 7))
        assert tcv.from_source("b", 1) == {"b"}
        assert tcv.from_source("b", 5) == {"b"}
        assert tcv.from_source("b", 7) == {"b"}
