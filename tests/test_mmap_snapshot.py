"""Snapshot format v4: mmap-backed columnar boot, compat and durability.

Covers the v4 layout end to end — :class:`MmapColumn`, the lazy
:class:`TemporalGraph` boot, cross-version compatibility (v1/v2/v3 still
load; ``mmap=True`` on them degrades cleanly with a recorded reason),
per-section corruption detection, write durability (fsync + no temp
siblings after a failed write), and the mmap flag's surfaces on the store,
service and sharded-router layers.
"""

import os
import struct
import zlib

import pytest

from repro.graph.columns import IndexColumn, MmapColumn, as_index_column
from repro.graph.generators import synth_scale_edges
from repro.graph.temporal_graph import TemporalGraph
from repro.service import ShardedTspgService, TspgService
from repro.store import (
    HEADER_SIZE,
    ShardSnapshotSet,
    SnapshotError,
    SnapshotGraphStore,
    V4_COLUMN_SECTIONS,
    boot_snapshot,
    inspect_snapshot,
    load_snapshot,
    peek_snapshot,
    save_snapshot,
    snapshot_bytes,
    write_legacy_snapshot,
)
from repro.store.snapshot import _HEADER_STRUCT


def sample_graph():
    graph = TemporalGraph(edges=[
        ("s", "b", 2), ("s", "a", 3), ("b", "c", 3), ("b", "d", 3),
        ("a", "d", 5), ("c", "t", 7), ("d", "t", 2), ("b", "t", 6),
    ])
    graph.add_vertex("isolated")
    return graph


def scale_graph(num_edges=3000):
    graph = TemporalGraph(vertices=range(400))
    graph.add_edges(synth_scale_edges(400, num_edges, num_timestamps=80, seed=11))
    return graph


# ----------------------------------------------------------------------
# MmapColumn
# ----------------------------------------------------------------------
class TestMmapColumn:
    def column(self, values):
        raw = IndexColumn("q", values).tobytes()
        return MmapColumn(memoryview(raw)), values

    def test_buffer_duck_type(self):
        column, values = self.column([5, -3, 0, 1 << 40])
        assert len(column) == len(values)
        assert list(column) == values
        assert column[1] == -3
        assert column[-1] == 1 << 40
        assert column.tolist() == values
        assert (1 << 40) in column
        assert 99 not in column

    def test_slice_stays_zero_copy(self):
        column, values = self.column([1, 2, 3, 4, 5])
        sliced = column[1:4]
        assert isinstance(sliced, MmapColumn)
        assert sliced.tolist() == values[1:4]

    def test_equality_against_array_and_list(self):
        column, values = self.column([7, 8, 9])
        assert column == IndexColumn("q", values)
        assert column == values
        other, _ = self.column([7, 8, 9])
        assert column == other
        assert column != [7, 8]

    def test_materialize_detaches_from_buffer(self):
        column, values = self.column([4, 5, 6])
        materialized = column.materialize()
        assert isinstance(materialized, IndexColumn)
        assert list(materialized) == values
        assert as_index_column(column) == materialized

    def test_numpy_view_when_available(self):
        pytest.importorskip("numpy")
        column, values = self.column([10, 20, 30])
        view = column.numpy()
        assert view.tolist() == values

    def test_step_slices(self):
        column, values = self.column([0, 1, 2, 3, 4, 5, 6, 7])
        for step_slice in (
            slice(None, None, 2),
            slice(1, 7, 3),
            slice(None, None, -1),
            slice(6, 1, -2),
        ):
            sliced = column[step_slice]
            assert isinstance(sliced, MmapColumn)
            assert sliced.tolist() == values[step_slice]

    def test_step_slice_numpy_copies_non_contiguous(self):
        np = pytest.importorskip("numpy")
        column, values = self.column([0, 1, 2, 3, 4, 5, 6, 7])
        strided = column[::2]
        view = strided.numpy()
        assert view.dtype == np.int64
        assert view.tolist() == values[::2]

    def test_negative_indices(self):
        column, values = self.column([10, 20, 30, 40])
        assert column[-1] == values[-1]
        assert column[-4] == values[-4]
        assert column[-3:-1].tolist() == values[-3:-1]
        with pytest.raises(IndexError):
            column[-5]

    def test_empty_and_out_of_range_slices(self):
        column, values = self.column([1, 2, 3])
        for empty in (column[3:], column[2:1], column[5:9], column[0:0]):
            assert isinstance(empty, MmapColumn)
            assert len(empty) == 0
            assert empty.tolist() == []
        assert column[:99].tolist() == values
        with pytest.raises(IndexError):
            column[3]

    def test_offset_views_equal_materialized_slices(self):
        column, values = self.column(list(range(16)))
        for window in (slice(0, 16), slice(3, 11), slice(8, 8), slice(12, 16)):
            offset_view = column[window]
            materialized = column.materialize()[window]
            assert offset_view == materialized
            assert offset_view.tolist() == list(materialized)
            assert offset_view.nbytes == 8 * len(offset_view)


# ----------------------------------------------------------------------
# v4 round trip + lazy boot
# ----------------------------------------------------------------------
class TestV4MmapBoot:
    def test_eager_and_mmap_boots_are_identical(self, tmp_path):
        graph = sample_graph()
        path = str(tmp_path / "g.tspgsnap")
        info = save_snapshot(graph, path)
        assert info.version == 4
        eager = load_snapshot(path)
        mapped = load_snapshot(path, mmap=True)
        assert mapped.is_lazily_booted
        assert eager == graph
        assert mapped == graph  # hydrates on comparison
        assert not mapped.is_lazily_booted

    def test_lazy_boot_answers_cheap_queries_without_hydrating(self, tmp_path):
        graph = sample_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        mapped = load_snapshot(path, mmap=True)
        assert mapped.num_vertices == graph.num_vertices
        assert mapped.num_edges == graph.num_edges
        assert list(mapped.vertices()) == list(graph.vertices())
        assert mapped.has_vertex("isolated")
        assert mapped.warm_indices() == graph.warm_indices()
        assert mapped.is_lazily_booted

    def test_mutation_after_mmap_boot_copies_on_write(self, tmp_path):
        graph = sample_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        original_bytes = open(path, "rb").read()
        mapped = load_snapshot(path, mmap=True)
        assert mapped.add_edge("t", "z", 9)
        assert not mapped.is_lazily_booted
        assert mapped.epoch > graph.epoch
        assert mapped.num_edges == graph.num_edges + 1
        # The mapped file never sees the mutation.
        assert open(path, "rb").read() == original_bytes
        expected = graph.copy()
        expected.add_edge("t", "z", 9)
        assert mapped == expected

    def test_resave_of_mmap_boot_is_byte_identical(self, tmp_path):
        graph = scale_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        original = open(path, "rb").read()
        mapped = load_snapshot(path, mmap=True)
        assert snapshot_bytes(mapped) == original

    def test_workers_inherit_the_mapping(self, tmp_path):
        """Process workers booted with snapshot_mmap answer identically."""
        graph = scale_graph(1500)
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        from repro.queries.workload import generate_workload

        queries = list(generate_workload(graph, num_queries=6, theta=20, seed=3))
        eager = TspgService.from_snapshot(path)
        mapped = TspgService.from_snapshot(path, mmap=True)
        assert mapped.snapshot_mmap_active
        baseline = eager.run_batch(queries, use_cache=False)
        report = mapped.run_batch(
            queries, max_workers=2, use_cache=False, executor="processes"
        )
        assert report.executor == "processes"
        for base, item in zip(baseline.items, report.items):
            assert base.outcome.result.vertices == item.outcome.result.vertices
            assert base.outcome.result.edges == item.outcome.result.edges


# ----------------------------------------------------------------------
# cross-version compatibility
# ----------------------------------------------------------------------
class TestCrossVersionCompat:
    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_legacy_versions_still_load_eagerly(self, tmp_path, version):
        graph = sample_graph()
        path = str(tmp_path / f"g.v{version}.tspgsnap")
        if version == 2:
            # v2's payload layout equals v3's; only the header version (and
            # the loader's tie-order trust) differ, so forge the field.
            write_legacy_snapshot(graph, path, version=3)
            raw = bytearray(open(path, "rb").read())
            fields = list(_HEADER_STRUCT.unpack(bytes(raw[:HEADER_SIZE])))
            fields[1] = 2
            raw[:HEADER_SIZE] = _HEADER_STRUCT.pack(*fields)
            open(path, "wb").write(bytes(raw))
        else:
            info = write_legacy_snapshot(graph, path, version=version)
            assert info.version == version
        assert peek_snapshot(path).version == version
        loaded = load_snapshot(path)
        assert loaded == graph
        assert loaded.warm_indices() == graph.warm_indices()

    @pytest.mark.parametrize("version", [1, 3])
    def test_mmap_on_legacy_degrades_with_recorded_reason(self, tmp_path, version):
        graph = sample_graph()
        path = str(tmp_path / f"g.v{version}.tspgsnap")
        write_legacy_snapshot(graph, path, version=version)
        boot = boot_snapshot(path, mmap=True)
        assert boot.mmap_requested and not boot.mmap_active
        assert boot.graph == graph
        assert len(boot.fallback_reasons) == 1
        reason = boot.fallback_reasons[0]
        assert f"v{version}" in reason and "mmap" in reason

    def test_v4_loads_both_ways_and_reports_sections(self, tmp_path):
        graph = sample_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        info, sections = inspect_snapshot(path)
        assert info.version == 4
        names = [section.name for section in sections]
        assert names == ["meta", "adjacency"] + list(V4_COLUMN_SECTIONS)
        for section in sections:
            assert section.offset % 8 == 0 or section.elements == 0
        assert load_snapshot(path) == graph
        assert load_snapshot(path, mmap=True) == graph

    def test_corrupted_section_names_the_section(self, tmp_path):
        graph = sample_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        _, sections = inspect_snapshot(path)
        target = next(s for s in sections if s.name == "view.dst")
        raw = bytearray(open(path, "rb").read())
        raw[HEADER_SIZE + target.offset] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        with pytest.raises(SnapshotError, match="'view.dst' checksum mismatch"):
            load_snapshot(path)
        # The mmap boot defers column CRCs, but hydration still trips on
        # the adjacency section when *that* is corrupt.
        save_snapshot(graph, path)
        _, sections = inspect_snapshot(path)
        target = next(s for s in sections if s.name == "adjacency")
        raw = bytearray(open(path, "rb").read())
        raw[HEADER_SIZE + target.offset + 4] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        mapped = load_snapshot(path, mmap=True)
        with pytest.raises(SnapshotError, match="'adjacency' checksum mismatch"):
            mapped.out_neighbors("s")

    def test_corrupted_table_is_a_checksum_mismatch(self, tmp_path):
        graph = sample_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        raw = bytearray(open(path, "rb").read())
        raw[HEADER_SIZE + 12] ^= 0xFF  # inside the first section record
        open(path, "wb").write(bytes(raw))
        with pytest.raises(SnapshotError, match="section table checksum mismatch"):
            load_snapshot(path)


# ----------------------------------------------------------------------
# durability (satellite: fsync + temp-sibling cleanup)
# ----------------------------------------------------------------------
class TestDurability:
    def test_failed_save_leaves_no_temp_sibling(self, tmp_path, monkeypatch):
        graph = sample_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        before = open(path, "rb").read()

        def exploding_fsync(fd):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="disk on fire"):
            save_snapshot(graph, path)
        monkeypatch.undo()
        siblings = sorted(os.listdir(tmp_path))
        assert siblings == ["g.tspgsnap"], f"temp sibling survived: {siblings}"
        # The committed file is untouched by the failed write.
        assert open(path, "rb").read() == before
        assert load_snapshot(path) == graph

    def test_failed_shard_save_leaves_no_temp_siblings(self, tmp_path, monkeypatch):
        graph = sample_graph()
        router = ShardedTspgService(graph, 2)
        shard_dir = tmp_path / "shards"
        router.save_shards(str(shard_dir))
        manifest_before = open(shard_dir / "manifest.json", "rb").read()

        calls = {"n": 0}
        real_fsync = os.fsync

        def fsync_fails_later(fd):
            calls["n"] += 1
            if calls["n"] > 2:
                raise OSError("disk on fire")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", fsync_fails_later)
        with pytest.raises(OSError, match="disk on fire"):
            router.save_shards(str(shard_dir))
        monkeypatch.undo()
        names = sorted(os.listdir(shard_dir))
        assert not any(name.endswith(".tmp") for name in names), names
        # The committed generation is untouched and still boots.
        assert open(shard_dir / "manifest.json", "rb").read() == manifest_before
        booted = ShardedTspgService.from_shard_snapshots(str(shard_dir))
        assert booted.num_shards == 2


# ----------------------------------------------------------------------
# store / service / shard-set mmap surfaces
# ----------------------------------------------------------------------
class TestMmapSurfaces:
    def test_store_records_mmap_state(self, tmp_path):
        graph = sample_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        store = SnapshotGraphStore(path, mmap=True)
        assert store.mmap_requested and not store.mmap_active
        store.load()
        assert store.mmap_active
        assert store.mmap_fallback_reasons() == []
        assert store.describe()["mmap"] == "active"
        plain = SnapshotGraphStore(path)
        plain.load()
        assert plain.mmap_fallback_reasons() == [
            "mmap boot was not requested (pass mmap=True / --mmap)"
        ]

    def test_service_surfaces_fallback_reasons(self, tmp_path):
        graph = sample_graph()
        v3_path = str(tmp_path / "g.v3.tspgsnap")
        write_legacy_snapshot(graph, v3_path, version=3)
        service = TspgService.from_snapshot(v3_path, mmap=True)
        assert not service.snapshot_mmap_active
        reasons = service.mmap_fallback_reasons()
        assert len(reasons) == 1 and "v3" in reasons[0]
        plain = TspgService.from_snapshot(v3_path)
        assert plain.mmap_fallback_reasons() == [
            "mmap boot was not requested (pass mmap=True / --mmap)"
        ]

    def test_shard_set_boots_mmap_and_router_aggregates(self, tmp_path):
        graph = scale_graph(800)
        router = ShardedTspgService(graph, 2)
        shard_dir = str(tmp_path / "shards")
        router.save_shards(shard_dir)
        shard_set = ShardSnapshotSet(shard_dir)
        manifest = shard_set.manifest()
        boot = shard_set.boot_shard(manifest.shards[0], mmap=True)
        assert boot.mmap_active and boot.graph.is_lazily_booted
        mapped_router = ShardedTspgService.from_shard_snapshots(
            shard_dir, mmap=True
        )
        assert mapped_router.snapshot_mmap_active
        assert mapped_router.mmap_fallback_reasons() == []

    def test_router_labels_per_shard_degradations(self, tmp_path):
        graph = sample_graph()
        router = ShardedTspgService(graph, 2)
        shard_dir = tmp_path / "shards"
        router.save_shards(str(shard_dir))
        # Rewrite shard 1's file as v3 and patch the manifest CRC so the
        # set stays consistent — only the format version degrades.
        import json

        manifest = json.loads((shard_dir / "manifest.json").read_text())
        entry = manifest["shards"][1]
        shard_path = shard_dir / entry["filename"]
        shard_graph = load_snapshot(str(shard_path))
        write_legacy_snapshot(shard_graph, str(shard_path), version=3)
        entry["file_crc32"] = zlib.crc32(shard_path.read_bytes()) & 0xFFFFFFFF
        (shard_dir / "manifest.json").write_text(json.dumps(manifest))
        mapped_router = ShardedTspgService.from_shard_snapshots(
            str(shard_dir), mmap=True
        )
        assert not mapped_router.snapshot_mmap_active
        reasons = mapped_router.mmap_fallback_reasons()
        assert len(reasons) == 1
        assert reasons[0].startswith("shard 1 (")
        assert "v3" in reasons[0]


# ----------------------------------------------------------------------
# extent-local boots + page-advice policy
# ----------------------------------------------------------------------
class TestExtentLocalBoot:
    def restriction(self, graph):
        """A middle slice of the graph's timestamp span (a proper subset)."""
        timestamps = graph.timestamps()
        return (timestamps[len(timestamps) // 4],
                timestamps[(len(timestamps) * 3) // 4])

    def test_extent_boot_maps_only_the_interval_rows(self, tmp_path):
        graph = scale_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        interval = self.restriction(graph)
        boot = boot_snapshot(path, mmap=True, interval=interval)
        assert boot.mmap_active
        lo, hi = boot.row_range
        assert 0 < hi - lo < graph.num_edges
        assert boot.graph.num_edges == hi - lo
        assert 0 < boot.mapped_column_bytes < boot.total_column_bytes
        begin, end = interval
        view = boot.graph.view()
        assert all(begin <= ts <= end for ts in view.ts)

    def test_extent_boot_matches_eager_restriction(self, tmp_path):
        graph = scale_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        interval = self.restriction(graph)
        extent = boot_snapshot(path, mmap=True, interval=interval).graph
        eager = boot_snapshot(path, interval=interval).graph
        assert sorted(extent.edge_tuples()) == sorted(eager.edge_tuples())
        assert set(extent.vertices()) == set(eager.vertices())
        assert extent.timestamps() == eager.timestamps()

    def test_covering_interval_takes_the_whole_file_fast_path(self, tmp_path):
        graph = scale_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        timestamps = graph.timestamps()
        boot = boot_snapshot(
            path, mmap=True, interval=(timestamps[0], timestamps[-1])
        )
        assert boot.mmap_active
        assert boot.row_range == (0, graph.num_edges)
        assert boot.mapped_column_bytes == boot.total_column_bytes
        assert boot.graph.is_lazily_booted

    def test_extent_boot_registers_residency_mappings(self, tmp_path):
        from repro.store import ResidencyPolicy, madvise_supported

        graph = scale_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        policy = ResidencyPolicy()
        boot = boot_snapshot(
            path, mmap=True, interval=self.restriction(graph),
            residency=policy,
        )
        assert boot.mmap_active
        stats = policy.stats()
        assert stats["mappings"] > 0
        assert stats["mapped_bytes"] > 0
        if madvise_supported():
            assert policy.advise_warm() > 0
            assert policy.advise_serve() > 0
            assert policy.evict_cold() > 0
            assert policy.stats()["errors"] == 0

    def test_no_madvise_env_forces_noop(self, tmp_path, monkeypatch):
        from repro.store import ResidencyPolicy, madvise_unsupported_reason

        monkeypatch.setenv("TSPG_NO_MADVISE", "1")
        assert "TSPG_NO_MADVISE" in madvise_unsupported_reason()
        policy = ResidencyPolicy()
        graph = sample_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        boot = boot_snapshot(path, mmap=True, residency=policy)
        assert boot.mmap_active
        assert not policy.supported
        assert policy.advise_warm() == 0
        assert policy.evict_cold() == 0
        assert policy.stats()["errors"] == 0

    def test_store_surfaces_interval_and_mapped_bytes(self, tmp_path):
        graph = scale_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        interval = self.restriction(graph)
        store = SnapshotGraphStore(path, mmap=True, interval=interval)
        store.load()
        row = store.describe()
        assert "interval" in row
        assert row["mapped_column_bytes"] > 0
        assert store.last_boot.row_range is not None

    def test_service_from_snapshot_with_interval_and_residency(self, tmp_path):
        graph = scale_graph()
        path = str(tmp_path / "g.tspgsnap")
        save_snapshot(graph, path)
        interval = self.restriction(graph)
        service = TspgService.from_snapshot(
            path, mmap=True, interval=interval, residency=True
        )
        stats = service.residency_stats()
        assert stats is not None
        assert stats["phase"] == "serve"
        assert 0 < stats["mapped_column_bytes"] < stats["total_column_bytes"]
        service.evict_cold_pages()

    def test_shard_boot_with_residency_stays_whole_file(self, tmp_path):
        from repro.store import ResidencyPolicy

        graph = scale_graph()
        router = ShardedTspgService(graph, 2)
        shard_dir = str(tmp_path / "shards")
        router.save_shards(shard_dir)
        shard_set = ShardSnapshotSet(shard_dir)
        manifest = shard_set.manifest()
        policy = ResidencyPolicy()
        boot = shard_set.boot_shard(
            manifest.shards[0], mmap=True, residency=policy
        )
        # A well-formed shard file holds exactly its extent's rows, so the
        # extent restriction is a no-op and the lazy whole-file path runs.
        assert boot.mmap_active
        assert boot.graph.is_lazily_booted
        assert policy.stats()["mappings"] > 0

    def test_sharded_router_residency_stats_aggregate(self, tmp_path):
        graph = scale_graph()
        ShardedTspgService(graph, 3).save_shards(str(tmp_path / "shards"))
        booted = ShardedTspgService.from_shard_snapshots(
            str(tmp_path / "shards"), mmap=True, residency=True
        )
        assert len(booted.residency) == 3
        stats = booted.residency_stats()
        assert stats["mappings"] >= 3
        assert stats["mapped_bytes"] > 0
        booted.evict_cold_pages()
