"""Property-based tests (hypothesis) for the core invariants of the library.

The central properties:

* VUG's result always equals the brute-force ``tspG`` built straight from the
  definition (exactness).
* Every upper-bound graph in the pipeline contains the next tighter one and
  ultimately the ``tspG`` (the containment chain of Section IV).
* Every edge of the ``tspG`` admits a witnessing temporal simple path and
  every temporal simple path's members belong to the ``tspG`` (soundness and
  completeness of Definition 2).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.oracle import brute_force_tspg
from repro.baselines.reductions import dt_tsg_reduction, es_tsg_reduction, tg_tsg_reduction
from repro.core.quick_ubg import quick_upper_bound_graph
from repro.core.tight_ubg import tight_upper_bound_graph
from repro.core.vug import generate_tspg
from repro.graph.edge import TimeInterval
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validation import is_subgraph
from repro.paths.enumerate import enumerate_temporal_simple_paths

MAX_VERTICES = 8
MAX_TIMESTAMP = 9


@st.composite
def temporal_graphs(draw) -> TemporalGraph:
    """Random small temporal multigraphs over vertices 0..MAX_VERTICES-1."""
    num_vertices = draw(st.integers(min_value=2, max_value=MAX_VERTICES))
    num_edges = draw(st.integers(min_value=0, max_value=28))
    edges = []
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        v = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        if u == v:
            continue
        t = draw(st.integers(min_value=1, max_value=MAX_TIMESTAMP))
        edges.append((u, v, t))
    return TemporalGraph(edges=edges, vertices=range(num_vertices))


@st.composite
def graph_queries(draw):
    """A random graph plus a random (source, target, interval) query."""
    graph = draw(temporal_graphs())
    vertices = sorted(graph.vertices())
    source = draw(st.sampled_from(vertices))
    target = draw(st.sampled_from([v for v in vertices if v != source]))
    begin = draw(st.integers(min_value=1, max_value=MAX_TIMESTAMP))
    end = draw(st.integers(min_value=begin, max_value=MAX_TIMESTAMP))
    return graph, source, target, TimeInterval(begin, end)


@settings(max_examples=120, deadline=None)
@given(graph_queries())
def test_vug_matches_brute_force(query):
    graph, source, target, interval = query
    expected = brute_force_tspg(graph, source, target, interval)
    actual = generate_tspg(graph, source, target, interval)
    assert actual.same_members(expected)


@settings(max_examples=80, deadline=None)
@given(graph_queries())
def test_containment_chain(query):
    graph, source, target, interval = query
    dt = dt_tsg_reduction(graph, source, target, interval)
    es = es_tsg_reduction(graph, source, target, interval)
    tg = tg_tsg_reduction(graph, source, target, interval)
    quick = quick_upper_bound_graph(graph, source, target, interval)
    tight = tight_upper_bound_graph(quick, source, target, interval)
    tspg = brute_force_tspg(graph, source, target, interval).to_temporal_graph()
    assert is_subgraph(tspg, tight)
    assert is_subgraph(tight, quick)
    assert set(quick.edge_tuples()) == set(tg.edge_tuples())
    assert is_subgraph(tg, es)
    assert is_subgraph(es, dt)
    assert is_subgraph(dt, graph)


@settings(max_examples=60, deadline=None)
@given(graph_queries())
def test_tspg_soundness_and_completeness(query):
    graph, source, target, interval = query
    tspg = generate_tspg(graph, source, target, interval)
    # Completeness: every enumerated simple path is fully contained in tspG.
    members_from_paths = set()
    vertices_from_paths = set()
    for path in enumerate_temporal_simple_paths(graph, source, target, interval):
        members_from_paths.update(edge.as_tuple() for edge in path.edges)
        vertices_from_paths.update(path.vertices())
        assert set(e.as_tuple() for e in path.edges) <= set(tspg.edges)
    # Soundness: the tspG contains nothing beyond the union of those paths.
    assert set(tspg.edges) == members_from_paths
    assert set(tspg.vertices) == vertices_from_paths


@settings(max_examples=60, deadline=None)
@given(graph_queries())
def test_tspg_edges_within_interval_and_graph(query):
    graph, source, target, interval = query
    tspg = generate_tspg(graph, source, target, interval)
    for u, v, t in tspg.edges:
        assert graph.has_edge(u, v, t)
        assert interval.contains(t)


@settings(max_examples=60, deadline=None)
@given(graph_queries())
def test_quick_bound_respects_lemma1(query):
    graph, source, target, interval = query
    quick = quick_upper_bound_graph(graph, source, target, interval)
    # Every surviving edge lies on at least one temporal s-t path: verify via
    # the definitional reachability conditions of Observation 1.
    from repro.paths.reachability import earliest_arrival_times, latest_departure_times

    arrival = earliest_arrival_times(graph, source, interval, strict=True, forbidden=target)
    departure = latest_departure_times(graph, target, interval, strict=True, forbidden=source)
    for u, v, t in quick.edge_tuples():
        assert arrival[u] < t < departure[v]


@settings(max_examples=40, deadline=None)
@given(graph_queries())
def test_result_is_deterministic(query):
    graph, source, target, interval = query
    first = generate_tspg(graph, source, target, interval)
    second = generate_tspg(graph, source, target, interval)
    assert first.same_members(second)
