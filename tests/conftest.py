"""Shared fixtures: the paper's running example and assorted small graphs."""

from __future__ import annotations

import pytest

from repro.graph.edge import TimeInterval
from repro.graph.generators import paper_running_example
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture
def paper_graph() -> TemporalGraph:
    """The directed temporal graph of Fig. 1(a)."""
    return paper_running_example()


@pytest.fixture
def paper_interval() -> TimeInterval:
    """The query interval [2, 7] used throughout the paper's running example."""
    return TimeInterval(2, 7)


@pytest.fixture
def paper_query(paper_graph, paper_interval):
    """(graph, source, target, interval) of the running example."""
    return paper_graph, "s", "t", paper_interval


#: Expected members of the running example's intermediate/final artifacts.
PAPER_GQ_EDGES = {
    ("s", "b", 2),
    ("b", "c", 3),
    ("c", "f", 4),
    ("f", "e", 5),
    ("f", "b", 5),
    ("e", "c", 6),
    ("b", "t", 6),
    ("c", "t", 7),
}

PAPER_GT_EDGES = {
    ("s", "b", 2),
    ("b", "c", 3),
    ("c", "f", 4),
    ("b", "t", 6),
    ("c", "t", 7),
}

PAPER_TSPG_EDGES = {
    ("s", "b", 2),
    ("b", "c", 3),
    ("b", "t", 6),
    ("c", "t", 7),
}

PAPER_TSPG_VERTICES = {"s", "b", "c", "t"}


@pytest.fixture
def diamond_graph() -> TemporalGraph:
    """A small diamond with two disjoint temporal simple paths s→t."""
    return TemporalGraph(
        edges=[
            ("s", "a", 1),
            ("a", "t", 3),
            ("s", "b", 2),
            ("b", "t", 4),
            ("a", "b", 2),
        ]
    )


@pytest.fixture
def chain_graph() -> TemporalGraph:
    """A simple temporal chain s → v1 → v2 → v3 → t with ascending timestamps."""
    return TemporalGraph(
        edges=[
            ("s", "v1", 1),
            ("v1", "v2", 2),
            ("v2", "v3", 3),
            ("v3", "t", 4),
        ]
    )


@pytest.fixture
def unreachable_graph() -> TemporalGraph:
    """A graph where t is unreachable from s under the temporal constraint."""
    return TemporalGraph(
        edges=[
            ("s", "a", 5),
            ("a", "t", 3),  # timestamp decreases, so no temporal path exists
            ("b", "t", 9),
        ]
    )
