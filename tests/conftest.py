"""Shared fixtures: the paper's running example and assorted small graphs."""

from __future__ import annotations

import pytest

from repro.graph.edge import TimeInterval
from repro.graph.generators import paper_running_example
from repro.graph.temporal_graph import TemporalGraph
from repro.testing import (  # noqa: F401 — re-exported for legacy imports
    PAPER_GQ_EDGES,
    PAPER_GT_EDGES,
    PAPER_TSPG_EDGES,
    PAPER_TSPG_VERTICES,
)


@pytest.fixture
def paper_graph() -> TemporalGraph:
    """The directed temporal graph of Fig. 1(a)."""
    return paper_running_example()


@pytest.fixture
def paper_interval() -> TimeInterval:
    """The query interval [2, 7] used throughout the paper's running example."""
    return TimeInterval(2, 7)


@pytest.fixture
def paper_query(paper_graph, paper_interval):
    """(graph, source, target, interval) of the running example."""
    return paper_graph, "s", "t", paper_interval


@pytest.fixture
def diamond_graph() -> TemporalGraph:
    """A small diamond with two disjoint temporal simple paths s→t."""
    return TemporalGraph(
        edges=[
            ("s", "a", 1),
            ("a", "t", 3),
            ("s", "b", 2),
            ("b", "t", 4),
            ("a", "b", 2),
        ]
    )


@pytest.fixture
def chain_graph() -> TemporalGraph:
    """A simple temporal chain s → v1 → v2 → v3 → t with ascending timestamps."""
    return TemporalGraph(
        edges=[
            ("s", "v1", 1),
            ("v1", "v2", 2),
            ("v2", "v3", 3),
            ("v3", "t", 4),
        ]
    )


@pytest.fixture
def unreachable_graph() -> TemporalGraph:
    """A graph where t is unreachable from s under the temporal constraint."""
    return TemporalGraph(
        edges=[
            ("s", "a", 5),
            ("a", "t", 3),  # timestamp decreases, so no temporal path exists
            ("b", "t", 9),
        ]
    )
