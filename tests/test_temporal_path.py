"""Unit tests for the TemporalPath model."""

from __future__ import annotations

import pytest

from repro.graph.edge import TemporalEdge
from repro.graph.temporal_graph import TemporalGraph
from repro.paths.temporal_path import (
    InvalidPathError,
    TemporalPath,
    is_temporal_path,
    is_temporal_simple_path,
    path_from_vertices,
)


class TestConstruction:
    def test_valid_path(self):
        path = TemporalPath([("s", "a", 1), ("a", "t", 3)])
        assert path.source == "s"
        assert path.target == "t"
        assert path.length == 2
        assert path.departure_time == 1
        assert path.arrival_time == 3
        assert path.duration == 2
        assert path.timestamps() == [1, 3]

    def test_empty_path_rejected(self):
        with pytest.raises(InvalidPathError):
            TemporalPath([])

    def test_disconnected_edges_rejected(self):
        with pytest.raises(InvalidPathError):
            TemporalPath([("s", "a", 1), ("b", "t", 2)])

    def test_non_ascending_timestamps_rejected(self):
        with pytest.raises(InvalidPathError):
            TemporalPath([("s", "a", 3), ("a", "t", 3)])
        with pytest.raises(InvalidPathError):
            TemporalPath([("s", "a", 3), ("a", "t", 2)])

    def test_accepts_temporal_edge_objects(self):
        path = TemporalPath([TemporalEdge("s", "t", 1)])
        assert path.length == 1


class TestProperties:
    def test_vertices_and_sets(self):
        path = TemporalPath([("s", "a", 1), ("a", "b", 2), ("b", "t", 4)])
        assert path.vertices() == ["s", "a", "b", "t"]
        assert path.vertex_set() == {"s", "a", "b", "t"}
        assert len(path.edge_set()) == 3
        assert path.contains_vertex("a")
        assert path.contains_edge(("a", "b", 2))
        assert not path.contains_edge(("a", "b", 3))

    def test_is_simple(self):
        simple = TemporalPath([("s", "a", 1), ("a", "t", 2)])
        assert simple.is_simple()
        looping = TemporalPath([("s", "a", 1), ("a", "s", 2), ("s", "t", 3)])
        assert not looping.is_simple()

    def test_within_interval(self):
        path = TemporalPath([("s", "a", 2), ("a", "t", 5)])
        assert path.within((2, 5))
        assert path.within((1, 9))
        assert not path.within((3, 9))
        assert not path.within((1, 4))

    def test_prefix_suffix_concatenate(self):
        path = TemporalPath([("s", "a", 1), ("a", "b", 2), ("b", "t", 4)])
        assert path.prefix(1).target == "a"
        assert path.suffix(1).source == "b"
        combined = path.prefix(2).concatenate(path.suffix(1))
        assert combined.edges == path.edges
        with pytest.raises(ValueError):
            path.prefix(0)
        with pytest.raises(ValueError):
            path.suffix(9)

    def test_concatenate_validates(self):
        front = TemporalPath([("s", "a", 5)])
        back = TemporalPath([("a", "t", 3)])
        with pytest.raises(InvalidPathError):
            front.concatenate(back)

    def test_exists_in(self, paper_graph):
        path = TemporalPath([("s", "b", 2), ("b", "t", 6)])
        assert path.exists_in(paper_graph)
        fake = TemporalPath([("s", "b", 2), ("b", "t", 9)])
        assert not fake.exists_in(paper_graph)

    def test_iteration_and_len(self):
        path = TemporalPath([("s", "a", 1), ("a", "t", 2)])
        assert len(path) == 2
        assert [e.timestamp for e in path] == [1, 2]


class TestHelpers:
    def test_is_temporal_path_helpers(self):
        assert is_temporal_path([("s", "a", 1), ("a", "t", 2)])
        assert not is_temporal_path([("s", "a", 2), ("a", "t", 1)])
        assert not is_temporal_path([("s", "a", 1)], interval=(5, 9))
        assert is_temporal_simple_path([("s", "a", 1), ("a", "t", 2)], interval=(1, 2))
        assert not is_temporal_simple_path([("s", "a", 1), ("a", "s", 2), ("s", "t", 3)])

    def test_path_from_vertices(self, paper_graph):
        path = path_from_vertices(paper_graph, ["s", "b", "t"], [2, 6])
        assert path.is_simple()
        with pytest.raises(InvalidPathError):
            path_from_vertices(paper_graph, ["s", "b", "t"], [2, 9])
        with pytest.raises(InvalidPathError):
            path_from_vertices(paper_graph, ["s", "b", "t"], [2])
