"""The TCP serving tier: protocol conformance, admission control, concurrency.

Three layers of coverage, all over a *real* socket (no transport mocks):

* **Protocol conformance** — framing edge cases (split/partial lines,
  oversized payloads, malformed JSON, unknown ops, mid-request
  disconnects, blank lines) each answer ``ok: false`` or close cleanly,
  and never kill the accept loop or leak the connection.
* **Admission control** — refuse-before-work on arrival-stamped
  deadlines, prompt refusals while the pool is saturated, the global
  in-flight bound, and round-robin fairness across clients.
* **Concurrency stress** — concurrent query clients race a writer client
  issuing ``ingest`` ops; every answer must be bit-identical to a serial
  replay of the ingest sequence at some epoch inside the answer's stamped
  ``[epoch_before, epoch_after]`` range (the exp17 oracle, across the
  network boundary).
"""

import asyncio
import json
import random
import socket
import threading
import time

import pytest

from repro.algorithms import get_algorithm
from repro.datasets.registry import get_dataset
from repro.graph.temporal_graph import TemporalGraph
from repro.queries.workload import generate_workload
from repro.service import (
    RequestCore,
    ServerThread,
    TspgClient,
    TspgService,
)
from repro.service.server import (
    LatencyHistogram,
    _FairScheduler,
    parse_request_line,
)


def small_graph() -> TemporalGraph:
    return TemporalGraph(
        edges=[("s", "b", 2), ("b", "t", 6), ("b", "c", 3), ("c", "t", 7),
               ("s", "c", 4), ("c", "b", 5)]
    )


def boot(service=None, **server_kwargs) -> ServerThread:
    """A running server over ``service`` (defaults to the small graph)."""
    if service is None:
        service = TspgService(small_graph())
    core = RequestCore(service, default_workers=2)
    server_kwargs.setdefault("workers", 2)
    return ServerThread(core, **server_kwargs)


class SlowService(TspgService):
    """A service whose every submit takes at least ``delay`` seconds.

    Saturation on demand: with ``workers=1`` one in-flight query occupies
    the whole pool for a predictable window, which is what the admission
    and fairness tests need.
    """

    def __init__(self, graph, delay: float, **kwargs) -> None:
        super().__init__(graph, **kwargs)
        self._delay = delay

    def submit(self, query, algorithm=None, **kwargs):
        time.sleep(self._delay)
        return super().submit(query, algorithm, **kwargs)


QUERY = {"source": "s", "target": "t", "begin": 2, "end": 7}


# ----------------------------------------------------------------------
# protocol conformance
# ----------------------------------------------------------------------


class TestProtocolConformance:
    def test_lockstep_round_trip_all_ops(self):
        with boot() as st:
            with TspgClient(st.address) as client:
                query = client.request(dict(QUERY))
                assert query["ok"] and query["op"] == "query"
                assert query["num_edges"] > 0
                assert query["epoch_before"] == query["epoch_after"]
                batch = client.request({"queries": [["s", "t", 2, 7], ["b", "t", 3, 7]]})
                assert batch["ok"] and batch["op"] == "batch"
                ingest = client.request({"op": "ingest", "edges": [["s", "z", 9]]})
                assert ingest["ok"] and ingest["appended"] == 1
                stats = client.request({"op": "stats"})
                assert stats["ok"] and stats["server"]["connections_active"] == 1
                assert client.quit() == {"ok": True, "op": "quit"}

    def test_request_split_across_many_writes(self):
        # A request arriving byte-dribbled over several TCP segments is
        # still one protocol line.
        with boot() as st:
            with TspgClient(st.address) as client:
                payload = (json.dumps(QUERY) + "\n").encode("utf-8")
                middle = len(payload) // 2
                client.send_raw(payload[:middle])
                time.sleep(0.05)
                client.send_raw(payload[middle:])
                response = client.recv()
                assert response["ok"] and response["num_edges"] > 0

    def test_two_requests_in_one_write(self):
        with boot() as st:
            with TspgClient(st.address) as client:
                line = json.dumps(QUERY) + "\n"
                client.send_raw((line + line).encode("utf-8"))
                first, second = client.recv(), client.recv()
                assert first["ok"] and second["ok"]
                assert second["cache_hit"] is True

    def test_malformed_requests_answer_ok_false_and_loop_survives(self):
        with boot() as st:
            with TspgClient(st.address) as client:
                for bad in (
                    b"definitely not json\n",
                    b"[1, 2, 3]\n",            # JSON, but not an object
                    b'{"op": "unknown-op"}\n',
                    b'{"source": "s", "target": "t"}\n',
                    b'{"queries": [], "op": "batch"}\n',
                    b"\xff\xfe\n",              # not UTF-8
                ):
                    client.send_raw(bad)
                    response = client.recv()
                    assert response["ok"] is False
                    assert response.get("error")
                # The session is still alive and serving.
                assert client.request(dict(QUERY))["ok"] is True
                stats = client.request({"op": "stats"})
                # Unparseable lines count as protocol errors; well-formed
                # lines with bad request content (unknown op, missing
                # fields, empty batch) answer ok:false without being
                # framing errors.
                assert stats["server"]["protocol_errors"] == 3

    def test_blank_lines_and_comments_answer_nothing(self):
        with boot() as st:
            with TspgClient(st.address) as client:
                client.send_raw(b"\n   \n# just a comment\n")
                client.send(dict(QUERY))
                response = client.recv()  # the only response on the wire
                assert response["ok"] is True and response["op"] == "query"

    def test_oversized_line_answers_error_and_closes_cleanly(self):
        with boot(max_line_bytes=512) as st:
            with TspgClient(st.address) as client:
                client.send_raw(b'{"source": "' + b"x" * 2048 + b'"}\n')
                response = client.recv()
                assert response["ok"] is False
                assert "512" in response["error"]
                with pytest.raises(ConnectionError):
                    client.recv()
            # The refusal is per-connection: the server still accepts.
            with TspgClient(st.address) as client:
                assert client.request(dict(QUERY))["ok"] is True

    def test_mid_request_disconnect_does_not_kill_the_server(self):
        with boot() as st:
            client = TspgClient(st.address)
            client.send_raw(b'{"source": "s", "ta')  # torn frame, no newline
            client.close()
            deadline = time.monotonic() + 5
            with TspgClient(st.address) as second:
                assert second.request(dict(QUERY))["ok"] is True
                while time.monotonic() < deadline:
                    stats = second.request({"op": "stats"})["server"]
                    if stats["connections_active"] == 1:
                        break
                    time.sleep(0.02)
                # The torn connection was reaped, not leaked, and the torn
                # fragment produced no response at all.
                assert stats["connections_active"] == 1
                assert stats["connections_opened"] == 2

    def test_quit_ack_follows_pipelined_responses_in_order(self):
        with boot() as st:
            with TspgClient(st.address) as client:
                responses = client.request_pipelined(
                    [dict(QUERY), {"queries": [["s", "t", 2, 7]]}, {"op": "quit"}]
                )
                assert [r["op"] for r in responses] == ["query", "batch", "quit"]
                assert all(r["ok"] for r in responses)
                with pytest.raises(ConnectionError):
                    client.recv()  # the server closed after the ack

    def test_eof_without_quit_closes_cleanly(self):
        with boot() as st:
            client = TspgClient(st.address)
            assert client.request(dict(QUERY))["ok"] is True
            client.close()
            with TspgClient(st.address) as second:
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    stats = second.request({"op": "stats"})["server"]
                    if stats["connections_active"] == 1:
                        break
                    time.sleep(0.02)
                assert stats["connections_active"] == 1

    def test_stats_surface_shapes(self):
        with boot() as st:
            with TspgClient(st.address) as client:
                client.request(dict(QUERY))
                stats = client.request({"op": "stats"})
                assert stats["cache"]["misses"] >= 1
                assert stats["index"]
                assert stats["epoch"] >= 0
                server = stats["server"]
                for key in (
                    "connections_opened", "connections_active",
                    "requests_admitted", "responses_sent", "refused_deadline",
                    "refused_overload", "protocol_errors", "queue_depth",
                    "inflight", "latency_ms",
                ):
                    assert key in server
                histogram = server["latency_ms"]["query"]
                assert histogram["count"] == 1
                assert histogram["p99_ms"] >= 0


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------


class TestAdmissionControl:
    def test_expired_deadline_is_refused_before_any_work(self):
        with boot() as st:
            with TspgClient(st.address) as client:
                response = client.request(dict(QUERY, deadline_ms=-1))
                assert response["ok"] is True
                assert response["refused"] is True
                assert response["timed_out"] is True
                assert response["num_edges"] == 0
                stats = client.request({"op": "stats"})
                # Refuse-before-work: the service never saw the query (no
                # cache traffic) and no query op was admitted.
                assert stats["server"]["refused_deadline"] == 1
                assert "query" not in stats["server"]["latency_ms"]
                assert stats["cache"]["misses"] == 0

    def test_deadline_expiring_in_queue_is_refused_promptly(self):
        service = SlowService(small_graph(), delay=0.4, cache_size=0)
        with boot(service, workers=1) as st:
            with TspgClient(st.address) as occupant, TspgClient(st.address) as victim:
                occupant.send(dict(QUERY))  # occupies the only worker
                time.sleep(0.1)
                started = time.monotonic()
                response = victim.request(dict(QUERY, deadline_ms=50))
                elapsed = time.monotonic() - started
                assert response["refused"] is True and response["timed_out"] is True
                # Refused at deadline expiry (~50ms), not when the worker
                # freed up (~300ms later).
                assert elapsed < 0.3
                assert occupant.recv()["ok"] is True

    def test_overload_refusals_at_the_inflight_bound(self):
        service = SlowService(small_graph(), delay=0.2, cache_size=0)
        with boot(service, workers=1, max_inflight=2) as st:
            with TspgClient(st.address) as client:
                responses = client.request_pipelined([dict(QUERY)] * 6)
                served = [r for r in responses if r["ok"]]
                refused = [r for r in responses if not r["ok"]]
                assert len(served) == 2
                assert len(refused) == 4
                for response in refused:
                    assert response["refused"] is True
                    assert response["retryable"] is True
                    assert "overloaded" in response["error"]
                # Load shed, session alive: the next request is served.
                assert client.request(dict(QUERY))["ok"] is True
                stats = client.request({"op": "stats"})
                assert stats["server"]["refused_overload"] == 4

    def test_fair_scheduler_rotates_across_sessions(self):
        # One firehose session queueing three waiters, one polite session
        # queueing three: grants must alternate x, y, x, y, ... — never
        # drain x's backlog first.
        async def main():
            scheduler = _FairScheduler(1)
            await scheduler.acquire("head")  # take the only permit
            order = []

            async def waiter(key, index):
                await scheduler.acquire(key)
                order.append((key, index))
                scheduler.release()

            tasks = [asyncio.create_task(waiter("x", i)) for i in range(3)]
            await asyncio.sleep(0)  # let all of x queue first
            tasks += [asyncio.create_task(waiter("y", i)) for i in range(3)]
            await asyncio.sleep(0.02)
            scheduler.release()
            await asyncio.gather(*tasks)
            return order

        order = asyncio.run(main())
        assert order == [
            ("x", 0), ("y", 0), ("x", 1), ("y", 1), ("x", 2), ("y", 2),
        ]

    def test_fair_scheduler_releases_slot_granted_to_cancelled_waiter(self):
        async def main():
            scheduler = _FairScheduler(1)
            await scheduler.acquire("a")
            waiter = asyncio.create_task(scheduler.acquire("b"))
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            scheduler.release()
            # The cancelled waiter must not have swallowed the permit.
            await asyncio.wait_for(scheduler.acquire("c"), timeout=1)

        asyncio.run(main())

    def test_firehose_client_cannot_starve_a_polite_one(self):
        service = SlowService(small_graph(), delay=0.05, cache_size=0)
        with boot(service, workers=1) as st:
            with TspgClient(st.address) as firehose, TspgClient(st.address) as polite:
                firehose.send_raw(
                    b"".join([(json.dumps(QUERY) + "\n").encode()] * 8)
                )
                time.sleep(0.06)  # firehose backlog is in place
                started = time.monotonic()
                assert polite.request(dict(QUERY))["ok"] is True
                polite_wait = time.monotonic() - started
                # Round-robin: the polite client waits out at most the
                # running request plus its own turn, not the 8-deep
                # firehose backlog (~0.4s).
                assert polite_wait < 0.25
                for _ in range(8):
                    assert firehose.recv()["ok"] is True


# ----------------------------------------------------------------------
# concurrency stress: the exp17 oracle across the network boundary
# ----------------------------------------------------------------------


class TestConcurrentIngestOracle:
    def test_concurrent_answers_match_a_serial_replay_at_their_epoch(self):
        dataset = get_dataset("D1")
        graph = dataset.load()
        base_edges = list(graph.edge_tuples())
        queries = list(
            generate_workload(
                graph, num_queries=6, theta=dataset.default_theta, seed=3
            )
        )
        vertices = list(graph.vertices())
        rng = random.Random(41)
        timestamps = sorted({t for _, _, t in base_edges})
        lo, hi = timestamps[0], timestamps[-1]
        batches = []
        for _ in range(5):
            batch = []
            for _ in range(3):
                u, v = rng.sample(vertices, 2)
                batch.append((u, v, rng.randint(lo, hi)))
            batches.append(batch)

        service = TspgService(graph, cache_size=0)
        records = []
        errors = []
        with boot(service) as st:
            address = st.address

            def query_client():
                try:
                    with TspgClient(address) as client:
                        for _ in range(3):
                            for query in queries:
                                response = client.request({
                                    "source": str(query.source),
                                    "target": str(query.target),
                                    "begin": query.interval.begin,
                                    "end": query.interval.end,
                                    "include_edges": True,
                                })
                                assert response["ok"], response
                                records.append((query, response))
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            def writer_client():
                try:
                    with TspgClient(address) as client:
                        for batch in batches:
                            response = client.request({
                                "op": "ingest",
                                "edges": [list(edge) for edge in batch],
                            })
                            assert response["ok"], response
                            time.sleep(0.01)
                except Exception as exc:
                    errors.append(exc)

            base_epoch = graph.epoch
            threads = [threading.Thread(target=query_client) for _ in range(3)]
            threads.append(threading.Thread(target=writer_client))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors, errors

        # Serial replay: answers at every ingest prefix k = 0 .. len(batches).
        algorithm = get_algorithm("VUG")
        replay_graph = TemporalGraph(edges=base_edges)
        replays = []
        for k in range(len(batches) + 1):
            answers = {}
            for query in queries:
                outcome = algorithm.run(
                    replay_graph, query.source, query.target, query.interval
                )
                answers[query] = (
                    frozenset(outcome.result.edges),
                    outcome.result.num_vertices,
                )
            replays.append(answers)
            if k < len(batches):
                replay_graph.append_edges(batches[k])

        assert len(records) == 3 * 3 * len(queries)
        for query, response in records:
            served = (
                frozenset(tuple(edge) for edge in response["edges"]),
                response["num_vertices"],
            )
            k_lo = response["epoch_before"] - base_epoch
            k_hi = response["epoch_after"] - base_epoch
            assert 0 <= k_lo <= k_hi <= len(batches)
            assert any(
                served == replays[k][query] for k in range(k_lo, k_hi + 1)
            ), (
                f"answer for {query} (epochs {k_lo}..{k_hi}) matches no "
                f"serial replay prefix"
            )


# ----------------------------------------------------------------------
# the CLI transport, end to end
# ----------------------------------------------------------------------


class TestCliListen:
    def test_tspg_serve_listen_round_trip_and_clean_shutdown(self):
        import os
        import re
        import signal
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--dataset", "D1", "--executor", "threads",
                "--listen", "127.0.0.1:0",
            ],
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", banner)
            assert match, f"no listen banner in {banner!r}"
            address = (match.group(1), int(match.group(2)))
            with TspgClient(address) as client:
                query = client.request(
                    {"source": "3", "target": "11", "begin": 5, "end": 40}
                )
                assert query["ok"] and query["num_edges"] > 0
                ingest = client.request(
                    {"op": "ingest", "edges": [["3", "4242", 55]]}
                )
                assert ingest["ok"] and ingest["appended"] == 1
                stats = client.request({"op": "stats"})
                assert stats["ok"]
                assert stats["server"]["connections_active"] == 1
                assert client.quit() == {"ok": True, "op": "quit"}
            process.send_signal(signal.SIGINT)
            code = process.wait(timeout=30)
            summary = process.stderr.read()
            assert code == 0
            assert "served 3 responses to 1 connections" in summary
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


# ----------------------------------------------------------------------
# unit coverage of the protocol helpers
# ----------------------------------------------------------------------


class TestHelpers:
    def test_parse_request_line_kinds(self):
        assert parse_request_line("") == ("blank", None)
        assert parse_request_line("   \n") == ("blank", None)
        assert parse_request_line("# note") == ("blank", None)
        assert parse_request_line('{"op": "quit"}') == ("quit", {"op": "quit"})
        kind, request = parse_request_line('{"op": "stats"}')
        assert kind == "request" and request == {"op": "stats"}
        with pytest.raises(ValueError):
            parse_request_line("nope")
        with pytest.raises(ValueError):
            parse_request_line("[1, 2]")

    def test_latency_histogram_quantiles(self):
        histogram = LatencyHistogram()
        assert histogram.summary() == {"count": 0}
        for ms in (0.2, 0.4, 0.6, 3.0, 40.0):
            histogram.record(ms)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["max_ms"] == 40.0
        assert summary["p50_ms"] <= summary["p99_ms"] <= 50.0
        assert histogram.quantile(1.0) == 40.0

    def test_request_core_stdio_line_handling(self):
        core = RequestCore(TspgService(small_graph()))
        assert core.handle_line("\n") == (None, False)
        assert core.handle_line("# comment\n") == (None, False)
        response, over = core.handle_line('{"op": "quit"}\n')
        assert response == {"ok": True, "op": "quit"} and over is True
        response, over = core.handle_line("not json\n")
        assert response["ok"] is False and over is False
        response, over = core.handle_line(json.dumps(QUERY) + "\n")
        assert response["ok"] is True and over is False
        assert core.stats.protocol_errors == 1
