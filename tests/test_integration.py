"""End-to-end integration tests: all algorithms agree on realistic workloads."""

from __future__ import annotations

import pytest

from repro.algorithms import PAPER_ALGORITHMS, get_algorithm
from repro.analysis.comparison import compare_algorithms
from repro.datasets.registry import get_dataset
from repro.graph.generators import (
    bursty_email_graph,
    community_temporal_graph,
    layered_temporal_graph,
    preferential_attachment_temporal_graph,
)
from repro.queries.workload import generate_workload


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize(
        "graph_factory, theta",
        [
            (lambda: bursty_email_graph(num_vertices=40, num_bursts=6, edges_per_burst=30, seed=1), 6),
            (lambda: community_temporal_graph(num_communities=3, community_size=8,
                                              intra_edges_per_community=40, inter_edges=15,
                                              num_timestamps=30, seed=2), 8),
            (lambda: preferential_attachment_temporal_graph(60, 300, num_timestamps=40, seed=3), 8),
        ],
    )
    def test_all_paper_algorithms_agree(self, graph_factory, theta):
        graph = graph_factory()
        workload = generate_workload(graph, num_queries=5, theta=theta, seed=9)
        algorithms = [get_algorithm(name) for name in PAPER_ALGORITHMS]
        report = compare_algorithms(algorithms, graph, list(workload))
        assert report.all_agree, "\n".join(report.mismatches)

    def test_dataset_d1_small_workload_agreement(self):
        spec = get_dataset("D1")
        graph = spec.load()
        workload = generate_workload(graph, num_queries=4, theta=6, seed=3)
        algorithms = [get_algorithm("VUG"), get_algorithm("EPtgTSG"), get_algorithm("VUG-noTight")]
        report = compare_algorithms(algorithms, graph, list(workload))
        assert report.all_agree, "\n".join(report.mismatches)

    def test_layered_graph_with_many_paths(self):
        graph = layered_temporal_graph(num_layers=5, layer_size=4,
                                       edges_per_layer_pair=10, timestamps_per_layer=2, seed=7)
        interval = graph.time_interval().as_tuple()
        vug = get_algorithm("VUG").run(graph, "S", "T", interval)
        baseline = get_algorithm("EPtgTSG").run(graph, "S", "T", interval)
        assert vug.result.same_members(baseline.result)
        # The layered construction guarantees a rich path graph.
        assert vug.result.num_edges > 20
