"""Outbreak control: trace transmission routes through a contact network.

The paper's first motivating application: model movements of individuals
between locations as a temporal graph and generate the temporal simple path
graph from the outbreak source to a protected area.  The resulting subgraph
shows every possible transmission route within the incubation window, so
health authorities can rank locations by how many routes pass through them
and prioritise containment.

Run with::

    python examples/outbreak_control.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro import TemporalGraph, generate_tspg, generate_tspg_report
from repro.paths import count_temporal_simple_paths


def build_contact_network(seed: int = 20) -> TemporalGraph:
    """Synthetic movement network: locations connected by timestamped visits.

    Vertices are locations (market, school, clinic, ...); an edge (a, b, day)
    means an individual who was at ``a`` moved to ``b`` on ``day``.
    """
    rng = random.Random(seed)
    districts = ["market", "school", "clinic", "station", "mall", "office",
                 "stadium", "port", "farm", "temple"]
    neighbourhood = [f"house_{i}" for i in range(30)]
    locations = districts + neighbourhood
    graph = TemporalGraph(vertices=locations)

    # Commuting traffic: houses <-> districts throughout a 30-day horizon.
    for day in range(1, 31):
        for _ in range(18):
            house = rng.choice(neighbourhood)
            place = rng.choice(districts)
            if rng.random() < 0.5:
                graph.add_edge(house, place, day)
            else:
                graph.add_edge(place, house, day)
        # District-to-district movement (markets feed stations, etc.).
        for _ in range(6):
            a, b = rng.sample(districts, 2)
            graph.add_edge(a, b, day)
    # A superspreader event at the market on day 5 radiating outward.
    for day in (5, 6, 7):
        for place in ("school", "station", "mall", "office"):
            graph.add_edge("market", place, day)
    return graph


def main() -> None:
    network = build_contact_network()
    outbreak_source = "market"
    protected_area = "clinic"
    incubation_window = (5, 15)  # days

    print(
        f"Contact network: {network.num_vertices} locations, "
        f"{network.num_edges} recorded movements"
    )
    print(
        f"Query: transmission routes from {outbreak_source!r} to {protected_area!r} "
        f"within days {incubation_window}\n"
    )

    report = generate_tspg_report(network, outbreak_source, protected_area, incubation_window)
    tspg = report.result
    print(
        f"Transmission subgraph: {tspg.num_vertices} locations and "
        f"{tspg.num_edges} movements are on at least one transmission route"
    )
    num_routes = count_temporal_simple_paths(
        tspg.to_temporal_graph(), outbreak_source, protected_area, incubation_window, cap=100_000
    )
    print(f"Distinct transmission routes represented: {num_routes}\n")

    # Rank intermediate locations by how many route edges touch them — the
    # "critical nodes" containment would target first.
    touch_count: Counter = Counter()
    for u, v, _ in tspg.edges:
        touch_count[u] += 1
        touch_count[v] += 1
    touch_count.pop(outbreak_source, None)
    touch_count.pop(protected_area, None)
    print("Locations to prioritise for containment (by route involvement):")
    for location, count in touch_count.most_common(5):
        print(f"  {location:<12} appears on {count} route edges")

    print("\nSearch-space reduction achieved by VUG's upper bounds:")
    print(f"  original movements:        {network.num_edges}")
    print(f"  quick upper bound (Gq):    {report.upper_bound_quick.num_edges}")
    print(f"  tight upper bound (Gt):    {report.upper_bound_tight.num_edges}")
    print(f"  exact transmission edges:  {tspg.num_edges}")


if __name__ == "__main__":
    main()
