"""Quickstart: build a temporal graph and generate a temporal simple path graph.

Reproduces the paper's running example (Fig. 1): a small directed temporal
graph, the query ``(s, t, [2, 7])``, and the resulting ``tspG`` containing the
two temporal simple paths ``s→b→t`` and ``s→b→c→t``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    TemporalGraph,
    generate_tspg,
    generate_tspg_report,
    enumerate_temporal_simple_paths,
)


def build_running_example() -> TemporalGraph:
    """The directed temporal graph of Fig. 1(a)."""
    return TemporalGraph(
        edges=[
            ("s", "b", 2), ("s", "a", 3), ("s", "d", 4),
            ("b", "c", 3), ("b", "d", 3), ("b", "f", 5), ("b", "t", 6),
            ("a", "d", 5),
            ("c", "f", 4), ("c", "t", 7),
            ("d", "t", 2),
            ("f", "e", 5), ("f", "b", 5),
            ("e", "c", 6),
        ]
    )


def main() -> None:
    graph = build_running_example()
    source, target, interval = "s", "t", (2, 7)

    print(f"Temporal graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"Query: tspG from {source!r} to {target!r} within {interval}\n")

    # One-call public API: the exact temporal simple path graph.
    tspg = generate_tspg(graph, source, target, interval)
    print(f"tspG has {tspg.num_vertices} vertices and {tspg.num_edges} edges:")
    for u, v, t in sorted(tspg.edges, key=lambda e: e[2]):
        print(f"  {u} -> {v} @ {t}")

    # The paths it represents (enumerated here only for illustration; the
    # whole point of VUG is that generating the tspG does not require this).
    print("\nTemporal simple paths contained in the tspG:")
    for path in enumerate_temporal_simple_paths(graph, source, target, interval):
        hops = " -> ".join(str(v) for v in path.vertices())
        print(f"  {hops}  (timestamps {path.timestamps()})")

    # The full report exposes the intermediate upper-bound graphs and the
    # per-phase timings used throughout the paper's experiments.
    report = generate_tspg_report(graph, source, target, interval)
    print("\nVUG pipeline summary:")
    print(f"  quick upper-bound graph Gq: {report.upper_bound_quick.num_edges} edges")
    print(f"  tight upper-bound graph Gt: {report.upper_bound_tight.num_edges} edges")
    print(f"  exact tspG:                 {report.result.num_edges} edges")
    for phase, seconds in report.timings.as_dict().items():
        print(f"  {phase:<10} {seconds * 1000:.3f} ms")


if __name__ == "__main__":
    main()
