"""Trend detection: trace how information flows from a source to a target user.

The paper's fourth application: interactions in a social network (retweets,
comments, mentions) form a temporal graph; the temporal simple path graph from
an information source to a target user within a time window captures every
dissemination route and highlights the key influencers that sit on many of
them — without enumerating the routes explicitly.

Run with::

    python examples/trend_detection.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro import generate_tspg, TemporalGraph
from repro.graph.statistics import compute_statistics
from repro.paths import count_temporal_simple_paths_capped


def build_social_interactions(seed: int = 33) -> TemporalGraph:
    """Synthetic retweet/mention cascade over a 48-hour horizon.

    ``origin`` posts at hour 1; a few influencer accounts amplify it early and
    ordinary users pass it along afterwards.  Timestamps are hours.
    """
    rng = random.Random(seed)
    influencers = [f"influencer_{i}" for i in range(5)]
    users = [f"user_{i:03d}" for i in range(120)]
    everyone = ["origin"] + influencers + users
    graph = TemporalGraph(vertices=everyone)

    # The origin seeds the influencers within the first hours.
    for index, influencer in enumerate(influencers):
        graph.add_edge("origin", influencer, 1 + index)
    # Influencers amplify to their audiences over the first day.
    for influencer in influencers:
        for _ in range(25):
            graph.add_edge(influencer, rng.choice(users), rng.randrange(2, 25))
    # Ordinary users reshare among themselves for the rest of the horizon.
    for _ in range(900):
        a, b = rng.sample(users, 2)
        graph.add_edge(a, b, rng.randrange(3, 49))
    # Some back-chatter towards influencers and the origin (replies).
    for _ in range(80):
        graph.add_edge(rng.choice(users), rng.choice(influencers + ["origin"]), rng.randrange(5, 49))
    return graph


def main() -> None:
    network = build_social_interactions()
    stats = compute_statistics(network)
    print(
        f"Interaction network: {stats.num_vertices} accounts, {stats.num_edges} interactions, "
        f"{stats.num_timestamps} distinct hours"
    )

    source = "origin"
    target = "user_042"
    window = (1, 36)
    print(f"\nQuery: information flow from {source!r} to {target!r} within hours {window}")

    flow = generate_tspg(network, source, target, window)
    if flow.is_empty:
        print("No dissemination route exists in this window.")
        return

    count = count_temporal_simple_paths_capped(
        flow.to_temporal_graph(), source, target, window, cap=1_000_000
    )
    routes = f">{count.count}" if count.capped else str(count.count)
    print(
        f"Flow graph: {flow.num_vertices} accounts and {flow.num_edges} interactions "
        f"represent {routes} dissemination routes"
    )

    # Key influencers: accounts on the most flow-graph interactions.
    involvement: Counter = Counter()
    for u, v, _ in flow.edges:
        involvement[u] += 1
        involvement[v] += 1
    involvement.pop(source, None)
    involvement.pop(target, None)
    print("\nKey accounts on the dissemination routes:")
    for account, score in involvement.most_common(5):
        print(f"  {account:<16} on {score} flow interactions")

    share = 100.0 * flow.num_edges / network.num_edges
    print(
        f"\nOnly {share:.1f}% of all interactions participate in the flow — "
        "the tspG isolates them in one query."
    )


if __name__ == "__main__":
    main()
