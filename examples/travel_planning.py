"""Travel planning: every transfer option between two stops in a time window.

The paper's third application and its Fig. 13 case study: model a public
transit timetable as a temporal graph (stops are vertices, scheduled hops are
timestamped edges) and generate the temporal simple path graph between an
origin and a destination within the rider's time window.  The result is the
complete set of itineraries — including fallbacks if an earlier connection is
missed — rendered as one compact subgraph.

Run with::

    python examples/travel_planning.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import generate_tspg_report
from repro.datasets.transit import (
    CASE_STUDY_QUERY,
    describe_transfer_options,
    generate_transit_network,
    hhmm,
)
from repro.paths import enumerate_temporal_simple_paths


def main() -> None:
    origin, destination, window = CASE_STUDY_QUERY
    network = generate_transit_network()
    print(
        f"Synthetic SFMTA-like timetable: {network.num_vertices} stops, "
        f"{network.num_edges} scheduled hops"
    )
    print(
        f"Query: all itineraries from {origin!r} to {destination!r} between "
        f"{hhmm(window[0])} and {hhmm(window[1])}\n"
    )

    report = generate_tspg_report(network, origin, destination, window)
    options = report.result
    print(
        f"Transfer-option subgraph: {options.num_vertices} stops, "
        f"{options.num_edges} scheduled hops (out of {network.num_edges})"
    )
    print("Hops that appear in at least one feasible itinerary:")
    for line in describe_transfer_options(options):
        print(f"  {line}")

    # Group the concrete itineraries by departure time so a rider can see
    # exactly which options remain after missing an earlier bus.
    itineraries = list(
        enumerate_temporal_simple_paths(
            options.to_temporal_graph(), origin, destination, window
        )
    )
    by_departure = defaultdict(list)
    for itinerary in itineraries:
        by_departure[itinerary.departure_time].append(itinerary)

    print(f"\n{len(itineraries)} concrete itineraries, grouped by departure time:")
    for departure in sorted(by_departure):
        group = by_departure[departure]
        earliest_arrival = min(i.arrival_time for i in group)
        print(
            f"  depart {hhmm(departure)}: {len(group)} option(s), "
            f"earliest arrival {hhmm(earliest_arrival)}"
        )
        example = min(group, key=lambda i: (i.arrival_time, i.length))
        hops = " -> ".join(str(stop) for stop in example.vertices())
        print(f"      e.g. {hops}")

    print("\nVUG search-space reduction for this query:")
    print(f"  timetable hops:            {network.num_edges}")
    print(f"  quick upper bound (Gq):    {report.upper_bound_quick.num_edges}")
    print(f"  tight upper bound (Gt):    {report.upper_bound_tight.num_edges}")
    print(f"  hops in the final answer:  {options.num_edges}")


if __name__ == "__main__":
    main()
