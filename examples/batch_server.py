"""Batch serving scenario: one shared graph, a stream of repeat-heavy queries.

Models the deployment the service layer is built for: a long-lived process
owns one temporal graph (here the transit network of the paper's case study)
and answers bursts of path-graph queries from many clients.  Real query
streams are repeat-heavy — popular origin/destination pairs recur — so the
service's LRU cache turns most of the traffic into dictionary lookups, and
the worker pool soaks up the cold remainder.

Run with::

    python examples/batch_server.py
"""

from __future__ import annotations

import random

from repro.datasets.transit import generate_transit_network
from repro.queries.query import TspgQuery
from repro.queries.workload import generate_workload
from repro.service import TspgService


def simulated_traffic(base: list, num_requests: int, seed: int = 11) -> list:
    """A repeat-heavy request stream: 80% of traffic hits 20% of the queries."""
    rng = random.Random(seed)
    hot = base[: max(1, len(base) // 5)]
    stream = []
    for _ in range(num_requests):
        pool = hot if rng.random() < 0.8 else base
        stream.append(rng.choice(pool))
    return stream


def main() -> None:
    network = generate_transit_network()
    print(
        f"Transit network: {network.num_vertices} stops, "
        f"{network.num_edges} scheduled trips"
    )

    service = TspgService(network, cache_size=256)
    print(f"Service ready; indices warmed once: {service.index_stats}\n")

    # Distinct origin/destination/interval combinations clients ask about.
    catalogue = [
        TspgQuery(q.source, q.target, q.interval)
        for q in generate_workload(network, num_queries=25, theta=8, seed=3)
    ]

    # Three bursts of traffic over the same catalogue.
    for burst_no in range(1, 4):
        stream = simulated_traffic(catalogue, num_requests=100, seed=burst_no)
        report = service.run_batch(stream, max_workers=4, time_budget_seconds=30.0)
        print(
            f"burst {burst_no}: {report.num_completed}/{report.num_queries} answered "
            f"in {report.wall_seconds:.4f}s "
            f"({report.queries_per_second:,.0f} queries/s, "
            f"{report.num_cache_hits} cache hits)"
        )

    stats = service.cache_stats()
    print(
        f"\ncache after 300 requests: {stats.hits} hits / {stats.misses} misses "
        f"(hit rate {stats.hit_rate:.0%}, {stats.size} entries)"
    )

    # A single hot query is now effectively free.
    hot_query = catalogue[0]
    outcome = service.submit(hot_query)
    print(
        f"hot query {hot_query.as_tuple()} served in "
        f"{outcome.elapsed_seconds * 1e6:.1f} µs "
        f"(cache_hit={outcome.extras.get('cache_hit', False)}); "
        f"tspG has {outcome.result.num_vertices} stops"
    )


if __name__ == "__main__":
    main()
