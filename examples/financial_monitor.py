"""Financial monitoring: surface suspicious cyclic money flows.

The paper's second application: in a transaction network, money-laundering
patterns often appear as cyclic transaction sequences with ascending
timestamps inside a tight window.  A transaction ``e(t, s, τ)`` closes such a
cycle exactly when a temporal simple path from ``s`` to ``t`` exists within
the window — and the temporal simple path graph *shows* every intermediate
account and transfer participating in the flow.

Run with::

    python examples/financial_monitor.py
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro import TemporalGraph, generate_tspg


def build_transaction_network(seed: int = 11) -> TemporalGraph:
    """Synthetic account-to-account transfers over a 60-tick horizon.

    A laundering ring (acct_90x accounts) routes money from ``acct_900`` back
    to itself through several mules with ascending timestamps; the rest of the
    network is ordinary background traffic.
    """
    rng = random.Random(seed)
    accounts = [f"acct_{i:03d}" for i in range(60)]
    graph = TemporalGraph(vertices=accounts)
    for _ in range(900):
        payer, payee = rng.sample(accounts, 2)
        graph.add_edge(payer, payee, rng.randrange(1, 61))

    ring = ["acct_900", "acct_901", "acct_902", "acct_903", "acct_904"]
    for account in ring:
        graph.add_vertex(account)
    # Structured layering: fan out from the source, converge on a collector,
    # then the collector pays the source back (the closing transaction).
    graph.add_edge("acct_900", "acct_901", 10)
    graph.add_edge("acct_900", "acct_902", 11)
    graph.add_edge("acct_901", "acct_903", 13)
    graph.add_edge("acct_902", "acct_903", 14)
    graph.add_edge("acct_903", "acct_904", 16)
    graph.add_edge("acct_904", "acct_900", 18)  # closes the cycle
    # A couple of ordinary-looking transfers out of the ring as camouflage.
    for account in ring:
        graph.add_edge(account, rng.choice(accounts), rng.randrange(1, 61))
    return graph


def detect_suspicious_cycles(
    graph: TemporalGraph, window: int = 10
) -> List[Tuple[str, str, int, object]]:
    """Flag closing transactions whose reverse direction is temporally connected.

    For every transaction ``e(payer, payee, τ)`` we ask whether a temporal
    simple path from ``payee`` back to ``payer`` exists within the preceding
    ``window`` ticks; if so, the transaction closes a temporal cycle and the
    associated ``tspG`` is returned as evidence.
    """
    findings = []
    for payer, payee, timestamp in sorted(graph.edge_tuples(), key=lambda e: e[2]):
        begin = max(1, timestamp - window)
        interval = (begin, timestamp - 1)
        if interval[0] > interval[1]:
            continue
        evidence = generate_tspg(graph, payee, payer, interval)
        if not evidence.is_empty:
            findings.append((payer, payee, timestamp, evidence))
    return findings


def main() -> None:
    network = build_transaction_network()
    print(
        f"Transaction network: {network.num_vertices} accounts, "
        f"{network.num_edges} transfers"
    )

    findings = detect_suspicious_cycles(network, window=10)
    print(f"\nClosing transactions embedded in a temporal cycle: {len(findings)}")

    ring_findings = [f for f in findings if f[0].startswith("acct_90")]
    print(f"Of which involve the planted laundering ring: {len(ring_findings)}\n")

    # Show the richest piece of evidence (largest flow subgraph).
    payer, payee, timestamp, evidence = max(findings, key=lambda f: f[3].num_edges)
    print(
        f"Most intricate flow: closing transfer {payer} -> {payee} at t={timestamp}, "
        f"supported by {evidence.num_edges} transfers across {evidence.num_vertices} accounts:"
    )
    for u, v, t in sorted(evidence.edges, key=lambda e: e[2]):
        print(f"  t={t:>2}  {u} -> {v}")


if __name__ == "__main__":
    main()
