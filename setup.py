"""Setuptools entry point.

The pyproject.toml carries all metadata; this shim exists so editable installs
(`pip install -e .`) work in offline environments whose setuptools predates
bundled PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
