"""Brute-force reference ("oracle") implementation of the ``tspG``.

The oracle constructs the temporal simple path graph directly from its
definition — enumerate every temporal simple path and union the members — on
the *original* graph, without any reduction.  It is deliberately simple (and
exponential) so it can serve as the ground truth in unit, integration and
property-based tests that validate VUG and every baseline.
"""

from __future__ import annotations

from typing import Optional

from ..core.result import PathGraph
from ..graph.edge import Vertex, as_interval
from ..graph.temporal_graph import TemporalGraph
from ..paths.enumerate import collect_path_graph_members


def brute_force_tspg(
    graph: TemporalGraph,
    source: Vertex,
    target: Vertex,
    interval,
    max_paths: Optional[int] = None,
) -> PathGraph:
    """Compute the exact ``tspG`` straight from Definition 2.

    Parameters
    ----------
    max_paths:
        Optional path budget forwarded to the enumerator; only used to protect
        tests against pathological inputs.
    """
    window = as_interval(interval)
    vertices, edges, _ = collect_path_graph_members(
        graph, source, target, window, max_paths=max_paths
    )
    return PathGraph.from_members(source, target, window, vertices, edges)
