"""Analysis utilities: oracle, upper-bound ratios, correctness checks, space accounting."""

from .oracle import brute_force_tspg
from .upper_bound_ratio import (
    UPPER_BOUND_METHODS,
    UpperBoundObservation,
    UpperBoundSummary,
    upper_bound_ratio_for_query,
    upper_bound_ratios_for_workload,
)
from .comparison import (
    ComparisonReport,
    ResultMismatchError,
    assert_same_result,
    compare_algorithms,
    describe_difference,
    verify_containment_chain,
)
from .memory import (
    SpaceProfile,
    collect_space_profiles,
    measure_deep_size,
    peak_rss_bytes,
    rss_bytes,
)

__all__ = [
    "brute_force_tspg",
    "UPPER_BOUND_METHODS",
    "UpperBoundObservation",
    "UpperBoundSummary",
    "upper_bound_ratio_for_query",
    "upper_bound_ratios_for_workload",
    "ComparisonReport",
    "ResultMismatchError",
    "assert_same_result",
    "compare_algorithms",
    "describe_difference",
    "verify_containment_chain",
    "SpaceProfile",
    "collect_space_profiles",
    "measure_deep_size",
    "peak_rss_bytes",
    "rss_bytes",
]
