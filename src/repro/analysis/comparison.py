"""Correctness cross-checks between algorithms.

Every algorithm in the library must return the same ``tspG`` for the same
query.  These helpers compare results, explain discrepancies, and verify the
containment chain of upper-bound graphs — they back both the test-suite and
the benchmark harness (which refuses to time algorithms that disagree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines.interface import TspgAlgorithm
from ..core.result import PathGraph
from ..graph.edge import Vertex, as_interval
from ..graph.temporal_graph import TemporalGraph
from ..graph.validation import is_subgraph
from ..queries.query import TspgQuery


class ResultMismatchError(AssertionError):
    """Raised when two algorithms disagree on a query's ``tspG``."""


@dataclass
class ComparisonReport:
    """Outcome of comparing several algorithms over several queries."""

    num_queries: int = 0
    num_agreements: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def all_agree(self) -> bool:
        """``True`` when no mismatch was recorded."""
        return not self.mismatches

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_queries": self.num_queries,
            "num_agreements": self.num_agreements,
            "mismatches": list(self.mismatches),
        }


def describe_difference(name_a: str, a: PathGraph, name_b: str, b: PathGraph) -> str:
    """Human-readable description of how two results differ."""
    only_a, only_b = a.edge_difference(b)
    pieces = [f"{name_a} vs {name_b} disagree on query ({a.source!r} -> {a.target!r}, {a.interval})"]
    if only_a:
        pieces.append(f"  edges only in {name_a}: {sorted(only_a)[:10]}")
    if only_b:
        pieces.append(f"  edges only in {name_b}: {sorted(only_b)[:10]}")
    vertex_only_a = set(a.vertices) - set(b.vertices)
    vertex_only_b = set(b.vertices) - set(a.vertices)
    if vertex_only_a:
        pieces.append(f"  vertices only in {name_a}: {sorted(map(repr, vertex_only_a))[:10]}")
    if vertex_only_b:
        pieces.append(f"  vertices only in {name_b}: {sorted(map(repr, vertex_only_b))[:10]}")
    return "\n".join(pieces)


def assert_same_result(name_a: str, a: PathGraph, name_b: str, b: PathGraph) -> None:
    """Raise :class:`ResultMismatchError` unless the two results are identical."""
    if not a.same_members(b):
        raise ResultMismatchError(describe_difference(name_a, a, name_b, b))


def compare_algorithms(
    algorithms: Sequence[TspgAlgorithm],
    graph: TemporalGraph,
    queries: Sequence[TspgQuery],
    reference: Optional[TspgAlgorithm] = None,
) -> ComparisonReport:
    """Run every algorithm on every query and compare against the reference.

    The first algorithm is the reference when none is given.  Mismatches are
    collected (not raised) so a single report can describe them all.
    """
    if not algorithms:
        raise ValueError("need at least one algorithm to compare")
    reference = reference or algorithms[0]
    report = ComparisonReport()
    for query in queries:
        report.num_queries += 1
        expected = reference.run(graph, query.source, query.target, query.interval).result
        agreed = True
        for algorithm in algorithms:
            if algorithm is reference:
                continue
            actual = algorithm.run(graph, query.source, query.target, query.interval).result
            if not expected.same_members(actual):
                agreed = False
                report.mismatches.append(
                    describe_difference(reference.name, expected, algorithm.name, actual)
                )
        if agreed:
            report.num_agreements += 1
    return report


def verify_containment_chain(
    chain: Sequence[TemporalGraph], names: Optional[Sequence[str]] = None
) -> List[str]:
    """Check that each graph in ``chain`` is a subgraph of the next.

    Returns a list of violation descriptions (empty when the chain holds);
    used to validate ``tspG ⊆ Gt ⊆ Gq ⊆ tgTSG ⊆ esTSG ⊆ dtTSG ⊆ G``.
    """
    violations = []
    names = list(names or [f"graph[{i}]" for i in range(len(chain))])
    for index in range(len(chain) - 1):
        smaller, larger = chain[index], chain[index + 1]
        if not is_subgraph(smaller, larger):
            extra = set(smaller.edge_tuples()) - set(larger.edge_tuples())
            violations.append(
                f"{names[index]} is not contained in {names[index + 1]}; "
                f"offending edges: {sorted(extra)[:5]}"
            )
    return violations
