"""Upper-bound ratio analysis (TABLE II / Fig. 10 of the paper).

For an upper-bound graph ``U`` of a query whose exact result is ``tspG``, the
*upper-bound ratio* is ``|E(tspG)| / |E(U)|`` — the closer to 100 % the
tighter (better) the bound.  This module computes the ratio for each of the
five reduction methods (dtTSG, esTSG, tgTSG, QuickUBG, TightUBG) and averages
it over a query workload, reproducing the TABLE II rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..baselines.reductions import dt_tsg_reduction, es_tsg_reduction, tg_tsg_reduction
from ..core.quick_ubg import quick_upper_bound_graph
from ..core.result import PathGraph
from ..core.tight_ubg import tight_upper_bound_graph
from ..core.vug import generate_tspg
from ..graph.edge import Vertex, as_interval
from ..graph.temporal_graph import TemporalGraph
from ..queries.query import QueryWorkload

ReductionFn = Callable[[TemporalGraph, Vertex, Vertex, object], TemporalGraph]


def _quick_ubg_method(graph, source, target, interval) -> TemporalGraph:
    return quick_upper_bound_graph(graph, source, target, interval)


def _tight_ubg_method(graph, source, target, interval) -> TemporalGraph:
    quick = quick_upper_bound_graph(graph, source, target, interval)
    return tight_upper_bound_graph(quick, source, target, interval)


#: The five upper-bound methods of TABLE II, keyed by their paper names.
UPPER_BOUND_METHODS: Dict[str, ReductionFn] = {
    "dtTSG": dt_tsg_reduction,
    "esTSG": es_tsg_reduction,
    "tgTSG": tg_tsg_reduction,
    "QuickUBG": _quick_ubg_method,
    "TightUBG": _tight_ubg_method,
}


@dataclass
class UpperBoundObservation:
    """Ratio of one method on one query."""

    method: str
    tspg_edges: int
    upper_bound_edges: int

    @property
    def ratio(self) -> Optional[float]:
        """``|E(tspG)| / |E(U)|`` in percent (``None`` when the bound is empty)."""
        if self.upper_bound_edges == 0:
            return None
        return 100.0 * self.tspg_edges / self.upper_bound_edges


@dataclass
class UpperBoundSummary:
    """Average ratio of one method over a workload (one TABLE II cell)."""

    method: str
    observations: List[UpperBoundObservation] = field(default_factory=list)

    def add(self, observation: UpperBoundObservation) -> None:
        self.observations.append(observation)

    @property
    def average_ratio(self) -> Optional[float]:
        """Mean percentage over the queries whose bound was non-empty."""
        ratios = [obs.ratio for obs in self.observations if obs.ratio is not None]
        if not ratios:
            return None
        return sum(ratios) / len(ratios)

    def as_row(self) -> Dict[str, object]:
        ratio = self.average_ratio
        return {
            "method": self.method,
            "avg_upper_bound_ratio_pct": None if ratio is None else round(ratio, 1),
            "queries": len(self.observations),
        }


def upper_bound_ratio_for_query(
    graph: TemporalGraph,
    source: Vertex,
    target: Vertex,
    interval,
    methods: Optional[Dict[str, ReductionFn]] = None,
    tspg: Optional[PathGraph] = None,
) -> Dict[str, UpperBoundObservation]:
    """Compute the ratio of every method for one query."""
    window = as_interval(interval)
    methods = methods or UPPER_BOUND_METHODS
    if tspg is None:
        tspg = generate_tspg(graph, source, target, window)
    observations = {}
    for name, method in methods.items():
        upper_bound = method(graph, source, target, window)
        observations[name] = UpperBoundObservation(
            method=name,
            tspg_edges=tspg.num_edges,
            upper_bound_edges=upper_bound.num_edges,
        )
    return observations


def upper_bound_ratios_for_workload(
    graph: TemporalGraph,
    workload: QueryWorkload,
    methods: Optional[Dict[str, ReductionFn]] = None,
) -> Dict[str, UpperBoundSummary]:
    """Average the per-query ratios over a workload (one TABLE II column)."""
    methods = methods or UPPER_BOUND_METHODS
    summaries = {name: UpperBoundSummary(method=name) for name in methods}
    for query in workload:
        observations = upper_bound_ratio_for_query(
            graph, query.source, query.target, query.interval, methods=methods
        )
        for name, observation in observations.items():
            summaries[name].add(observation)
    return summaries
