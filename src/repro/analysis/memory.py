"""Space-cost accounting (Exp-3, Fig. 7).

The paper measures resident memory of its C++ processes.  A pure-Python
reproduction cannot meaningfully compare interpreter RSS, so the library uses
an *algorithm-level* accounting instead: every algorithm reports the number of
graph elements (vertices, edges, TCV entries, materialised path edges) it had
to hold, which is proportional to its memory footprint and reproduces the
paper's qualitative finding — VUG's cost is linear in the upper-bound graph
size and stable across queries, while the enumeration baselines' cost tracks
the (potentially exponential) number of enumerated paths and therefore swings
wildly between the cheapest and most expensive query.

For completeness, :func:`measure_deep_size` provides an actual byte-level
measurement of Python object graphs (via ``sys.getsizeof`` recursion) that the
space benchmark also reports.

:func:`rss_bytes` / :func:`peak_rss_bytes` expose the *process-level* view —
current and high-water resident set size — for the one experiment where
interpreter RSS is the measurement itself: exp15's mmap-boot ceiling, which
asserts that mapping a snapshot keeps resident memory far below the file's
column payload until queries actually touch the pages.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..baselines.interface import AlgorithmResult


def _status_kb(field_name: str) -> Optional[int]:
    """Read one kB-denominated field from ``/proc/self/status`` (Linux)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith(field_name + ":"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def _statm_rss_bytes() -> Optional[int]:
    """Fast current-RSS read from ``/proc/self/statm`` (Linux).

    ``statm`` is a single short line (seven page counts, field 1 is the
    resident set), so one read + split beats scanning ``status`` line by
    line — this path sits inside residency-tracking serve loops and the
    exp16 probes, where it is called per request.
    """
    try:
        with open("/proc/self/statm", "rb", buffering=0) as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def rss_bytes() -> Optional[int]:
    """Current resident set size of this process in bytes (None if unknown).

    Linux reads ``/proc/self/statm`` (one unbuffered read of a short line)
    with ``VmRSS`` from ``/proc/self/status`` as the fallback; elsewhere
    there is no portable *current*-RSS source without third-party deps, so
    callers must handle ``None`` (exp15/exp16 skip their ceiling
    assertions in that case).
    """
    rss = _statm_rss_bytes()
    if rss is not None:
        return rss
    kb = _status_kb("VmRSS")
    return None if kb is None else kb * 1024


def peak_rss_bytes() -> Optional[int]:
    """High-water resident set size of this process in bytes (None if unknown).

    Linux reads ``VmHWM`` from ``/proc/self/status`` and falls back to
    ``resource.getrusage`` (whose ``ru_maxrss`` is kB on Linux, bytes on
    macOS).
    """
    kb = _status_kb("VmHWM")
    if kb is not None:
        return kb * 1024
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


@dataclass
class SpaceProfile:
    """Max/min space cost of one algorithm over one workload (one Fig. 7 bar pair)."""

    algorithm: str
    costs: List[int] = field(default_factory=list)

    def add(self, cost: int) -> None:
        self.costs.append(cost)

    @property
    def max_cost(self) -> int:
        return max(self.costs) if self.costs else 0

    @property
    def min_cost(self) -> int:
        return min(self.costs) if self.costs else 0

    @property
    def spread(self) -> float:
        """``max / min`` (1.0 when stable; large for enumeration baselines)."""
        if not self.costs or self.min_cost == 0:
            return float("inf") if self.max_cost else 1.0
        return self.max_cost / self.min_cost

    def as_row(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "max_space": self.max_cost,
            "min_space": self.min_cost,
            "spread": round(self.spread, 2) if self.spread != float("inf") else "inf",
        }


def collect_space_profiles(results: Iterable[AlgorithmResult]) -> Dict[str, SpaceProfile]:
    """Group per-query algorithm results into per-algorithm space profiles."""
    profiles: Dict[str, SpaceProfile] = {}
    for result in results:
        profile = profiles.setdefault(result.algorithm, SpaceProfile(result.algorithm))
        profile.add(result.space_cost)
    return profiles


def measure_deep_size(obj: object, _seen: set | None = None) -> int:
    """Approximate deep size in bytes of a Python object graph.

    Recursion covers dicts, sets, lists, tuples and objects with ``__dict__``
    or ``__slots__``; shared sub-objects are counted once.
    """
    seen = _seen if _seen is not None else set()
    obj_id = id(obj)
    if obj_id in seen:
        return 0
    seen.add(obj_id)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += measure_deep_size(key, seen)
            size += measure_deep_size(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += measure_deep_size(item, seen)
    else:
        attributes = getattr(obj, "__dict__", None)
        if attributes is not None:
            size += measure_deep_size(attributes, seen)
        slots = getattr(obj, "__slots__", ())
        for slot in slots:
            if hasattr(obj, slot):
                size += measure_deep_size(getattr(obj, slot), seen)
    return size
