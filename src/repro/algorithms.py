"""Registry of every ``tspG`` algorithm (VUG and the baselines).

This module is the single place where the benchmark harness, the query runner
and the CLI look algorithms up by their paper names: ``"VUG"``, ``"EPdtTSG"``,
``"EPesTSG"``, ``"EPtgTSG"`` and ``"Naive"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from .baselines.ep_algorithms import EPdtTSG, EPesTSG, EPtgTSG, NaiveEnumeration
from .baselines.interface import AlgorithmResult, TspgAlgorithm
from .core.deadline import Deadline
from .core.kernels import KERNEL_BACKENDS
from .core.vug import VUG
from .graph.edge import Vertex, as_interval
from .graph.temporal_graph import TemporalGraph


class VUGAlgorithm(TspgAlgorithm):
    """Adapter exposing the VUG pipeline through the common algorithm interface.

    ``kernel_backend`` selects the hot-path kernel implementation
    (``"python"`` or ``"numpy"``); see :class:`repro.core.vug.VUG`.  The
    class advertises the option via :attr:`supports_kernel_backend` so the
    service layer can thread a backend selection through without probing
    constructor signatures.
    """

    name = "VUG"

    #: The service layer injects ``kernel_backend`` only into algorithms
    #: that advertise support (the VUG family).
    supports_kernel_backend = True

    def __init__(
        self,
        use_tight_upper_bound: bool = True,
        use_lemma10: bool = True,
        zero_materialization: bool = True,
        kernel_backend: str = "python",
    ) -> None:
        self._engine = VUG(
            use_tight_upper_bound=use_tight_upper_bound,
            use_lemma10=use_lemma10,
            zero_materialization=zero_materialization,
            kernel_backend=kernel_backend,
        )

    def compute(
        self,
        graph: TemporalGraph,
        source: Vertex,
        target: Vertex,
        interval,
        deadline: Optional[Deadline] = None,
    ) -> AlgorithmResult:
        window = as_interval(interval)
        report = self._engine.run(graph, source, target, window, deadline=deadline)
        extras: Dict[str, object] = {
            "phase_timings": report.timings.as_dict(),
            # The backend that actually ran ("numpy" silently degrades to
            # "python" when numpy is missing) — benchmarks key off this.
            "kernel_backend": self._engine.effective_kernel_backend(),
        }
        # A deadline cut-off may have stopped the pipeline before either
        # upper bound existed; report whatever phases actually completed.
        if report.upper_bound_quick is not None:
            extras["quick_ubg_edges"] = report.upper_bound_quick.num_edges
        if report.upper_bound_tight is not None:
            extras["tight_ubg_edges"] = report.upper_bound_tight.num_edges
        return AlgorithmResult(
            algorithm=self.name,
            result=report.result,
            elapsed_seconds=report.timings.total,
            space_cost=report.space_cost,
            timed_out=report.timed_out,
            extras=extras,
        )


class VUGQuickOnly(VUGAlgorithm):
    """Ablation: VUG without the TightUBG phase (EEV runs on ``Gq``)."""

    name = "VUG-noTight"

    def __init__(self, kernel_backend: str = "python") -> None:
        super().__init__(use_tight_upper_bound=False, kernel_backend=kernel_backend)


class VUGNoLemma10(VUGAlgorithm):
    """Ablation: VUG without the Lemma 10 one-hop confirmation shortcut."""

    name = "VUG-noLemma10"

    def __init__(self, kernel_backend: str = "python") -> None:
        super().__init__(use_lemma10=False, kernel_backend=kernel_backend)


class VUGMaterializing(VUGAlgorithm):
    """Reference: the pre-refactor pipeline that materializes ``Gq``/``Gt``.

    Registered so the randomized equivalence oracle and the exp11 benchmark
    can compare the zero-materialization hot path against the original
    per-phase graph-building implementation through the same interface.
    """

    name = "VUG-materializing"

    #: The materializing reference pipeline has no vectorized form.
    supports_kernel_backend = False

    def __init__(self) -> None:
        super().__init__(zero_materialization=False)


class VUGVectorized(VUGAlgorithm):
    """VUG with the numpy kernel backend (polarity, mask, grouping).

    Registered so the randomized bit-identity oracle validates the
    vectorized hot path registry-wide against the same references as every
    other variant.  Falls back to the pure-Python kernels silently when
    numpy is not installed — the name then still answers queries, just not
    faster.
    """

    name = "VUG-vectorized"

    def __init__(self, kernel_backend: str = "numpy") -> None:
        super().__init__(kernel_backend=kernel_backend)


#: All algorithms evaluated in the paper's experiments, keyed by name.
ALGORITHM_CLASSES: Dict[str, Type[TspgAlgorithm]] = {
    "VUG": VUGAlgorithm,
    "EPdtTSG": EPdtTSG,
    "EPesTSG": EPesTSG,
    "EPtgTSG": EPtgTSG,
    "Naive": NaiveEnumeration,
    "VUG-noTight": VUGQuickOnly,
    "VUG-noLemma10": VUGNoLemma10,
    "VUG-materializing": VUGMaterializing,
    "VUG-vectorized": VUGVectorized,
}

#: The four algorithms compared throughout Section VI.
PAPER_ALGORITHMS: List[str] = ["EPdtTSG", "EPesTSG", "EPtgTSG", "VUG"]


def available_algorithms() -> List[str]:
    """Names of every registered algorithm."""
    return sorted(ALGORITHM_CLASSES)


def supports_kernel_backend(name: str) -> bool:
    """``True`` iff algorithm ``name`` accepts the ``kernel_backend`` option."""
    try:
        cls = ALGORITHM_CLASSES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        ) from exc
    return bool(getattr(cls, "supports_kernel_backend", False))


def merge_kernel_backend(
    algorithm_options: Optional[Dict[str, Dict[str, object]]],
    kernel_backend: Optional[str],
) -> Dict[str, Dict[str, object]]:
    """Bake a kernel-backend selection into per-algorithm option dicts.

    The service layer threads one ``kernel_backend`` knob through batches,
    shards and process-pool workers by merging it here, once, at
    construction time: every algorithm advertising
    ``supports_kernel_backend`` gains the option (explicit per-algorithm
    settings win), and the merged dict then rides the existing
    ``algorithm_options`` plumbing across every boundary — including worker
    cache keys, which embed its ``repr``.
    """
    merged = {name: dict(opts) for name, opts in (algorithm_options or {}).items()}
    if kernel_backend is None:
        return merged
    if kernel_backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {kernel_backend!r}; "
            f"choose from {', '.join(KERNEL_BACKENDS)}"
        )
    for name, cls in ALGORITHM_CLASSES.items():
        if getattr(cls, "supports_kernel_backend", False):
            merged.setdefault(name, {}).setdefault("kernel_backend", kernel_backend)
    return merged


def get_algorithm(name: str, **options) -> TspgAlgorithm:
    """Instantiate a registered algorithm by name.

    ``options`` are forwarded to the constructor (e.g. ``max_paths`` for the
    enumeration baselines).
    """
    try:
        cls = ALGORITHM_CLASSES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        ) from exc
    return cls(**options)
