"""Registry of every ``tspG`` algorithm (VUG and the baselines).

This module is the single place where the benchmark harness, the query runner
and the CLI look algorithms up by their paper names: ``"VUG"``, ``"EPdtTSG"``,
``"EPesTSG"``, ``"EPtgTSG"`` and ``"Naive"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from .baselines.ep_algorithms import EPdtTSG, EPesTSG, EPtgTSG, NaiveEnumeration
from .baselines.interface import AlgorithmResult, TspgAlgorithm
from .core.deadline import Deadline
from .core.vug import VUG
from .graph.edge import Vertex, as_interval
from .graph.temporal_graph import TemporalGraph


class VUGAlgorithm(TspgAlgorithm):
    """Adapter exposing the VUG pipeline through the common algorithm interface."""

    name = "VUG"

    def __init__(
        self,
        use_tight_upper_bound: bool = True,
        use_lemma10: bool = True,
        zero_materialization: bool = True,
    ) -> None:
        self._engine = VUG(
            use_tight_upper_bound=use_tight_upper_bound,
            use_lemma10=use_lemma10,
            zero_materialization=zero_materialization,
        )

    def compute(
        self,
        graph: TemporalGraph,
        source: Vertex,
        target: Vertex,
        interval,
        deadline: Optional[Deadline] = None,
    ) -> AlgorithmResult:
        window = as_interval(interval)
        report = self._engine.run(graph, source, target, window, deadline=deadline)
        extras: Dict[str, object] = {"phase_timings": report.timings.as_dict()}
        # A deadline cut-off may have stopped the pipeline before either
        # upper bound existed; report whatever phases actually completed.
        if report.upper_bound_quick is not None:
            extras["quick_ubg_edges"] = report.upper_bound_quick.num_edges
        if report.upper_bound_tight is not None:
            extras["tight_ubg_edges"] = report.upper_bound_tight.num_edges
        return AlgorithmResult(
            algorithm=self.name,
            result=report.result,
            elapsed_seconds=report.timings.total,
            space_cost=report.space_cost,
            timed_out=report.timed_out,
            extras=extras,
        )


class VUGQuickOnly(VUGAlgorithm):
    """Ablation: VUG without the TightUBG phase (EEV runs on ``Gq``)."""

    name = "VUG-noTight"

    def __init__(self) -> None:
        super().__init__(use_tight_upper_bound=False)


class VUGNoLemma10(VUGAlgorithm):
    """Ablation: VUG without the Lemma 10 one-hop confirmation shortcut."""

    name = "VUG-noLemma10"

    def __init__(self) -> None:
        super().__init__(use_lemma10=False)


class VUGMaterializing(VUGAlgorithm):
    """Reference: the pre-refactor pipeline that materializes ``Gq``/``Gt``.

    Registered so the randomized equivalence oracle and the exp11 benchmark
    can compare the zero-materialization hot path against the original
    per-phase graph-building implementation through the same interface.
    """

    name = "VUG-materializing"

    def __init__(self) -> None:
        super().__init__(zero_materialization=False)


#: All algorithms evaluated in the paper's experiments, keyed by name.
ALGORITHM_CLASSES: Dict[str, Type[TspgAlgorithm]] = {
    "VUG": VUGAlgorithm,
    "EPdtTSG": EPdtTSG,
    "EPesTSG": EPesTSG,
    "EPtgTSG": EPtgTSG,
    "Naive": NaiveEnumeration,
    "VUG-noTight": VUGQuickOnly,
    "VUG-noLemma10": VUGNoLemma10,
    "VUG-materializing": VUGMaterializing,
}

#: The four algorithms compared throughout Section VI.
PAPER_ALGORITHMS: List[str] = ["EPdtTSG", "EPesTSG", "EPtgTSG", "VUG"]


def available_algorithms() -> List[str]:
    """Names of every registered algorithm."""
    return sorted(ALGORITHM_CLASSES)


def get_algorithm(name: str, **options) -> TspgAlgorithm:
    """Instantiate a registered algorithm by name.

    ``options`` are forwarded to the constructor (e.g. ``max_paths`` for the
    enumeration baselines).
    """
    try:
        cls = ALGORITHM_CLASSES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        ) from exc
    return cls(**options)
