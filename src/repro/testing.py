"""Shared test data: expected artifacts of the paper's running example.

The running example (Fig. 1) is exercised by the unit tests of every pipeline
phase, so the expected member sets of the intermediate and final graphs live
here — importable as :mod:`repro.testing` from both ``tests/`` and
``benchmarks/`` without relying on ``conftest`` module-name resolution (the
two suites each have a ``conftest.py``, and a bare ``from conftest import …``
can silently pick the wrong one depending on collection order).

The constants mirror Fig. 1(b)-(d) for the query ``(s, t, [2, 7])``:

``PAPER_GQ_EDGES``
    Edges of the quick upper-bound graph ``Gq`` (QuickUBG output).
``PAPER_GT_EDGES``
    Edges of the tight upper-bound graph ``Gt`` (TightUBG output).
``PAPER_TSPG_EDGES`` / ``PAPER_TSPG_VERTICES``
    Members of the exact temporal simple path graph (EEV output).
"""

from __future__ import annotations

#: Edges of the quick upper-bound graph ``Gq`` of the running example.
PAPER_GQ_EDGES = {
    ("s", "b", 2),
    ("b", "c", 3),
    ("c", "f", 4),
    ("f", "e", 5),
    ("f", "b", 5),
    ("e", "c", 6),
    ("b", "t", 6),
    ("c", "t", 7),
}

#: Edges of the tight upper-bound graph ``Gt`` of the running example.
PAPER_GT_EDGES = {
    ("s", "b", 2),
    ("b", "c", 3),
    ("c", "f", 4),
    ("b", "t", 6),
    ("c", "t", 7),
}

#: Edges of the exact ``tspG`` of the running example.
PAPER_TSPG_EDGES = {
    ("s", "b", 2),
    ("b", "c", 3),
    ("b", "t", 6),
    ("c", "t", 7),
}

#: Vertices of the exact ``tspG`` of the running example.
PAPER_TSPG_VERTICES = {"s", "b", "c", "t"}
