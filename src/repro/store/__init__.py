"""Persistent storage layer: graph stores and warmed-index snapshots.

This package is the boundary between *building* a temporal graph and
*serving* it.  :class:`GraphStore` abstracts where a warmed graph comes from
(process memory or a binary snapshot file), and :mod:`repro.store.snapshot`
implements the versioned on-disk format — header with format version, graph
epoch, counts and a CRC-32 checksum, followed by the complete warmed index
state (including, since format version 2, the columnar ``GraphView``
arrays) — so ``TspgService.from_snapshot(path)`` cold-starts in O(read)
instead of rebuilding and re-sorting every index.

:class:`ShardSnapshotSet` (:mod:`repro.store.shard_set`) extends the same
format to time-range-sharded serving: a directory of one snapshot per
shard extent plus a versioned JSON manifest recording the span, shard
count, overlap, source-graph epoch and per-shard CRC-32 checksums.
``ShardedTspgService.save_shards(path)`` writes one and
``ShardedTspgService.from_shard_snapshots(path)`` boots a router's N shard
services from it in O(read) without touching the full graph — it is also
what the ``executor="processes"`` batch backend hands to its worker
processes, one shard file per worker.  Any checksum, count or manifest
mismatch raises :class:`SnapshotError` on load.

Quickstart
----------
>>> import tempfile, os
>>> from repro import TemporalGraph
>>> from repro.store import SnapshotGraphStore
>>> graph = TemporalGraph(edges=[("s", "b", 2), ("b", "t", 6)])
>>> path = os.path.join(tempfile.mkdtemp(), "g.tspgsnap")
>>> info = SnapshotGraphStore(path).save(graph)
>>> info.num_edges
2
>>> reloaded = SnapshotGraphStore(path).load()
>>> reloaded == graph
True
"""

from .graph_store import GraphStore, InMemoryGraphStore, SnapshotGraphStore, store_for
from .journal import (
    JOURNAL_MAGIC,
    JOURNAL_SUFFIX,
    JOURNAL_VERSION,
    JournalInfo,
    JournalRecord,
    append_journal_delta,
    clear_journal,
    inspect_journal,
    journal_path,
    read_journal,
    replay_journal,
)
from .residency import ResidencyPolicy, madvise_supported, madvise_unsupported_reason
from .shard_set import (
    SHARD_MANIFEST_NAME,
    SHARD_MANIFEST_VERSION,
    ShardSetManifest,
    ShardSnapshotEntry,
    ShardSnapshotSet,
)
from .snapshot import (
    HEADER_SIZE,
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    V4_COLUMN_SECTIONS,
    SnapshotBoot,
    SnapshotError,
    SnapshotInfo,
    SnapshotSection,
    boot_snapshot,
    inspect_snapshot,
    load_snapshot,
    peek_snapshot,
    save_snapshot,
    snapshot_bytes,
    write_legacy_snapshot,
)

__all__ = [
    "GraphStore",
    "InMemoryGraphStore",
    "SnapshotGraphStore",
    "store_for",
    "ResidencyPolicy",
    "madvise_supported",
    "madvise_unsupported_reason",
    "SnapshotBoot",
    "SnapshotError",
    "SnapshotInfo",
    "SnapshotSection",
    "boot_snapshot",
    "inspect_snapshot",
    "load_snapshot",
    "peek_snapshot",
    "save_snapshot",
    "snapshot_bytes",
    "write_legacy_snapshot",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "V4_COLUMN_SECTIONS",
    "HEADER_SIZE",
    "JournalInfo",
    "JournalRecord",
    "append_journal_delta",
    "clear_journal",
    "inspect_journal",
    "journal_path",
    "read_journal",
    "replay_journal",
    "JOURNAL_MAGIC",
    "JOURNAL_SUFFIX",
    "JOURNAL_VERSION",
    "ShardSnapshotSet",
    "ShardSetManifest",
    "ShardSnapshotEntry",
    "SHARD_MANIFEST_NAME",
    "SHARD_MANIFEST_VERSION",
]
