"""Per-shard snapshot sets: one directory, N shard snapshots, one manifest.

A :class:`ShardSnapshotSet` persists a time-range-sharded graph as a
directory of one :mod:`repro.store.snapshot` file per shard extent plus a
versioned JSON manifest, so a sharded router can boot N shard services in
O(read) — and a process-pool execution backend can boot one *worker* per
shard file — without ever touching (or even having) a full-graph snapshot.

Directory layout::

    <path>/
        manifest.json             # versioned metadata, see below
        shard-0000.g0.tspgsnap    # snapshot (current format, v3) of shard 0's
                                  # extent projection
        shard-0001.g0.tspgsnap
        ...
        isolated.g0.tspgsnap      # optional: edge-less vertices of the source
                                  # graph (no shard projection contains them)

The ``gN`` infix is the save *generation*: every save writes its files
under fresh names and makes the ``manifest.json`` replacement the single
commit point, so re-warming over a live set never touches the files the
current manifest references — a crash mid-save leaves the previous
generation fully loadable.  Files no longer referenced by the committed
manifest are pruned after the swap (a crash before the prune leaves only
harmless orphans, removed by the next save).

The manifest records the partition geometry and integrity data:

* ``version`` — manifest format version (:data:`SHARD_MANIFEST_VERSION`);
* ``span`` — the source graph's full timestamp span (``null`` when the
  graph was edgeless and the set is empty);
* ``num_shards`` / ``overlap`` — the partition parameters, so a router can
  rebuild the exact same topology;
* ``epoch`` — the source graph's mutation epoch at save time;
* ``shards[]`` — per shard: its index, core and extent intervals, the
  snapshot filename, a CRC-32 of the whole snapshot file, and the vertex /
  edge counts of the projection.

Every load validates the manifest version and shard count, and every
:meth:`ShardSnapshotSet.load_shard` call checks the file CRC *before*
decoding plus the decoded counts *after* — any mismatch raises
:class:`~repro.store.snapshot.SnapshotError` instead of serving a shard
that no longer matches its manifest.  Writes go through a temporary
sibling file plus ``fsync`` plus :func:`os.replace` (and a directory
fsync so the rename itself is durable), mirroring the single-snapshot
format's crash safety.

``mmap=True`` on the read side (:meth:`ShardSnapshotSet.boot_shard`)
boots each shard through the v4 zero-copy columnar path.  The manifest's
*whole-file* CRC is deliberately skipped on that path — checksumming the
file would fault in every page and defeat the lazy mapping; the v4
format's own table/meta section CRCs are still verified eagerly, the
adjacency section CRC at first hydration, and the decoded counts are
cross-checked against the manifest entry either way.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.temporal_graph import TemporalGraph
from .snapshot import (
    PathLike,
    SnapshotBoot,
    SnapshotError,
    _commit_bytes,
    boot_snapshot,
    snapshot_bytes,
)

#: Current manifest format version; bump when the JSON layout changes.
SHARD_MANIFEST_VERSION = 1

#: Versions this build can still read.
SUPPORTED_MANIFEST_VERSIONS = (SHARD_MANIFEST_VERSION,)

#: Name of the manifest file inside a shard-set directory.
SHARD_MANIFEST_NAME = "manifest.json"

#: Filename template of the per-shard snapshot files.
SHARD_FILE_TEMPLATE = "shard-{index:04d}.g{generation}.tspgsnap"

#: Filename template of the optional isolated-vertices snapshot.
ISOLATED_FILE_TEMPLATE = "isolated.g{generation}.tspgsnap"

#: Matches the generation infix of any file this module writes.
_GENERATION_PATTERN = re.compile(r"\.g(\d+)\.tspgsnap$")


def _crc32_of_file(path: str) -> int:
    """Streaming CRC-32 of a whole file (shard files are modest in size)."""
    crc = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def _write_snapshot(graph: TemporalGraph, file_path: str) -> int:
    """Durably write ``graph``'s snapshot; return the file's CRC-32.

    The CRC the manifest records is computed from the bytes in memory while
    they are written (same temp-file + ``fsync`` + ``os.replace`` discipline
    as :func:`~repro.store.snapshot.save_snapshot`), sparing the full
    re-read per shard that checksumming the file afterwards would cost.
    """
    blob = snapshot_bytes(graph)
    _commit_bytes(file_path, (blob,))
    return zlib.crc32(blob) & 0xFFFFFFFF


@dataclass(frozen=True)
class ShardSnapshotEntry:
    """Manifest record of one shard's snapshot file."""

    index: int
    #: The shard's partition cell ``(begin, end)``.
    core: Tuple[int, int]
    #: The overlap-widened extent ``(begin, end)`` the snapshot projects.
    extent: Tuple[int, int]
    filename: str
    #: CRC-32 of the entire snapshot file (header + payload).
    file_crc32: int
    num_vertices: int
    num_edges: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "core": list(self.core),
            "extent": list(self.extent),
            "filename": self.filename,
            "file_crc32": self.file_crc32,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ShardSnapshotEntry":
        return cls(
            index=int(raw["index"]),
            core=(int(raw["core"][0]), int(raw["core"][1])),
            extent=(int(raw["extent"][0]), int(raw["extent"][1])),
            filename=str(raw["filename"]),
            file_crc32=int(raw["file_crc32"]),
            num_vertices=int(raw["num_vertices"]),
            num_edges=int(raw["num_edges"]),
        )


@dataclass(frozen=True)
class ShardSetManifest:
    """Decoded ``manifest.json`` of a shard snapshot set."""

    version: int
    #: Full timestamp span of the source graph, ``None`` when edgeless.
    span: Optional[Tuple[int, int]]
    num_shards: int
    overlap: int
    #: Source graph's mutation epoch at save time.
    epoch: int
    shards: Tuple[ShardSnapshotEntry, ...]
    #: ``(filename, file_crc32, num_vertices)`` of the isolated-vertices
    #: snapshot, or ``None`` when the source graph had none.  Shard
    #: projections only keep edge-incident vertices, so without this file
    #: a reconstructed union would silently lose edge-less vertices.
    isolated: Optional[Tuple[str, int, int]] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "span": None if self.span is None else list(self.span),
            "num_shards": self.num_shards,
            "overlap": self.overlap,
            "epoch": self.epoch,
            "shards": [entry.as_dict() for entry in self.shards],
            "isolated": None if self.isolated is None else list(self.isolated),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object], source: str) -> "ShardSetManifest":
        try:
            version = int(raw["version"])
            if version not in SUPPORTED_MANIFEST_VERSIONS:
                raise SnapshotError(
                    f"{source}: unsupported shard manifest version {version} "
                    f"(this build reads versions "
                    f"{', '.join(str(v) for v in SUPPORTED_MANIFEST_VERSIONS)})"
                )
            span = raw["span"]
            isolated = raw.get("isolated")
            manifest = cls(
                version=version,
                span=None if span is None else (int(span[0]), int(span[1])),
                num_shards=int(raw["num_shards"]),
                overlap=int(raw["overlap"]),
                epoch=int(raw["epoch"]),
                shards=tuple(
                    ShardSnapshotEntry.from_dict(entry) for entry in raw["shards"]
                ),
                isolated=None
                if isolated is None
                else (str(isolated[0]), int(isolated[1]), int(isolated[2])),
            )
        except SnapshotError:
            raise
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise SnapshotError(f"{source}: malformed shard manifest: {exc}") from exc
        if manifest.num_shards != len(manifest.shards):
            raise SnapshotError(
                f"{source}: manifest claims {manifest.num_shards} shards but "
                f"lists {len(manifest.shards)} entries"
            )
        if [entry.index for entry in manifest.shards] != list(
            range(len(manifest.shards))
        ):
            raise SnapshotError(f"{source}: shard indices are not 0..N-1 in order")
        return manifest

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering and CLI output."""
        return {
            "version": self.version,
            "span": self.span,
            "num_shards": self.num_shards,
            "overlap": self.overlap,
            "epoch": self.epoch,
            "edges": sum(entry.num_edges for entry in self.shards),
        }


class ShardSnapshotSet:
    """A directory of per-shard snapshots plus their manifest.

    The write side is driven by
    :meth:`repro.service.ShardedTspgService.save_shards` and the read side
    by :meth:`~repro.service.ShardedTspgService.from_shard_snapshots`; this
    class owns the on-disk layout and all integrity checking so the service
    layer never parses files.
    """

    def __init__(self, path: PathLike) -> None:
        self._path = os.fspath(path)

    # ------------------------------------------------------------------
    # locations
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """The shard-set directory."""
        return self._path

    @property
    def manifest_path(self) -> str:
        """Location of ``manifest.json`` inside the directory."""
        return os.path.join(self._path, SHARD_MANIFEST_NAME)

    def file_path(self, filename: str) -> str:
        """Absolute location of one of the set's files (from its manifest)."""
        return os.path.join(self._path, filename)

    def exists(self) -> bool:
        """``True`` when the directory holds a manifest."""
        return os.path.exists(self.manifest_path)

    def _next_generation(self) -> int:
        """First generation number no existing file in the directory uses.

        Derived from the filenames themselves (not the manifest, which may
        be corrupt or mid-replacement): collision-freedom is what keeps the
        live generation untouched while a new save is in flight.
        """
        try:
            names = os.listdir(self._path)
        except OSError:
            return 0
        generations = [
            int(match.group(1))
            for match in (_GENERATION_PATTERN.search(name) for name in names)
            if match
        ]
        return max(generations) + 1 if generations else 0

    def _prune_unreferenced(self, manifest: ShardSetManifest) -> None:
        """Delete snapshot files the committed manifest does not reference.

        Runs after the manifest swap: old-generation shard files, a stale
        isolated-vertices file, and crashed ``.tmp`` leftovers all go.
        Deletion failures are ignored — orphans are harmless and the next
        save retries.
        """
        keep = {entry.filename for entry in manifest.shards}
        if manifest.isolated is not None:
            keep.add(manifest.isolated[0])
        try:
            names = os.listdir(self._path)
        except OSError:
            return
        for name in names:
            if name in keep or name == SHARD_MANIFEST_NAME:
                continue
            if name.endswith((".tspgsnap", ".tspgsnap.tmp")):
                try:
                    os.unlink(os.path.join(self._path, name))
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def save(
        self,
        shards: Sequence[Tuple[Tuple[int, int], Tuple[int, int], TemporalGraph]],
        *,
        span: Optional[Tuple[int, int]],
        overlap: int,
        epoch: int,
        isolated: Optional[TemporalGraph] = None,
    ) -> ShardSetManifest:
        """Write one snapshot per ``(core, extent, graph)`` triple plus the manifest.

        ``isolated`` — an edge-less graph carrying the source vertices no
        shard projection contains — is persisted alongside when non-empty,
        so a union reconstructed from the set loses nothing.  Every save
        writes its files under a fresh generation infix and commits by
        atomically replacing the manifest, so a crash mid-save never
        leaves a manifest pointing at missing, truncated or overwritten
        files — re-warming over a live set keeps the previous generation
        loadable until the instant the new manifest lands.  Files the
        committed manifest no longer references are pruned afterwards.
        """
        os.makedirs(self._path, exist_ok=True)
        generation = self._next_generation()
        entries: List[ShardSnapshotEntry] = []
        for index, (core, extent, graph) in enumerate(shards):
            filename = SHARD_FILE_TEMPLATE.format(index=index, generation=generation)
            crc = _write_snapshot(graph, os.path.join(self._path, filename))
            entries.append(
                ShardSnapshotEntry(
                    index=index,
                    core=(int(core[0]), int(core[1])),
                    extent=(int(extent[0]), int(extent[1])),
                    filename=filename,
                    file_crc32=crc,
                    num_vertices=graph.num_vertices,
                    num_edges=graph.num_edges,
                )
            )
        isolated_entry: Optional[Tuple[str, int, int]] = None
        if isolated is not None and isolated.num_vertices:
            filename = ISOLATED_FILE_TEMPLATE.format(generation=generation)
            crc = _write_snapshot(isolated, os.path.join(self._path, filename))
            isolated_entry = (filename, crc, isolated.num_vertices)
        manifest = ShardSetManifest(
            version=SHARD_MANIFEST_VERSION,
            span=None if span is None else (int(span[0]), int(span[1])),
            num_shards=len(entries),
            overlap=overlap,
            epoch=epoch,
            shards=tuple(entries),
            isolated=isolated_entry,
        )
        blob = (json.dumps(manifest.as_dict(), indent=2) + "\n").encode("utf-8")
        _commit_bytes(self.manifest_path, (blob,))
        self._prune_unreferenced(manifest)
        return manifest

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def manifest(self) -> ShardSetManifest:
        """Read and validate ``manifest.json`` (no shard payload is touched)."""
        path = self.manifest_path
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError as exc:
            raise SnapshotError(f"{path}: cannot open shard manifest: {exc}") from exc
        except ValueError as exc:
            raise SnapshotError(f"{path}: shard manifest is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise SnapshotError(f"{path}: shard manifest is not a JSON object")
        return ShardSetManifest.from_dict(raw, path)

    def _boot_verified(
        self,
        filename: str,
        label: str,
        expected_crc32: int,
        expected_vertices: int,
        expected_edges: int,
        *,
        mmap: bool = False,
        interval=None,
        residency=None,
    ) -> SnapshotBoot:
        """Boot one snapshot of the set, verifying integrity and counts.

        The single integrity protocol shared by :meth:`boot_shard` and
        :meth:`load_isolated`: on the eager path the whole-file CRC is
        checked *before* decoding; on the mmap path that pre-scan is
        skipped (it would fault in every page the lazy mapping exists to
        avoid — the v4 section CRCs cover the bytes that are actually
        read).  The decoded counts are cross-checked against the manifest
        *after* either way; any mismatch raises :class:`SnapshotError`
        naming the offending ``label``.

        ``interval`` restricts the boot to the rows inside that time range
        (extent-local mapping on the mmap path).  The manifest count
        cross-check only applies when the boot's row range covers the whole
        file — a proper restriction legitimately decodes fewer edges.
        """
        file_path = os.path.join(self._path, filename)
        if not mmap:
            try:
                crc = _crc32_of_file(file_path)
            except OSError as exc:
                raise SnapshotError(
                    f"{file_path}: cannot open {label} snapshot: {exc}"
                ) from exc
            if crc != expected_crc32:
                raise SnapshotError(
                    f"{file_path}: {label} snapshot checksum mismatch "
                    f"(manifest says {expected_crc32:#010x}, file is {crc:#010x})"
                )
        boot = boot_snapshot(
            file_path, mmap=mmap, interval=interval, residency=residency
        )
        if boot.graph.num_edges != expected_edges and interval is not None:
            # An interval that excludes rows makes edge counts incomparable.
            return boot
        graph = boot.graph
        if (
            graph.num_vertices != expected_vertices
            or graph.num_edges != expected_edges
        ):
            raise SnapshotError(
                f"{file_path}: {label} snapshot does not match its manifest "
                f"entry (manifest says |V|={expected_vertices}, "
                f"|E|={expected_edges}; file decodes to "
                f"|V|={graph.num_vertices}, |E|={graph.num_edges})"
            )
        return boot

    def boot_shard(
        self,
        entry: ShardSnapshotEntry,
        *,
        mmap: bool = False,
        extent_local: bool = True,
        residency=None,
    ) -> SnapshotBoot:
        """Boot one shard's graph, reporting how the boot went.

        Like :meth:`load_shard` but returns the full
        :class:`~repro.store.snapshot.SnapshotBoot` so callers can surface
        whether the mmap request held and, if not, why (the router's
        ``mmap_fallback_reasons()`` aggregates these per shard).

        With ``mmap=True`` and ``extent_local=True`` (the default) the boot
        is restricted to the entry's time extent, so the address space maps
        only the extent's rows.  A well-formed shard file contains exactly
        those rows, making the restriction a no-op that keeps the
        whole-file fast path — but a file holding more than its manifest
        extent (e.g. a full snapshot reused across entries) maps only its
        slice.  ``residency`` registers the mappings for page advice.

        Raises
        ------
        SnapshotError
            When the shard file is missing, its bytes do not match the
            manifest checksum (eager path), the snapshot itself is corrupt,
            or the decoded graph contradicts the manifest's counts.
        """
        interval = entry.extent if (mmap and extent_local) else None
        return self._boot_verified(
            entry.filename,
            "shard",
            entry.file_crc32,
            entry.num_vertices,
            entry.num_edges,
            mmap=mmap,
            interval=interval,
            residency=residency,
        )

    def load_shard(
        self, entry: ShardSnapshotEntry, *, mmap: bool = False
    ) -> TemporalGraph:
        """Load one shard's warmed graph, verifying integrity and counts.

        Raises
        ------
        SnapshotError
            When the shard file is missing, its bytes do not match the
            manifest checksum (eager path), the snapshot itself is corrupt,
            or the decoded graph contradicts the manifest's counts.
        """
        return self.boot_shard(entry, mmap=mmap).graph

    def load_isolated(self, manifest: ShardSetManifest) -> List[object]:
        """The source graph's edge-less vertices (empty when none were saved).

        Same integrity rules as :meth:`load_shard`.
        """
        if manifest.isolated is None:
            return []
        filename, file_crc32, num_vertices = manifest.isolated
        graph = self._boot_verified(
            filename, "isolated-vertices", file_crc32, num_vertices, 0
        ).graph
        return list(graph.vertices())

    def load_all(
        self, *, mmap: bool = False
    ) -> List[Tuple[ShardSnapshotEntry, TemporalGraph]]:
        """Load every shard in index order (validated manifest first)."""
        manifest = self.manifest()
        return [
            (entry, self.load_shard(entry, mmap=mmap)) for entry in manifest.shards
        ]

    def describe(self) -> Dict[str, object]:
        """Human-readable provenance (rendered by the CLI and reports)."""
        row: Dict[str, object] = {"backend": "shard-set", "path": self._path}
        if self.exists():
            row.update(self.manifest().as_row())
        else:
            row["exists"] = False
        return row
