"""Page-advice policy for mmap-booted snapshots (``mmap.madvise``).

An mmap boot makes *boot* cheap — no page is resident until touched — but a
long-running serve loop decides what stays resident afterwards.  This module
centralizes that policy as :class:`ResidencyPolicy`: the boot path registers
every mapping it creates, and the service layer drives three advice phases
through it:

* :meth:`ResidencyPolicy.advise_warm` — ``MADV_SEQUENTIAL`` before a warm
  scan (index warm-up reads columns front to back; sequential read-ahead
  doubles down on that, and already-read pages become eviction candidates);
* :meth:`ResidencyPolicy.advise_serve` — ``MADV_RANDOM`` once serving
  starts (point queries touch scattered window slices; read-ahead would
  fault in pages no query asked for, inflating residency);
* :meth:`ResidencyPolicy.evict_cold` — periodic ``MADV_DONTNEED`` from the
  serve loop, releasing cold pages back to the OS.  The mappings are
  read-only and file-backed, so dropped pages simply re-fault from the
  snapshot file — eviction can cost latency, never correctness.

Degradation is graceful everywhere: platforms without ``mmap.madvise``
(pre-3.8, some BSDs/macOS constants, Windows) or with ``TSPG_NO_MADVISE=1``
in the environment record a human-readable reason and every call becomes a
no-op.  Advice is *advice* — it can only change paging behaviour, never
bytes — so the no-op path is bit-identical by construction, and CI proves
it by re-running the identity oracle with madvise forced unavailable.
"""

from __future__ import annotations

import mmap as _mmap
import os
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ResidencyPolicy",
    "madvise_supported",
    "madvise_unsupported_reason",
]

#: Environment variable forcing the unsupported (no-op) path, used by tests
#: and the CI degradation leg.
NO_MADVISE_ENV = "TSPG_NO_MADVISE"

_ADVICE_NAMES = ("MADV_SEQUENTIAL", "MADV_RANDOM", "MADV_DONTNEED")


def madvise_unsupported_reason() -> Optional[str]:
    """Why page advice is unavailable here, or ``None`` when it works."""
    if os.environ.get(NO_MADVISE_ENV, "").strip() not in ("", "0"):
        return f"madvise disabled by {NO_MADVISE_ENV} in the environment"
    if not hasattr(_mmap.mmap, "madvise"):
        return "mmap.madvise is not available on this platform (needs CPython >= 3.8 with madvise support)"
    missing = [name for name in _ADVICE_NAMES if not hasattr(_mmap, name)]
    if missing:
        return "platform does not define madvise constants: " + ", ".join(missing)
    return None


def madvise_supported() -> bool:
    """``True`` iff page advice calls can reach the OS from here."""
    return madvise_unsupported_reason() is None


class ResidencyPolicy:
    """Tracks a boot's mappings and issues page advice over them.

    One policy instance belongs to one booted snapshot (services with many
    shards aggregate one policy per shard).  ``register`` records a mapping
    plus the byte range of it the boot actually uses; the advice methods
    walk the registered ranges.  All OS errors are swallowed and counted —
    advice must never take a serve loop down.
    """

    __slots__ = ("_mappings", "_phase", "_advised_bytes", "_evictions",
                 "_errors", "_retirements", "_reason")

    def __init__(self) -> None:
        self._mappings: List[Tuple[object, int, int]] = []
        self._phase = "boot"
        self._advised_bytes = 0
        self._evictions = 0
        self._errors = 0
        self._retirements = 0
        # Pinned at construction so one policy reports one consistent mode
        # even if the environment changes under a long-running process.
        self._reason = madvise_unsupported_reason()

    @property
    def supported(self) -> bool:
        return self._reason is None

    @property
    def unsupported_reason(self) -> Optional[str]:
        return self._reason

    @property
    def phase(self) -> str:
        """The last advice phase applied: boot, warm, serve."""
        return self._phase

    def register(self, mapping, offset: int = 0, length: Optional[int] = None) -> None:
        """Track ``length`` bytes at ``offset`` of ``mapping`` for advice.

        ``mapping`` is an :class:`mmap.mmap`; ``offset``/``length`` bound
        the slice of it the boot uses (an extent-local boot maps aligned
        ranges, so the interesting bytes rarely start at 0).  Offsets are
        aligned down to the page so the kernel accepts them.
        """
        if length is None:
            length = max(len(mapping) - offset, 0)
        if length <= 0:
            return
        page = _mmap.PAGESIZE
        aligned = (offset // page) * page
        length += offset - aligned
        self._mappings.append((mapping, aligned, length))

    @property
    def mapped_bytes(self) -> int:
        """Total bytes across the registered (page-aligned) ranges."""
        return sum(length for _, _, length in self._mappings)

    def _advise(self, advice_name: str) -> int:
        """Apply one advice constant to every registered range."""
        applied = 0
        if self._reason is not None:
            return applied
        advice = getattr(_mmap, advice_name, None)
        if advice is None:
            return applied
        for mapping, offset, length in self._mappings:
            try:
                mapping.madvise(advice, offset, length)
                applied += length
            except (ValueError, OSError):
                # Closed mapping, shrunk file, or an OS that rejects the
                # advice for this range — note it and keep serving.
                self._errors += 1
        self._advised_bytes += applied
        return applied

    def advise_warm(self) -> int:
        """``MADV_SEQUENTIAL`` ahead of the warm scan; returns bytes advised."""
        self._phase = "warm"
        return self._advise("MADV_SEQUENTIAL")

    def advise_serve(self) -> int:
        """``MADV_RANDOM`` for the point-query serving phase."""
        self._phase = "serve"
        return self._advise("MADV_RANDOM")

    def evict_cold(self) -> int:
        """``MADV_DONTNEED`` — release cold pages; returns bytes advised.

        Safe on the read-only file-backed snapshot mappings: evicted pages
        re-fault from the file on next touch.  Counted separately so serve
        stats can report eviction cadence.
        """
        released = self._advise("MADV_DONTNEED")
        if released:
            self._evictions += 1
        return released

    def retire_all(self) -> int:
        """Drop every registered mapping; returns how many were retired.

        Called on a generation swap: the old generation's snapshot files are
        about to be superseded (and possibly pruned), so advising over their
        mappings would at best be wasted syscalls and at worst keep dead
        pages pinned in the accounting.  The mappings themselves stay open —
        in-flight queries on the old generation still read through them —
        this only removes them from the *advice* set.  The new generation's
        boot re-registers its own mappings afterwards.
        """
        retired = len(self._mappings)
        self._mappings.clear()
        self._retirements += retired
        return retired

    def stats(self) -> Dict[str, object]:
        """Counters for the service ``stats`` surface."""
        return {
            "supported": self.supported,
            "phase": self._phase,
            "mappings": len(self._mappings),
            "mapped_bytes": self.mapped_bytes,
            "advised_bytes": self._advised_bytes,
            "evictions": self._evictions,
            "errors": self._errors,
            "retirements": self._retirements,
            "unsupported_reason": self._reason,
        }

    def merged_with(self, others: "List[ResidencyPolicy]") -> Dict[str, object]:
        """Aggregate stats across this policy and ``others`` (shard sets)."""
        policies = [self] + list(others)
        return {
            "supported": all(p.supported for p in policies),
            "phase": self._phase,
            "mappings": sum(len(p._mappings) for p in policies),
            "mapped_bytes": sum(p.mapped_bytes for p in policies),
            "advised_bytes": sum(p._advised_bytes for p in policies),
            "evictions": sum(p._evictions for p in policies),
            "errors": sum(p._errors for p in policies),
            "retirements": sum(p._retirements for p in policies),
            "unsupported_reason": next(
                (p._reason for p in policies if p._reason), None
            ),
        }
