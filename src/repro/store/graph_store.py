"""The pluggable ``GraphStore`` layer between graph construction and serving.

A :class:`GraphStore` is *where a service gets its warmed graph from*.  The
serving layer (:class:`~repro.service.TspgService` and the sharded router)
only needs two things from a store: a fully-warmed
:class:`~repro.graph.temporal_graph.TemporalGraph` and a description of where
it came from.  Two implementations cover the current deployment shapes:

* :class:`InMemoryGraphStore` — wraps a graph that already lives in the
  process (built by a generator, a loader or a test); ``load()`` warms it in
  place and hands it out.
* :class:`SnapshotGraphStore` — backed by a versioned binary snapshot file
  (see :mod:`repro.store.snapshot`); ``load()`` is O(read) and never
  re-sorts, ``save()`` persists a freshly warmed graph for the next boot.

New backends (mmap segments, a remote object store, per-shard files) slot in
by subclassing :class:`GraphStore` without the service layer changing.
"""

from __future__ import annotations

import abc
import os
from typing import Dict, Union

from ..graph.temporal_graph import TemporalGraph
from .snapshot import SnapshotInfo, load_snapshot, peek_snapshot, save_snapshot

PathLike = Union[str, "os.PathLike[str]"]


class GraphStore(abc.ABC):
    """Source of warmed temporal graphs for the serving layer."""

    @abc.abstractmethod
    def load(self) -> TemporalGraph:
        """Return a fully-warmed graph (every lazy index built)."""

    @abc.abstractmethod
    def describe(self) -> Dict[str, object]:
        """Human-readable provenance (rendered by the CLI and reports)."""


class InMemoryGraphStore(GraphStore):
    """Store over a graph that already exists in this process."""

    def __init__(self, graph: TemporalGraph, label: str = "in-memory") -> None:
        self._graph = graph
        self._label = label

    def load(self) -> TemporalGraph:
        self._graph.warm_indices()
        return self._graph

    def describe(self) -> Dict[str, object]:
        return {
            "backend": "memory",
            "label": self._label,
            "vertices": self._graph.num_vertices,
            "edges": self._graph.num_edges,
            "epoch": self._graph.epoch,
        }


class SnapshotGraphStore(GraphStore):
    """Store backed by one binary snapshot file on disk."""

    def __init__(self, path: PathLike) -> None:
        self._path = os.fspath(path)

    @property
    def path(self) -> str:
        """Location of the backing snapshot file."""
        return self._path

    def exists(self) -> bool:
        """``True`` when the backing file is present."""
        return os.path.exists(self._path)

    def info(self) -> SnapshotInfo:
        """Validated header of the backing snapshot (no payload read)."""
        return peek_snapshot(self._path)

    def load(self) -> TemporalGraph:
        """Load the warmed graph; raises ``SnapshotError`` on any corruption."""
        return load_snapshot(self._path)

    def save(self, graph: TemporalGraph) -> SnapshotInfo:
        """Warm ``graph`` and (atomically) persist it to the backing file."""
        return save_snapshot(graph, self._path)

    def describe(self) -> Dict[str, object]:
        row: Dict[str, object] = {"backend": "snapshot", "path": self._path}
        if self.exists():
            row.update(self.info().as_row())
        else:
            row["exists"] = False
        return row


def store_for(source: Union[GraphStore, TemporalGraph, PathLike]) -> GraphStore:
    """Coerce a graph, a snapshot path or a store into a :class:`GraphStore`.

    Convenience for callers embedding the library that hold "some graph
    source" generically; code that already knows its concrete source (the
    CLI, ``TspgService.from_snapshot``) constructs the store directly.
    """
    if isinstance(source, GraphStore):
        return source
    if isinstance(source, TemporalGraph):
        return InMemoryGraphStore(source)
    return SnapshotGraphStore(source)
