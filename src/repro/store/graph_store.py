"""The pluggable ``GraphStore`` layer between graph construction and serving.

A :class:`GraphStore` is *where a service gets its warmed graph from*.  The
serving layer (:class:`~repro.service.TspgService` and the sharded router)
only needs two things from a store: a fully-warmed
:class:`~repro.graph.temporal_graph.TemporalGraph` and a description of where
it came from.  Two implementations cover the current deployment shapes:

* :class:`InMemoryGraphStore` — wraps a graph that already lives in the
  process (built by a generator, a loader or a test); ``load()`` warms it in
  place and hands it out.
* :class:`SnapshotGraphStore` — backed by a versioned binary snapshot file
  (see :mod:`repro.store.snapshot`); ``load()`` is O(read) and never
  re-sorts, ``save()`` persists a freshly warmed graph for the next boot.

New backends (mmap segments, a remote object store, per-shard files) slot in
by subclassing :class:`GraphStore` without the service layer changing.
"""

from __future__ import annotations

import abc
import os
from typing import Dict, Union

from typing import List

from ..graph.temporal_graph import EdgeDelta, TemporalGraph
from .snapshot import SnapshotInfo, boot_snapshot, peek_snapshot, save_snapshot

PathLike = Union[str, "os.PathLike[str]"]


class GraphStore(abc.ABC):
    """Source of warmed temporal graphs for the serving layer."""

    @abc.abstractmethod
    def load(self) -> TemporalGraph:
        """Return a fully-warmed graph (every lazy index built)."""

    @abc.abstractmethod
    def describe(self) -> Dict[str, object]:
        """Human-readable provenance (rendered by the CLI and reports)."""


class InMemoryGraphStore(GraphStore):
    """Store over a graph that already exists in this process."""

    def __init__(self, graph: TemporalGraph, label: str = "in-memory") -> None:
        self._graph = graph
        self._label = label

    def load(self) -> TemporalGraph:
        self._graph.warm_indices()
        return self._graph

    def describe(self) -> Dict[str, object]:
        return {
            "backend": "memory",
            "label": self._label,
            "vertices": self._graph.num_vertices,
            "edges": self._graph.num_edges,
            "epoch": self._graph.epoch,
        }


class SnapshotGraphStore(GraphStore):
    """Store backed by one binary snapshot file on disk.

    ``mmap=True`` requests the zero-copy columnar boot (snapshot format v4):
    ``load()`` maps the file and the graph's view columns read straight out
    of the page cache.  Pre-v4 files degrade to the eager boot; the reasons
    are recorded on :meth:`mmap_fallback_reasons` after a load (mirroring
    the service layer's ``process_fallback_reasons()`` style) instead of
    being raised — a readable snapshot always boots.

    ``interval`` restricts loads to that (inclusive) time range's edges —
    with ``mmap`` this is the extent-local boot that maps only the range's
    rows.  ``residency`` accepts a :class:`~repro.store.residency.
    ResidencyPolicy`; every mapping a load creates is registered with it so
    the service layer can drive ``madvise`` page advice and report
    resident-byte counters.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        mmap: bool = False,
        interval=None,
        residency=None,
    ) -> None:
        self._path = os.fspath(path)
        self._mmap = bool(mmap)
        self._interval = interval
        self._residency = residency
        self._mmap_active = False
        self._mmap_fallback_reasons: List[str] = []
        self._last_boot = None

    @property
    def path(self) -> str:
        """Location of the backing snapshot file."""
        return self._path

    @property
    def mmap_requested(self) -> bool:
        """Whether this store was asked to boot via mmap."""
        return self._mmap

    @property
    def mmap_active(self) -> bool:
        """Whether the most recent :meth:`load` actually booted via mmap."""
        return self._mmap_active

    def mmap_fallback_reasons(self) -> List[str]:
        """Why the most recent :meth:`load` was not mmap-backed.

        Empty when the last load mapped the file (or no load ran yet with
        ``mmap=True``); otherwise one reason per degradation, e.g. a pre-v4
        snapshot version.  When mmap was never requested the single reason
        says so.
        """
        if not self._mmap:
            return ["mmap boot was not requested (pass mmap=True / --mmap)"]
        return list(self._mmap_fallback_reasons)

    def exists(self) -> bool:
        """``True`` when the backing file is present."""
        return os.path.exists(self._path)

    def info(self) -> SnapshotInfo:
        """Validated header of the backing snapshot (no payload read)."""
        return peek_snapshot(self._path)

    @property
    def residency(self):
        """The attached residency policy, if any."""
        return self._residency

    @property
    def last_boot(self):
        """The :class:`SnapshotBoot` of the most recent :meth:`load`.

        Carries the extent-local accounting (``row_range``,
        ``mapped_column_bytes`` vs ``total_column_bytes``); ``None`` before
        the first load.
        """
        return self._last_boot

    def load(self) -> TemporalGraph:
        """Load the warmed graph; raises ``SnapshotError`` on any corruption."""
        boot = boot_snapshot(
            self._path,
            mmap=self._mmap,
            interval=self._interval,
            residency=self._residency,
        )
        self._mmap_active = boot.mmap_active
        self._mmap_fallback_reasons = list(boot.fallback_reasons)
        self._last_boot = boot
        return boot.graph

    def save(self, graph: TemporalGraph, *, compact: bool = False) -> SnapshotInfo:
        """Warm ``graph`` and (atomically) persist it to the backing file.

        ``compact=True`` also folds the epoch-delta journal sidecar into
        the new snapshot (the graph already contains every journaled
        append) and removes it — see :func:`~repro.store.snapshot.
        save_snapshot`.
        """
        return save_snapshot(graph, self._path, compact=compact)

    def append(self, edges) -> "EdgeDelta":
        """Journal an edge append against the backing snapshot.

        Applies ``edges`` to ``graph`` through the delta append path
        (:meth:`TemporalGraph.append_edges` — an mmap-booted graph stays
        lazy) and records the resulting delta in the snapshot's
        ``*.tspgjournal`` sidecar, so the next :meth:`load` replays it.
        Requires a prior :meth:`load`; returns the applied delta.
        """
        if self._last_boot is None:
            raise RuntimeError("append() requires a prior load()")
        from .journal import append_journal_delta  # deferred, mirrors snapshot.py

        delta = self._last_boot.graph.append_edges(edges)
        if delta:
            append_journal_delta(self._path, delta)
        return delta

    def describe(self) -> Dict[str, object]:
        row: Dict[str, object] = {"backend": "snapshot", "path": self._path}
        if self._mmap:
            row["mmap"] = "active" if self._mmap_active else "requested"
        if self._interval is not None:
            row["interval"] = str(self._interval)
        if self._last_boot is not None and self._last_boot.mapped_column_bytes:
            row["mapped_column_bytes"] = self._last_boot.mapped_column_bytes
        if self.exists():
            row.update(self.info().as_row())
        else:
            row["exists"] = False
        return row


def store_for(source: Union[GraphStore, TemporalGraph, PathLike]) -> GraphStore:
    """Coerce a graph, a snapshot path or a store into a :class:`GraphStore`.

    Convenience for callers embedding the library that hold "some graph
    source" generically; code that already knows its concrete source (the
    CLI, ``TspgService.from_snapshot``) constructs the store directly.
    """
    if isinstance(source, GraphStore):
        return source
    if isinstance(source, TemporalGraph):
        return InMemoryGraphStore(source)
    return SnapshotGraphStore(source)
