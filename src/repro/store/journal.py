"""The epoch-delta journal appended next to a snapshot (``*.tspgjournal``).

Live ingest must not re-serialize a multi-megabyte snapshot for every
batch of appended edges.  Instead, every :class:`~repro.graph.temporal_graph.EdgeDelta`
produced by :meth:`TemporalGraph.append_edges` is recorded in a compact
sidecar file next to the snapshot it extends:

* ``header`` — ``TSPGJRNL`` magic, format version, reserved flags, and the
  **base epoch**: the mutation epoch of the snapshot the journal extends.
  A journal whose base epoch does not match its snapshot is *stale* (the
  snapshot was re-saved or compacted after the journal was written) and is
  ignored on boot — this is exactly what makes compaction crash-safe: the
  snapshot commit is the atomic point, and a crash before the journal
  unlink leaves a stale sidecar that the next boot skips.
* one **record** per delta — op code, the epoch transition
  (``epoch_before → epoch_after``), the row count, and a zlib-compressed
  pickle of the rows guarded by its own CRC-32.  Records are strictly
  sequential: ``epoch_before`` of record *k* equals ``epoch_after`` of
  record *k − 1* (record 0 starts at the base epoch), so a replayed graph
  lands on exactly the epoch every downstream consumer stamped.

Writes reuse the snapshot codec's fsync'd :func:`_commit_bytes` (temp
sibling + rename + directory fsync), so the journal on disk is always a
complete, well-formed file — there is no torn-tail recovery path to get
wrong.  Appending therefore costs O(journal) bytes rewritten; journals are
bounded by compaction (:func:`repro.store.snapshot.save_snapshot` with
``compact=True`` folds them back into the snapshot), which keeps the
rewrite cost proportional to the un-compacted delta.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from ..graph.temporal_graph import EdgeDelta, TemporalGraph
from .snapshot import PathLike, SnapshotError, _commit_bytes

__all__ = [
    "JOURNAL_MAGIC",
    "JOURNAL_SUFFIX",
    "JOURNAL_VERSION",
    "JournalInfo",
    "JournalRecord",
    "append_journal_delta",
    "clear_journal",
    "inspect_journal",
    "journal_path",
    "read_journal",
    "replay_journal",
]

#: First bytes of every journal file.
JOURNAL_MAGIC = b"TSPGJRNL"

#: Current journal format version.
JOURNAL_VERSION = 1

#: Sidecar suffix: the journal of ``graph.tspgsnap`` is
#: ``graph.tspgsnap.tspgjournal``, committed in the same directory.
JOURNAL_SUFFIX = ".tspgjournal"

#: Journal ops.  Only edge appends exist today; the field keeps the record
#: layout stable if richer deltas (e.g. vertex attributes) arrive later.
OP_APPEND_EDGES = 1

_OP_NAMES = {OP_APPEND_EDGES: "append-edges"}

# header: magic, version, flags (reserved), base epoch
_HEADER_STRUCT = struct.Struct(">8sHHQ")
# record: op, epoch_before, epoch_after, num_rows, payload_len, payload_crc32
_RECORD_STRUCT = struct.Struct(">HQQQII")


def journal_path(snapshot_path: PathLike) -> str:
    """The sidecar journal path of ``snapshot_path``."""
    return f"{os.fspath(snapshot_path)}{JOURNAL_SUFFIX}"


class JournalInfo:
    """Decoded journal header plus whole-file summary (used by ``tspg inspect``)."""

    __slots__ = ("version", "base_epoch", "num_records", "byte_length")

    def __init__(
        self, *, version: int, base_epoch: int, num_records: int, byte_length: int
    ) -> None:
        self.version = version
        self.base_epoch = base_epoch
        self.num_records = num_records
        self.byte_length = byte_length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JournalInfo(version={self.version}, base_epoch={self.base_epoch}, "
            f"num_records={self.num_records}, bytes={self.byte_length})"
        )


class JournalRecord:
    """One decoded journal record.

    ``rows`` is the decoded edge tuple sequence when the payload CRC
    verified (``crc_ok``), and ``()`` otherwise — the tolerant decode used
    by ``tspg inspect`` reports the corruption instead of raising.
    """

    __slots__ = (
        "op",
        "epoch_before",
        "epoch_after",
        "num_rows",
        "payload_length",
        "crc_ok",
        "rows",
    )

    def __init__(
        self,
        *,
        op: int,
        epoch_before: int,
        epoch_after: int,
        num_rows: int,
        payload_length: int,
        crc_ok: bool,
        rows: Tuple,
    ) -> None:
        self.op = op
        self.epoch_before = epoch_before
        self.epoch_after = epoch_after
        self.num_rows = num_rows
        self.payload_length = payload_length
        self.crc_ok = crc_ok
        self.rows = rows

    @property
    def op_name(self) -> str:
        """Human-readable op label."""
        return _OP_NAMES.get(self.op, f"op-{self.op}")

    def as_row(self) -> Dict[str, object]:
        """Flat dict for the ``tspg inspect`` journal table."""
        return {
            "op": self.op_name,
            "epoch": f"{self.epoch_before}->{self.epoch_after}",
            "rows": self.num_rows,
            "payload_bytes": self.payload_length,
            "crc": "ok" if self.crc_ok else "CORRUPT",
        }


def _encode_record(delta: EdgeDelta) -> bytes:
    payload = zlib.compress(
        pickle.dumps(tuple(delta.rows), protocol=pickle.HIGHEST_PROTOCOL)
    )
    header = _RECORD_STRUCT.pack(
        OP_APPEND_EDGES,
        delta.old_epoch,
        delta.new_epoch,
        len(delta.rows),
        len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    return header + payload


def _read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _decode_header(buf: bytes, path: str) -> JournalInfo:
    if len(buf) < _HEADER_STRUCT.size:
        raise SnapshotError(
            f"{path}: truncated journal header "
            f"({len(buf)} of {_HEADER_STRUCT.size} bytes)"
        )
    magic, version, _flags, base_epoch = _HEADER_STRUCT.unpack_from(buf)
    if magic != JOURNAL_MAGIC:
        raise SnapshotError(f"{path}: bad journal magic {magic!r}")
    if version != JOURNAL_VERSION:
        raise SnapshotError(
            f"{path}: unsupported journal version {version} "
            f"(this build reads version {JOURNAL_VERSION})"
        )
    return JournalInfo(
        version=version, base_epoch=base_epoch, num_records=0, byte_length=len(buf)
    )


def _decode_records(
    buf: bytes, path: str, *, strict: bool
) -> List[JournalRecord]:
    records: List[JournalRecord] = []
    offset = _HEADER_STRUCT.size
    while offset < len(buf):
        if offset + _RECORD_STRUCT.size > len(buf):
            raise SnapshotError(
                f"{path}: truncated journal record header at offset {offset}"
            )
        op, before, after, num_rows, payload_len, crc = _RECORD_STRUCT.unpack_from(
            buf, offset
        )
        offset += _RECORD_STRUCT.size
        if offset + payload_len > len(buf):
            raise SnapshotError(
                f"{path}: truncated journal record payload at offset {offset}"
            )
        payload = buf[offset : offset + payload_len]
        offset += payload_len
        crc_ok = (zlib.crc32(payload) & 0xFFFFFFFF) == crc
        rows: Tuple = ()
        if crc_ok:
            try:
                rows = pickle.loads(zlib.decompress(payload))
            except Exception as exc:  # zlib.error, pickle errors, ...
                if strict:
                    raise SnapshotError(
                        f"{path}: undecodable journal record "
                        f"#{len(records)}: {exc}"
                    ) from exc
                crc_ok = False
        elif strict:
            raise SnapshotError(
                f"{path}: journal record #{len(records)} failed its CRC check"
            )
        records.append(
            JournalRecord(
                op=op,
                epoch_before=before,
                epoch_after=after,
                num_rows=num_rows,
                payload_length=payload_len,
                crc_ok=crc_ok,
                rows=rows,
            )
        )
    return records


def read_journal(path: PathLike) -> Tuple[JournalInfo, List[JournalRecord]]:
    """Decode and fully verify a journal file (strict: corruption raises)."""
    path = os.fspath(path)
    buf = _read_bytes(path)
    info = _decode_header(buf, path)
    records = _decode_records(buf, path, strict=True)
    info.num_records = len(records)
    return info, records


def inspect_journal(path: PathLike) -> Tuple[JournalInfo, List[JournalRecord]]:
    """Decode a journal *tolerantly*: per-record CRC failures are reported
    in :attr:`JournalRecord.crc_ok` instead of raising (header corruption
    and truncation still raise — there is nothing meaningful to show)."""
    path = os.fspath(path)
    buf = _read_bytes(path)
    info = _decode_header(buf, path)
    records = _decode_records(buf, path, strict=False)
    info.num_records = len(records)
    return info, records


def append_journal_delta(snapshot_path: PathLike, delta: EdgeDelta) -> Optional[str]:
    """Record ``delta`` in the snapshot's sidecar journal (fsync'd commit).

    Creates the journal on first append, with ``delta.old_epoch`` as the
    base epoch — the caller appends immediately after mutating a graph
    booted from the snapshot, so the first delta's ``old_epoch`` *is* the
    snapshot's epoch.  Subsequent appends verify the chain: a delta whose
    ``old_epoch`` does not continue the journal's last record raises
    (something mutated the graph outside the journaled path; replaying the
    journal could no longer reproduce the live graph).

    Empty deltas (every edge was a duplicate) are not recorded.  Returns
    the journal path, or ``None`` when nothing was written.
    """
    if not delta.rows:
        return None
    path = journal_path(snapshot_path)
    if os.path.exists(path):
        buf = _read_bytes(path)
        info = _decode_header(buf, path)
        records = _decode_records(buf, path, strict=True)
        last_epoch = records[-1].epoch_after if records else info.base_epoch
        if delta.old_epoch != last_epoch:
            raise SnapshotError(
                f"{path}: journal chain ends at epoch {last_epoch} but the "
                f"delta starts at epoch {delta.old_epoch}; the graph was "
                f"mutated outside the journaled append path"
            )
    else:
        buf = _HEADER_STRUCT.pack(
            JOURNAL_MAGIC, JOURNAL_VERSION, 0, delta.old_epoch
        )
    _commit_bytes(path, (buf, _encode_record(delta)))
    return path


def clear_journal(snapshot_path: PathLike) -> bool:
    """Remove the snapshot's sidecar journal; ``True`` if one existed."""
    path = journal_path(snapshot_path)
    try:
        os.unlink(path)
    except FileNotFoundError:
        return False
    return True


def replay_journal(
    graph: TemporalGraph,
    path: PathLike,
    *,
    interval: Optional[Tuple[int, int]] = None,
) -> int:
    """Replay a journal's records onto ``graph`` via the delta append path.

    The graph must sit at the journal's base epoch (the caller checks the
    snapshot↔journal pairing; this function enforces per-record chain
    continuity).  Returns the number of records applied.  Replay routes
    through :meth:`TemporalGraph.append_edges`, so an mmap-booted graph
    stays lazy and its view is extended, not rebuilt.

    ``interval`` restricts replay to rows inside the closed window — the
    extent-local boot path uses it so a restricted graph receives exactly
    the projection of each delta.  Because clipping can change row counts
    (and hence epoch arithmetic), interval replay pins the graph's epoch to
    each record's ``epoch_after`` instead of verifying the +1-per-record
    chain, mirroring how restricted boots pin their epoch to the source's.
    """
    info, records = read_journal(path)
    applied = 0
    for index, record in enumerate(records):
        if record.op != OP_APPEND_EDGES:
            raise SnapshotError(
                f"{os.fspath(path)}: unsupported journal op {record.op} "
                f"in record #{index}"
            )
        rows: Iterable = record.rows
        if interval is not None:
            begin, end = interval
            rows = [row for row in record.rows if begin <= row[2] <= end]
        else:
            if graph.epoch != record.epoch_before:
                raise SnapshotError(
                    f"{os.fspath(path)}: journal record #{index} expects "
                    f"epoch {record.epoch_before} but the graph is at "
                    f"epoch {graph.epoch}"
                )
        graph.append_edges(rows)
        if interval is not None:
            graph._epoch = record.epoch_after
        elif graph.epoch != record.epoch_after:
            raise SnapshotError(
                f"{os.fspath(path)}: journal record #{index} lands on "
                f"epoch {record.epoch_after} but replay produced "
                f"epoch {graph.epoch}"
            )
        applied += 1
    return applied
