"""Versioned binary snapshots of a warmed :class:`TemporalGraph`.

A snapshot captures *everything* :meth:`TemporalGraph.warm_indices` builds —
the sorted adjacency lists, the temporally sorted edge list, the distinct
timestamp set, the per-vertex ``T_out(u)`` / ``T_in(u)`` views and the frozen
CSR columnar :class:`~repro.graph.views.GraphView` arrays — so a long-lived
service can cold-start in O(read) instead of re-inserting and re-sorting
every edge (O(E log E + E·d)), and boots straight into view-servable state.

Format version 4 (current) — columnar section layout::

    +--------------------------------------------------------------------+
    | fixed header (42 bytes, big-endian, shared by every version):      |
    |   magic ``b"TSPGSNAP"`` | format version (u16)                     |
    |   graph epoch (u64)                                                |
    |   num_vertices (u64) | num_edges (u64) | num_timestamps (u64)      |
    |   payload length (u64) | CRC-32 (u32)                              |
    +--------------------------------------------------------------------+
    | section table: num_sections (u32) | table_bytes (u32)              |
    |   then per section (44 bytes each):                                |
    |   name (16s, NUL padded) | offset (u64, absolute) | length (u64)   |
    |   | elements (u64, int64 count; 0 for pickled sections) | CRC-32   |
    +--------------------------------------------------------------------+
    | "meta" section:      zlib(pickle(labels/timestamps/epoch/stats))   |
    | "adjacency" section: zlib(pickle(out/in adjacency + ts views))     |
    | 11 raw column extents, each 8-byte aligned, uncompressed,          |
    | little-endian int64: the view's src/dst/ts edge columns, the CSR   |
    | offset/edge arrays, and the CSR-aligned out_ts/out_dst/in_ts/in_src|
    +--------------------------------------------------------------------+

``payload length`` counts every byte after the fixed header (table,
sections, alignment padding), so ``file size == 42 + payload length``
exactly; the header CRC field covers the section-table block and each
section carries its own CRC.  The raw extents are what make the format
mmap-able: :func:`load_snapshot` with ``mmap=True`` maps the file and hands
:class:`~repro.graph.columns.MmapColumn` views of the extents to a
:class:`~repro.graph.views.GraphView`, deferring the pickled adjacency
section until a consumer actually walks the Python-side graph — boot cost
and resident memory stay O(metadata), not O(E).

Versions 1–3 are the legacy single-section layout (``payload length``
bytes of zlib-compressed pickled warmed state, header CRC over that
payload); they still load eagerly, with the CRC streamed in chunks so
validating a multi-GB file does not double its RSS.

Every load validates magic, version and sizes *before* decoding, checks the
relevant CRCs before unpickling anything, and cross-checks the header counts
against the decoded graph; any mismatch raises :class:`SnapshotError`
instead of returning garbage.  The pickled sections use :mod:`pickle`
because graph vertices may be arbitrary hashables (ints, transit-stop
strings, tuples); snapshots are trusted local artifacts, not a wire format.
"""

from __future__ import annotations

import mmap as _mmap
import os
import pickle
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass, field
from typing import BinaryIO, Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..graph.columns import ChainedColumn, INDEX_TYPECODE, IndexColumn, MmapColumn
from ..graph.edge import as_interval
from ..graph.temporal_graph import LazyGraphBoot, TemporalGraph
from ..graph.views import GraphView, _csr

#: First bytes of every snapshot file.
SNAPSHOT_MAGIC = b"TSPGSNAP"

#: Current format version; bump when the layout changes.
#: Version 2 added the columnar GraphView arrays to the warmed state.
#: Version 3 changed no bytes but tightened the ordering contract: the
#: persisted sorted-edge backing (and the view columns aligned with it)
#: break equal-timestamp ties with the deterministic repr-based key, not
#: the writer's hash-seed-dependent set order.
#: Version 4 replaced the single zlib-pickle payload with the columnar
#: section layout documented above (mmap-able raw extents + two small
#: pickled sections); the CSR-aligned timestamp/endpoint columns are now
#: persisted too, so neither boot flavour rebuilds them.
SNAPSHOT_VERSION = 4

#: Versions this build can still read.  Version 1 payloads simply lack the
#: ``view`` columns; version ≤ 2 payloads may carry the old nondeterministic
#: tie order, so their sorted backing and view are *not* adopted — the graph
#: restores fine and re-sorts/rebuilds them lazily on first use (one
#: O(E log E) pass).  Only version 4 files can boot via ``mmap=True``;
#: older files degrade to the eager boot with a recorded reason.
SUPPORTED_SNAPSHOT_VERSIONS = (1, 2, 3, SNAPSHOT_VERSION)

#: Header layout: magic, version, epoch, |V|, |E|, |T|, payload length, CRC-32.
#: For v≤3 the CRC covers the whole payload; for v4 it covers the section
#: table block (each section then carries its own CRC).
_HEADER_STRUCT = struct.Struct(">8sHQQQQQI")

HEADER_SIZE = _HEADER_STRUCT.size

#: v4 section-table block header: num_sections (u32), table_bytes (u32 —
#: the size of the whole block including these 8 bytes).
_TABLE_HEADER_STRUCT = struct.Struct(">II")

#: v4 per-section record: name (16s), absolute offset (u64), length (u64),
#: int64 element count (u64, 0 for pickled sections), CRC-32 (u32).
_SECTION_RECORD_STRUCT = struct.Struct(">16sQQQI")

#: The raw int64 column extents of a v4 snapshot, in file order.  The first
#: seven are the persisted :meth:`GraphView.columns` arrays; the last four
#: are the CSR-aligned derivatives (``out_ts[j]``/``out_dst[j]`` describe
#: the edge at CSR position ``j``), persisted since v4 so the polarity
#: sweeps never rebuild them on either boot flavour.
V4_COLUMN_SECTIONS = (
    "view.src",
    "view.dst",
    "view.ts",
    "view.out_offsets",
    "view.out_edges",
    "view.in_offsets",
    "view.in_edges",
    "view.out_ts",
    "view.out_dst",
    "view.in_ts",
    "view.in_src",
)

#: Streamed-read chunk size for the legacy (v≤3) CRC/decompress loop.
_STREAM_CHUNK = 1 << 20

PathLike = Union[str, "os.PathLike[str]"]


class SnapshotError(RuntimeError):
    """Raised when a snapshot file is unreadable, corrupted or incompatible."""


@dataclass(frozen=True)
class SnapshotInfo:
    """Decoded snapshot header (cheap to read: no payload is touched)."""

    version: int
    epoch: int
    num_vertices: int
    num_edges: int
    num_timestamps: int
    payload_bytes: int

    def as_row(self) -> dict:
        """Flat dict for table rendering and CLI output."""
        return {
            "version": self.version,
            "epoch": self.epoch,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "timestamps": self.num_timestamps,
            "payload_bytes": self.payload_bytes,
        }


@dataclass(frozen=True)
class SnapshotSection:
    """One decoded v4 section-table record."""

    name: str
    offset: int
    length: int
    elements: int
    crc32: int

    def as_row(self) -> dict:
        """Flat dict for table rendering and CLI output."""
        return {
            "section": self.name,
            "offset": self.offset,
            "length": self.length,
            "elements": self.elements,
            "crc32": f"{self.crc32:08x}",
        }


@dataclass
class SnapshotBoot:
    """Result of :func:`boot_snapshot`: the graph plus how it was booted.

    ``fallback_reasons`` mirrors the style of
    :meth:`TspgService.process_fallback_reasons`: when ``mmap=True`` was
    requested but the boot degraded to eager, each reason records why, so
    callers surface the degradation instead of silently eating it.

    ``row_range`` / ``mapped_column_bytes`` / ``total_column_bytes`` account
    for extent-local mapping: an interval-restricted mmap boot maps only the
    ``[row_lo, row_hi)`` rows of the edge columns, so ``mapped_column_bytes``
    (actual bytes of column extents placed in the address space, including
    page-alignment slop) can be far below ``total_column_bytes`` (the file's
    full column payload).  Eager boots map nothing and report 0.
    """

    graph: TemporalGraph
    info: SnapshotInfo
    mmap_requested: bool = False
    mmap_active: bool = False
    fallback_reasons: List[str] = field(default_factory=list)
    row_range: Optional[Tuple[int, int]] = None
    mapped_column_bytes: int = 0
    total_column_bytes: int = 0
    #: Sidecar journal replayed on top of the booted graph (live ingest):
    #: the journal's path and how many of its records were applied.  ``None``
    #: / ``0`` when no (current) journal sat next to the snapshot.
    journal_path: Optional[str] = None
    journal_records: int = 0


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _extent_bytes(column) -> bytes:
    """Raw little-endian int64 bytes of a column (any supported storage)."""
    if isinstance(column, MmapColumn):
        return column.tobytes()  # mapped extents are little-endian already
    if isinstance(column, ChainedColumn):
        if sys.byteorder == "little":
            return column.tobytes()
        column = column.materialize()
    if not (isinstance(column, array) and column.typecode == INDEX_TYPECODE):
        column = array(INDEX_TYPECODE, column)
    if sys.byteorder == "little":
        return column.tobytes()
    swapped = array(INDEX_TYPECODE, column.tobytes())
    swapped.byteswap()
    return swapped.tobytes()


def _extent_column(data) -> IndexColumn:
    """Adopt raw little-endian int64 bytes as an :class:`IndexColumn`."""
    column = IndexColumn(INDEX_TYPECODE, bytes(data))
    if sys.byteorder != "little":
        column.byteswap()
    return column


def _pickled_blob(obj) -> bytes:
    return zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _encode(graph: TemporalGraph) -> Tuple[bytes, bytes, SnapshotInfo]:
    """Warm ``graph`` and encode it to ``(header, body, info)`` — format v4.

    The single place the current on-disk layout is produced;
    :func:`save_snapshot` and :func:`snapshot_bytes` both write exactly
    ``header + body``.  Encoding is deterministic for a given graph state:
    re-saving a loaded snapshot (either boot flavour) reproduces identical
    section bytes and CRCs, because the column extents round-trip raw and
    the pickled dicts preserve their insertion order.
    """
    stats = graph.warm_indices()
    view = graph.view()
    vertices = list(graph.vertices())
    meta_blob = _pickled_blob(
        {
            "labels": view.labels,
            "timestamps": graph.timestamps(),
            "epoch": graph.epoch,
            "warm_stats": stats,
        }
    )
    adjacency_blob = _pickled_blob(
        {
            "out": {v: list(graph.out_neighbors_view(v)) for v in vertices},
            "in": {v: list(graph.in_neighbors_view(v)) for v in vertices},
            "out_timestamps": {v: graph.out_timestamps(v) for v in vertices},
            "in_timestamps": {v: graph.in_timestamps(v) for v in vertices},
        }
    )
    columns = {
        "view.src": view.src,
        "view.dst": view.dst,
        "view.ts": view.ts,
        "view.out_offsets": view.out_offsets,
        "view.out_edges": view.out_edges,
        "view.in_offsets": view.in_offsets,
        "view.in_edges": view.in_edges,
        "view.out_ts": view.out_ts,
        "view.out_dst": view.out_dst,
        "view.in_ts": view.in_ts,
        "view.in_src": view.in_src,
    }
    sections: List[Tuple[str, bytes, int]] = [
        ("meta", meta_blob, 0),
        ("adjacency", adjacency_blob, 0),
    ]
    for name in V4_COLUMN_SECTIONS:
        data = _extent_bytes(columns[name])
        sections.append((name, data, len(data) // 8))

    table_bytes = _TABLE_HEADER_STRUCT.size + (
        _SECTION_RECORD_STRUCT.size * len(sections)
    )
    cursor = HEADER_SIZE + table_bytes
    chunks: List[bytes] = []
    records: List[bytes] = []
    for name, data, elements in sections:
        if elements or not data:
            pad = (-cursor) % 8  # raw extents are 8-byte aligned
            if pad:
                chunks.append(b"\0" * pad)
                cursor += pad
        records.append(
            _SECTION_RECORD_STRUCT.pack(
                name.encode("ascii"),
                cursor,
                len(data),
                elements,
                zlib.crc32(data) & 0xFFFFFFFF,
            )
        )
        chunks.append(data)
        cursor += len(data)

    table = _TABLE_HEADER_STRUCT.pack(len(sections), table_bytes) + b"".join(records)
    body = table + b"".join(chunks)
    info = SnapshotInfo(
        version=SNAPSHOT_VERSION,
        epoch=graph.epoch,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_timestamps=len(graph.timestamps()),
        payload_bytes=len(body),
    )
    header = _HEADER_STRUCT.pack(
        SNAPSHOT_MAGIC,
        info.version,
        info.epoch,
        info.num_vertices,
        info.num_edges,
        info.num_timestamps,
        info.payload_bytes,
        zlib.crc32(table) & 0xFFFFFFFF,
    )
    return header, body, info


def write_legacy_snapshot(
    graph: TemporalGraph, path: PathLike, *, version: int = 3
) -> SnapshotInfo:
    """Write a pre-v4 (single zlib-pickle payload) snapshot to ``path``.

    Produces byte layouts identical to what the v1/v2/v3 writers emitted —
    the cross-version compatibility tests and the exp15 eager-boot baseline
    use this so old-format files don't have to be vendored as fixtures.
    """
    if version not in (1, 2, 3):
        raise ValueError(f"legacy snapshot versions are 1..3, got {version}")
    state = graph.warmed_state()
    if version == 1:
        state.pop("view", None)  # v1 predates the columnar view arrays
    payload = zlib.compress(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
    info = SnapshotInfo(
        version=version,
        epoch=graph.epoch,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_timestamps=len(graph.timestamps()),
        payload_bytes=len(payload),
    )
    header = _HEADER_STRUCT.pack(
        SNAPSHOT_MAGIC,
        info.version,
        info.epoch,
        info.num_vertices,
        info.num_edges,
        info.num_timestamps,
        info.payload_bytes,
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    _commit_bytes(path, (header, payload))
    return info


def _fsync_directory(dirpath: str) -> None:
    """Flush the directory entry after an :func:`os.replace` commit."""
    try:
        fd = os.open(dirpath or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems refusing dir fsync
        pass
    finally:
        os.close(fd)


def _commit_bytes(path: PathLike, chunks: Iterable[bytes]) -> None:
    """Durably write ``chunks`` to ``path`` via a temp sibling + rename.

    The temp file is flushed and fsync'd before :func:`os.replace`, and the
    parent directory is fsync'd after, so neither a crash mid-write nor one
    right after the rename can lose the committed bytes.  On any exception
    the temp sibling is removed — it never survives a failed write.
    """
    path = os.fspath(path)
    tmp_path = f"{path}.tmp"
    try:
        with open(tmp_path, "wb") as handle:
            for chunk in chunks:
                handle.write(chunk)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_directory(os.path.dirname(path))


def save_snapshot(
    graph: TemporalGraph, path: PathLike, *, compact: bool = False
) -> SnapshotInfo:
    """Warm ``graph`` and write its full index state to ``path`` (format v4).

    The write goes through a temporary sibling file plus :func:`os.replace`,
    with the temp file and its directory both fsync'd, so a crash at any
    point either keeps the old snapshot or commits the new one — never a
    truncated or lost file.  Returns the header that was written.

    ``compact=True`` folds an epoch-delta journal back in: the graph's
    current state (which already contains every journaled append) becomes
    the new snapshot and the ``*.tspgjournal`` sidecar is removed after the
    snapshot commit.  The snapshot replace is the atomic point — a crash
    between it and the journal unlink leaves a sidecar whose base epoch no
    longer matches the snapshot, which the next boot recognises as stale
    and skips (see :mod:`repro.store.journal`).  Without ``compact``, a
    re-save over a journaled snapshot leaves the now-stale sidecar behind;
    it is ignored on boot for the same reason.
    """
    header, body, info = _encode(graph)
    _commit_bytes(path, (header, body))
    if compact:
        from .journal import clear_journal  # deferred: journal imports us

        clear_journal(path)
    return info


def snapshot_bytes(graph: TemporalGraph) -> bytes:
    """Serialize ``graph`` to an in-memory snapshot (testing/debug helper)."""
    header, body, _ = _encode(graph)
    return header + body


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _read_header(handle: BinaryIO, path: str) -> tuple:
    raw = handle.read(HEADER_SIZE)
    if len(raw) < HEADER_SIZE:
        raise SnapshotError(
            f"{path}: truncated snapshot header ({len(raw)} of {HEADER_SIZE} bytes)"
        )
    magic, version, epoch, n_vertices, n_edges, n_ts, payload_len, crc = (
        _HEADER_STRUCT.unpack(raw)
    )
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path}: not a tspG snapshot (bad magic {magic!r})")
    if version not in SUPPORTED_SNAPSHOT_VERSIONS:
        raise SnapshotError(
            f"{path}: unsupported snapshot format version {version} "
            f"(this build reads versions "
            f"{', '.join(str(v) for v in SUPPORTED_SNAPSHOT_VERSIONS)})"
        )
    return version, epoch, n_vertices, n_edges, n_ts, payload_len, crc


def peek_snapshot(path: PathLike) -> SnapshotInfo:
    """Read and validate only the header of the snapshot at ``path``."""
    path = os.fspath(path)
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot open snapshot: {exc}") from exc
    with handle:
        version, epoch, n_vertices, n_edges, n_ts, payload_len, _ = _read_header(
            handle, path
        )
    return SnapshotInfo(
        version=version,
        epoch=epoch,
        num_vertices=n_vertices,
        num_edges=n_edges,
        num_timestamps=n_ts,
        payload_bytes=payload_len,
    )


def _parse_v4_table(
    buf, path: str, *, payload_len: int, table_crc: int
) -> Dict[str, SnapshotSection]:
    """Decode and verify the v4 section table from the payload region.

    ``buf`` is a bytes-like view of the ``payload_len`` bytes after the
    fixed header.  The table CRC (stored in the header) is verified before
    any record is trusted — a flipped byte anywhere in the block surfaces
    as a checksum mismatch, not a parse error.
    """
    if payload_len < _TABLE_HEADER_STRUCT.size:
        raise SnapshotError(f"{path}: truncated snapshot payload (no section table)")
    num_sections, table_bytes = _TABLE_HEADER_STRUCT.unpack(
        bytes(buf[: _TABLE_HEADER_STRUCT.size])
    )
    # CRC first: if the declared block size is implausible the block is
    # corrupt, and checking over a best-effort region still reports it as
    # the checksum failure it is.
    region = table_bytes if 0 < table_bytes <= payload_len else payload_len
    if (zlib.crc32(bytes(buf[:region])) & 0xFFFFFFFF) != table_crc:
        raise SnapshotError(f"{path}: snapshot section table checksum mismatch")
    expected = _TABLE_HEADER_STRUCT.size + (
        _SECTION_RECORD_STRUCT.size * num_sections
    )
    if table_bytes != expected or num_sections == 0:
        raise SnapshotError(
            f"{path}: malformed snapshot section table "
            f"({num_sections} sections, {table_bytes} bytes)"
        )
    sections: Dict[str, SnapshotSection] = {}
    end = HEADER_SIZE + payload_len
    for index in range(num_sections):
        start = _TABLE_HEADER_STRUCT.size + index * _SECTION_RECORD_STRUCT.size
        name_raw, offset, length, elements, crc = _SECTION_RECORD_STRUCT.unpack(
            bytes(buf[start : start + _SECTION_RECORD_STRUCT.size])
        )
        name = name_raw.rstrip(b"\0").decode("ascii", "replace")
        if (
            offset < HEADER_SIZE + table_bytes
            or offset + length > end
            or (elements and (length != 8 * elements or offset % 8))
        ):
            raise SnapshotError(
                f"{path}: malformed snapshot section table "
                f"(section {name!r} extent [{offset}, {offset + length}) "
                f"does not fit the file)"
            )
        sections[name] = SnapshotSection(
            name=name, offset=offset, length=length, elements=elements, crc32=crc
        )
    for required in ("meta", "adjacency", *V4_COLUMN_SECTIONS):
        if required not in sections:
            raise SnapshotError(
                f"{path}: malformed snapshot section table "
                f"(missing section {required!r})"
            )
    return sections


def inspect_snapshot(path: PathLike) -> Tuple[SnapshotInfo, List[SnapshotSection]]:
    """Decode the header and (for v4) the per-section table of a snapshot.

    Cheap by construction: reads the fixed header plus the section-table
    block — never a section payload.  Pre-v4 files report their single
    opaque payload as one pseudo-section named ``payload``.
    """
    path = os.fspath(path)
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot open snapshot: {exc}") from exc
    with handle:
        version, epoch, n_vertices, n_edges, n_ts, payload_len, crc = _read_header(
            handle, path
        )
        info = SnapshotInfo(
            version=version,
            epoch=epoch,
            num_vertices=n_vertices,
            num_edges=n_edges,
            num_timestamps=n_ts,
            payload_bytes=payload_len,
        )
        if version < 4:
            return info, [
                SnapshotSection(
                    name="payload",
                    offset=HEADER_SIZE,
                    length=payload_len,
                    elements=0,
                    crc32=crc,
                )
            ]
        table = handle.read(min(payload_len, _TABLE_HEADER_STRUCT.size))
        if len(table) >= _TABLE_HEADER_STRUCT.size:
            _, table_bytes = _TABLE_HEADER_STRUCT.unpack(table)
            if 0 < table_bytes <= payload_len:
                table += handle.read(table_bytes - len(table))
    sections = _parse_v4_table(
        table, path, payload_len=payload_len, table_crc=crc
    )
    ordered = sorted(sections.values(), key=lambda record: record.offset)
    return info, ordered


def _section_bytes(buf, record: SnapshotSection, path: str) -> bytes:
    """The verified bytes of ``record`` out of the payload region ``buf``."""
    start = record.offset - HEADER_SIZE
    data = bytes(buf[start : start + record.length])
    if (zlib.crc32(data) & 0xFFFFFFFF) != record.crc32:
        raise SnapshotError(
            f"{path}: snapshot section {record.name!r} checksum mismatch"
        )
    return data


def _decode_section(buf, record: SnapshotSection, path: str):
    """CRC-check and unpickle one of the two pickled v4 sections."""
    data = _section_bytes(buf, record, path)
    try:
        return pickle.loads(zlib.decompress(data))
    except Exception as exc:  # zlib.error, pickle errors, ...
        raise SnapshotError(
            f"{path}: cannot decode snapshot section {record.name!r}: {exc}"
        ) from exc


def _check_counts(
    graph: TemporalGraph,
    path: str,
    *,
    epoch: int,
    n_vertices: int,
    n_edges: int,
    n_ts: int,
) -> None:
    if (
        graph.num_vertices != n_vertices
        or graph.num_edges != n_edges
        or len(graph.timestamps()) != n_ts
        or graph.epoch != epoch
    ):
        raise SnapshotError(
            f"{path}: snapshot header does not match payload "
            f"(header says |V|={n_vertices}, |E|={n_edges}, |T|={n_ts}, "
            f"epoch={epoch}; payload decodes to |V|={graph.num_vertices}, "
            f"|E|={graph.num_edges}, |T|={len(graph.timestamps())}, "
            f"epoch={graph.epoch})"
        )


def _v4_view_from_columns(
    meta: dict, columns: Dict[str, object], epoch: int
) -> GraphView:
    """Assemble a :class:`GraphView` adopting decoded v4 columns as-is."""
    view = GraphView(
        list(meta["labels"]),
        columns["view.src"],
        columns["view.dst"],
        columns["view.ts"],
        columns["view.out_offsets"],
        columns["view.out_edges"],
        columns["view.in_offsets"],
        columns["view.in_edges"],
        epoch=int(epoch),
    )
    view._out_aligned = (columns["view.out_ts"], columns["view.out_dst"])
    view._in_aligned = (columns["view.in_ts"], columns["view.in_src"])
    return view


def _validate_v4_shapes(
    sections: Dict[str, SnapshotSection],
    path: str,
    *,
    n_vertices: int,
    n_edges: int,
) -> None:
    """Cross-check extent element counts against the header counts."""
    expected = {name: n_edges for name in V4_COLUMN_SECTIONS}
    expected["view.out_offsets"] = n_vertices + 1
    expected["view.in_offsets"] = n_vertices + 1
    for name, count in expected.items():
        if sections[name].elements != count:
            raise SnapshotError(
                f"{path}: snapshot header does not match payload "
                f"(section {name!r} has {sections[name].elements} elements, "
                f"header implies {count})"
            )


def _load_v4_eager(
    buf,
    path: str,
    *,
    epoch: int,
    n_vertices: int,
    n_edges: int,
    n_ts: int,
    payload_len: int,
    table_crc: int,
) -> TemporalGraph:
    """Fully materialize a v4 snapshot: every section read, every CRC checked."""
    sections = _parse_v4_table(
        buf, path, payload_len=payload_len, table_crc=table_crc
    )
    _validate_v4_shapes(
        sections, path, n_vertices=n_vertices, n_edges=n_edges
    )
    meta = _decode_section(buf, sections["meta"], path)
    adjacency = _decode_section(buf, sections["adjacency"], path)
    columns = {
        name: _extent_column(_section_bytes(buf, sections[name], path))
        for name in V4_COLUMN_SECTIONS
    }
    try:
        labels = list(meta["labels"])
        src, dst, ts = columns["view.src"], columns["view.dst"], columns["view.ts"]
        sorted_tuples = [
            (labels[s], labels[d], t) for s, d, t in zip(src, dst, ts)
        ]
        state = {
            "out": adjacency["out"],
            "in": adjacency["in"],
            "sorted_edges": sorted_tuples,
            "timestamps": meta["timestamps"],
            "out_timestamps": adjacency["out_timestamps"],
            "in_timestamps": adjacency["in_timestamps"],
            "epoch": meta["epoch"],
        }
        graph = TemporalGraph.from_warmed_state(state, trust_order=True)
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise SnapshotError(f"{path}: malformed snapshot state: {exc}") from exc
    graph._view_cache = _v4_view_from_columns(meta, columns, graph.epoch)
    _check_counts(
        graph, path, epoch=epoch, n_vertices=n_vertices, n_edges=n_edges, n_ts=n_ts
    )
    return graph


def _column_payload_span(
    sections: Dict[str, SnapshotSection]
) -> Tuple[int, int]:
    """``(offset, length)`` of the contiguous raw-column region of the file."""
    offsets = [sections[name].offset for name in V4_COLUMN_SECTIONS]
    ends = [
        sections[name].offset + sections[name].length
        for name in V4_COLUMN_SECTIONS
    ]
    lo = min(offsets)
    return lo, max(ends) - lo


def _total_column_bytes(sections: Dict[str, SnapshotSection]) -> int:
    """Sum of the raw column extents' lengths (the mmap-able payload)."""
    return sum(sections[name].length for name in V4_COLUMN_SECTIONS)


def _boot_v4_mmap(
    path: str,
    *,
    epoch: int,
    n_vertices: int,
    n_edges: int,
    n_ts: int,
    payload_len: int,
    table_crc: int,
    residency=None,
) -> Tuple[TemporalGraph, int]:
    """Map a v4 snapshot and build a lazily-hydrating graph over it.

    Eagerly verified: file size, the section table CRC and the small
    ``meta`` section (so the boot fails fast on a corrupt table or
    metadata).  The ``adjacency`` section's CRC is checked when it is
    hydrated; the raw column extents are *not* CRC-checked on this path —
    checking them would fault in every page and defeat the lazy boot (the
    eager loader and the shard set's whole-file check cover them).

    Returns ``(graph, column_bytes)`` where ``column_bytes`` is the total
    size of the raw column extents now present in the address space.  When a
    :class:`~repro.store.residency.ResidencyPolicy` is passed, the mapping's
    column region is registered with it for page advice.
    """
    with open(path, "rb") as handle:
        mapped = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
    buf = memoryview(mapped)[HEADER_SIZE : HEADER_SIZE + payload_len]
    try:
        sections = _parse_v4_table(
            buf, path, payload_len=payload_len, table_crc=table_crc
        )
        _validate_v4_shapes(
            sections, path, n_vertices=n_vertices, n_edges=n_edges
        )
        if residency is not None:
            span_offset, span_length = _column_payload_span(sections)
            residency.register(mapped, span_offset, span_length)
        meta = _decode_section(buf, sections["meta"], path)
        columns = {
            name: MmapColumn(
                buf[
                    sections[name].offset
                    - HEADER_SIZE : sections[name].offset
                    - HEADER_SIZE
                    + sections[name].length
                ],
                keepalive=mapped,
            )
            for name in V4_COLUMN_SECTIONS
        }
        labels = list(meta["labels"])
        if len(labels) != n_vertices:
            raise SnapshotError(
                f"{path}: snapshot header does not match payload "
                f"(header says |V|={n_vertices}, metadata has {len(labels)})"
            )
        meta_epoch = int(meta["epoch"])
        timestamps = list(meta["timestamps"])
        if meta_epoch != epoch or len(timestamps) != n_ts:
            raise SnapshotError(
                f"{path}: snapshot header does not match payload "
                f"(header says |T|={n_ts}, epoch={epoch}; metadata has "
                f"|T|={len(timestamps)}, epoch={meta_epoch})"
            )
        view = _v4_view_from_columns(meta, columns, meta_epoch)
        adjacency_record = sections["adjacency"]

        def load_adjacency() -> dict:
            return _decode_section(buf, adjacency_record, path)

        boot = LazyGraphBoot(
            view=view,
            timestamps=timestamps,
            epoch=meta_epoch,
            num_edges=n_edges,
            warm_stats=dict(meta.get("warm_stats") or {}),
            load_adjacency=load_adjacency,
        )
        return TemporalGraph.from_lazy_boot(boot), _total_column_bytes(sections)
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise SnapshotError(f"{path}: malformed snapshot state: {exc}") from exc


# ----------------------------------------------------------------------
# extent-local (interval-restricted) boot
# ----------------------------------------------------------------------
def _read_table_block(handle: BinaryIO, path: str, *, payload_len: int) -> bytes:
    """Read just the v4 section-table block with ordinary file reads."""
    handle.seek(HEADER_SIZE)
    table = handle.read(min(payload_len, _TABLE_HEADER_STRUCT.size))
    if len(table) >= _TABLE_HEADER_STRUCT.size:
        _, table_bytes = _TABLE_HEADER_STRUCT.unpack(table)
        if 0 < table_bytes <= payload_len:
            table += handle.read(table_bytes - len(table))
    return table


def _read_section(handle: BinaryIO, record: SnapshotSection, path: str) -> bytes:
    """Seek-read and CRC-check one section without mapping anything."""
    handle.seek(record.offset)
    data = handle.read(record.length)
    if (zlib.crc32(data) & 0xFFFFFFFF) != record.crc32:
        raise SnapshotError(
            f"{path}: snapshot section {record.name!r} checksum mismatch"
        )
    return data


_TS_CELL_STRUCT = struct.Struct("<q")


def _bisect_rows(
    handle: BinaryIO, ts_offset: int, n_edges: int, window
) -> Tuple[int, int]:
    """``[row_lo, row_hi)`` of the rows whose timestamp lies in ``window``.

    Binary search over the sorted on-disk ``view.ts`` extent with 8-byte
    seek-reads — O(log E) tiny I/Os, no mapping, no page faults beyond the
    probed cells.  Mirrors :meth:`GraphView.slice_bounds` exactly.
    """

    def cell(index: int) -> int:
        handle.seek(ts_offset + 8 * index)
        return _TS_CELL_STRUCT.unpack(handle.read(8))[0]

    lo, hi = 0, n_edges
    while lo < hi:  # leftmost row with ts >= window.begin
        mid = (lo + hi) // 2
        if cell(mid) < window.begin:
            lo = mid + 1
        else:
            hi = mid
    row_lo = lo
    hi = n_edges
    while lo < hi:  # leftmost row with ts > window.end
        mid = (lo + hi) // 2
        if cell(mid) <= window.end:
            lo = mid + 1
        else:
            hi = mid
    return row_lo, lo


def _map_rows(
    fileno: int, start: int, length: int
) -> Tuple[MmapColumn, int]:
    """Map ``length`` bytes at file offset ``start`` as an offset column view.

    The mapping offset is aligned down to ``mmap.ALLOCATIONGRANULARITY`` (the
    OS requires it) and the column is the exact ``[start, start + length)``
    sub-view, so alignment slop costs at most one extra page of address
    space.  Returns ``(column, mapped_bytes)``.
    """
    if length <= 0:
        return MmapColumn(memoryview(b"")), 0
    granularity = _mmap.ALLOCATIONGRANULARITY
    aligned = (start // granularity) * granularity
    delta = start - aligned
    mapped = _mmap.mmap(
        fileno, delta + length, access=_mmap.ACCESS_READ, offset=aligned
    )
    column = MmapColumn(memoryview(mapped)[delta : delta + length], keepalive=mapped)
    return column, delta + length


def _boot_v4_extent(
    path: str,
    *,
    interval,
    epoch: int,
    n_vertices: int,
    n_edges: int,
    n_ts: int,
    payload_len: int,
    table_crc: int,
    residency=None,
):
    """Interval-restricted mmap boot: map only the interval's rows.

    Returns ``(graph, (row_lo, row_hi), mapped_bytes, total_bytes)`` for a
    proper row subset, or ``None`` when the interval covers every row — the
    caller then uses the whole-file mapping, which additionally adopts the
    persisted CSR extents instead of rebuilding them.

    The restricted graph keeps the **full vertex label table** (so vertex
    interning, absent-vertex handling and result shapes match the
    unrestricted boot bit-for-bit) but holds only the ``[row_lo, row_hi)``
    edge rows: three page-aligned mappings (``src``/``dst``/``ts`` row
    ranges) instead of eleven whole-column extents.  CSR adjacency is
    rebuilt over the rows — O(rows + V), proportional to the extent, and
    backed by private :class:`IndexColumn` storage rather than mapped pages.
    Queries whose window lies inside ``interval`` see exactly the rows they
    would have seen on the full boot (the window slice of a restricted
    column equals the restricted slice of the full column), so results are
    bit-identical by construction.
    """
    window = as_interval(interval)
    with open(path, "rb") as handle:
        table = _read_table_block(handle, path, payload_len=payload_len)
        sections = _parse_v4_table(
            table, path, payload_len=payload_len, table_crc=table_crc
        )
        _validate_v4_shapes(
            sections, path, n_vertices=n_vertices, n_edges=n_edges
        )
        row_lo, row_hi = _bisect_rows(
            handle, sections["view.ts"].offset, n_edges, window
        )
        if row_lo == 0 and row_hi == n_edges:
            return None
        meta_blob = _read_section(handle, sections["meta"], path)
        try:
            meta = pickle.loads(zlib.decompress(meta_blob))
        except Exception as exc:  # zlib.error, pickle errors, ...
            raise SnapshotError(
                f"{path}: cannot decode snapshot section 'meta': {exc}"
            ) from exc
        rows = row_hi - row_lo
        columns: Dict[str, MmapColumn] = {}
        mapped_bytes = 0
        for name in ("view.src", "view.dst", "view.ts"):
            record = sections[name]
            column, nbytes = _map_rows(
                handle.fileno(), record.offset + 8 * row_lo, 8 * rows
            )
            columns[name] = column
            mapped_bytes += nbytes
            if residency is not None and column._keepalive is not None:
                residency.register(column._keepalive)
    try:
        labels = list(meta["labels"])
        if len(labels) != n_vertices:
            raise SnapshotError(
                f"{path}: snapshot header does not match payload "
                f"(header says |V|={n_vertices}, metadata has {len(labels)})"
            )
        meta_epoch = int(meta["epoch"])
        timestamps = [
            t for t in meta["timestamps"] if window.begin <= t <= window.end
        ]
        src, dst, ts = (
            columns["view.src"],
            columns["view.dst"],
            columns["view.ts"],
        )
        out_offsets, out_edges = _csr(src, n_vertices, rows)
        in_offsets, in_edges = _csr(dst, n_vertices, rows)
        view = GraphView(
            labels, src, dst, ts,
            out_offsets, out_edges, in_offsets, in_edges,
            epoch=meta_epoch,
        )

        def load_adjacency() -> dict:
            # Derived from the mapped rows, not the pickled section: the
            # persisted adjacency covers the whole graph, and unpickling it
            # would both leak out-of-extent edges and fault in its pages.
            # Rows are globally ts-sorted, so per-vertex append order is
            # already timestamp-ascending.
            out = {label: [] for label in labels}
            into = {label: [] for label in labels}
            for s, d, t in zip(src, dst, ts):
                out[labels[s]].append((labels[d], t))
                into[labels[d]].append((labels[s], t))
            return {
                "out": out,
                "in": into,
                "out_timestamps": {
                    label: sorted({t for _, t in entries})
                    for label, entries in out.items()
                },
                "in_timestamps": {
                    label: sorted({t for _, t in entries})
                    for label, entries in into.items()
                },
            }

        boot = LazyGraphBoot(
            view=view,
            timestamps=timestamps,
            epoch=meta_epoch,
            num_edges=rows,
            warm_stats=dict(meta.get("warm_stats") or {}),
            load_adjacency=load_adjacency,
        )
        graph = TemporalGraph.from_lazy_boot(boot)
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise SnapshotError(f"{path}: malformed snapshot state: {exc}") from exc
    return graph, (row_lo, row_hi), mapped_bytes, _total_column_bytes(sections)


def _restrict_graph_eager(graph: TemporalGraph, interval) -> TemporalGraph:
    """Rebuild ``graph`` keeping only the edges inside ``interval``.

    The eager twin of :func:`_boot_v4_extent` for boots that cannot map
    (pre-v4 files, big-endian hosts, failed mappings, ``mmap=False``): the
    full vertex set is preserved and the restricted edge rows are re-sorted
    by the same deterministic key, so query results inside ``interval``
    match the extent-local boot bit-for-bit.  The snapshot's epoch is
    carried over so epoch-keyed caches treat both restrictions as the same
    graph state.
    """
    window = as_interval(interval)
    restricted = TemporalGraph(vertices=list(graph.vertices()))
    restricted.add_edges(
        (u, v, t)
        for (u, v, t) in graph.edge_tuples()
        if window.begin <= t <= window.end
    )
    restricted._epoch = graph.epoch
    restricted.warm_indices()
    return restricted


def _load_legacy_state(
    handle: BinaryIO, path: str, *, payload_len: int, crc: int
) -> dict:
    """Stream-read, CRC-check and decode a v≤3 single-section payload.

    The CRC and the zlib decompression are fed chunk by chunk, so resident
    memory peaks at the *decompressed* state size — the compressed payload
    is never held whole.  The checksum verdict is always reached (and
    reported first) even when a corrupt chunk makes the decompressor choke
    mid-stream.
    """
    crc_calc = 0
    remaining = payload_len
    read_total = 0
    decompressor = zlib.decompressobj()
    parts: List[bytes] = []
    decode_error: Optional[Exception] = None
    while remaining > 0:
        chunk = handle.read(min(_STREAM_CHUNK, remaining))
        if not chunk:
            break
        read_total += len(chunk)
        remaining -= len(chunk)
        crc_calc = zlib.crc32(chunk, crc_calc)
        if decode_error is None:
            try:
                parts.append(decompressor.decompress(chunk))
            except zlib.error as exc:
                decode_error = exc  # keep streaming: finish the CRC verdict
    if read_total < payload_len:
        raise SnapshotError(
            f"{path}: truncated snapshot payload "
            f"({read_total} of {payload_len} bytes)"
        )
    if handle.read(1):
        raise SnapshotError(f"{path}: trailing data after snapshot payload")
    if (crc_calc & 0xFFFFFFFF) != crc:
        raise SnapshotError(f"{path}: snapshot payload checksum mismatch")
    try:
        if decode_error is not None:
            raise decode_error
        parts.append(decompressor.flush())
        return pickle.loads(b"".join(parts))
    except Exception as exc:  # zlib.error, pickle errors, ...
        raise SnapshotError(f"{path}: cannot decode snapshot payload: {exc}") from exc


def _boot_snapshot_file(
    path: PathLike,
    *,
    mmap: bool = False,
    interval=None,
    residency=None,
) -> SnapshotBoot:
    """Load the snapshot *file* at ``path`` — journal replay lives one level up.

    With ``mmap=True`` and a v4 file, the returned graph's columnar view
    reads straight out of the page cache (see :class:`MmapColumn`) and the
    Python-side adjacency hydrates lazily.  Pre-v4 files — and platforms
    whose native byte order can't alias the little-endian extents — degrade
    to the eager boot, with the reason recorded on the returned
    :class:`SnapshotBoot` rather than raised: a readable snapshot always
    boots.

    ``interval`` restricts the boot to the edges whose timestamp lies in
    the (inclusive) interval, preserving the full vertex set.  Combined
    with ``mmap=True`` this is the *extent-local* boot: only the interval's
    rows of the edge columns are mapped (see :func:`_boot_v4_extent`), so a
    shard worker's address space holds its time extent, not the file.  An
    interval spanning every row is a no-op and keeps the whole-file fast
    path.  Eager boots honour the restriction by rebuilding the in-interval
    subgraph after loading.

    ``residency`` is an optional :class:`~repro.store.residency.
    ResidencyPolicy`; every mapping the boot creates is registered with it
    so the serving layer can drive ``madvise`` page advice.

    Raises
    ------
    SnapshotError
        On a missing/unreadable file, bad magic, unsupported version,
        truncated payload, trailing garbage, any checksum mismatch, an
        undecodable section, or header counts that contradict the payload.
    """
    path = os.fspath(path)
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot open snapshot: {exc}") from exc
    reasons: List[str] = []
    with handle:
        version, epoch, n_vertices, n_edges, n_ts, payload_len, crc = _read_header(
            handle, path
        )
        info = SnapshotInfo(
            version=version,
            epoch=epoch,
            num_vertices=n_vertices,
            num_edges=n_edges,
            num_timestamps=n_ts,
            payload_bytes=payload_len,
        )
        if version >= 4:
            file_size = os.fstat(handle.fileno()).st_size
            if file_size < HEADER_SIZE + payload_len:
                raise SnapshotError(
                    f"{path}: truncated snapshot payload "
                    f"({file_size - HEADER_SIZE} of {payload_len} bytes)"
                )
            if file_size > HEADER_SIZE + payload_len:
                raise SnapshotError(f"{path}: trailing data after snapshot payload")
            if mmap:
                if sys.byteorder != "little":
                    reasons.append(
                        "snapshot extents are little-endian and this platform "
                        f"is {sys.byteorder}-endian: booted eagerly (byteswap)"
                    )
                else:
                    try:
                        if interval is not None:
                            extent_boot = _boot_v4_extent(
                                path,
                                interval=interval,
                                epoch=epoch,
                                n_vertices=n_vertices,
                                n_edges=n_edges,
                                n_ts=n_ts,
                                payload_len=payload_len,
                                table_crc=crc,
                                residency=residency,
                            )
                            if extent_boot is not None:
                                graph, rows, mapped_bytes, total = extent_boot
                                return SnapshotBoot(
                                    graph=graph,
                                    info=info,
                                    mmap_requested=True,
                                    mmap_active=True,
                                    row_range=rows,
                                    mapped_column_bytes=mapped_bytes,
                                    total_column_bytes=total,
                                )
                        graph, column_bytes = _boot_v4_mmap(
                            path,
                            epoch=epoch,
                            n_vertices=n_vertices,
                            n_edges=n_edges,
                            n_ts=n_ts,
                            payload_len=payload_len,
                            table_crc=crc,
                            residency=residency,
                        )
                        return SnapshotBoot(
                            graph=graph,
                            info=info,
                            mmap_requested=True,
                            mmap_active=True,
                            row_range=(0, n_edges),
                            mapped_column_bytes=column_bytes,
                            total_column_bytes=column_bytes,
                        )
                    except (OSError, _mmap.error) as exc:
                        reasons.append(
                            f"mmap of the snapshot failed ({exc}): booted eagerly"
                        )
            handle.seek(HEADER_SIZE)
            buf = handle.read(payload_len)
            graph = _load_v4_eager(
                buf,
                path,
                epoch=epoch,
                n_vertices=n_vertices,
                n_edges=n_edges,
                n_ts=n_ts,
                payload_len=payload_len,
                table_crc=crc,
            )
            if interval is not None:
                graph = _restrict_graph_eager(graph, interval)
            return SnapshotBoot(
                graph=graph,
                info=info,
                mmap_requested=mmap,
                mmap_active=False,
                fallback_reasons=reasons,
            )
        if mmap:
            reasons.append(
                f"snapshot format v{version} predates the mmap-able columnar "
                "layout (v4): booted eagerly; re-save with this build to "
                "enable mmap boot"
            )
        state = _load_legacy_state(handle, path, payload_len=payload_len, crc=crc)
    try:
        # Pre-v3 writers sorted equal-timestamp ties in hash-seed order;
        # adopting their backing/view would leak that stale order into a
        # build whose fresh graphs use the deterministic key.
        graph = TemporalGraph.from_warmed_state(state, trust_order=version >= 3)
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"{path}: malformed snapshot state: {exc}") from exc
    _check_counts(
        graph, path, epoch=epoch, n_vertices=n_vertices, n_edges=n_edges, n_ts=n_ts
    )
    if interval is not None:
        graph = _restrict_graph_eager(graph, interval)
    return SnapshotBoot(
        graph=graph,
        info=info,
        mmap_requested=mmap,
        mmap_active=False,
        fallback_reasons=reasons,
    )


def boot_snapshot(
    path: PathLike,
    *,
    mmap: bool = False,
    interval=None,
    residency=None,
) -> SnapshotBoot:
    """Load the snapshot at ``path``, optionally mmap-backed, with provenance.

    See :func:`_boot_snapshot_file` for the file-level semantics (mmap,
    extent-local interval boots, residency registration, fallback reasons).
    On top of that, this wrapper replays the epoch-delta journal sidecar
    (``path + ".tspgjournal"``) if one is present:

    - the journal's base epoch must equal the snapshot epoch to apply —
      appends are then replayed in order through the graph's journaled
      append path (no cache invalidation, no column hydration on an mmap
      boot);
    - a *stale* journal (base epoch below the snapshot epoch) is skipped:
      that is the residue of a compaction whose journal unlink was lost to
      a crash, or of a plain re-save, and its appends are already folded
      into the snapshot;
    - a journal *ahead* of the snapshot (base epoch above it) means the
      snapshot file regressed underneath the journal and raises
      :class:`SnapshotError`.

    ``interval`` restrictions apply to replayed rows too: only appends
    whose timestamp lies inside the interval land in the booted graph.
    ``journal_path``/``journal_records`` on the returned
    :class:`SnapshotBoot` record what was replayed.
    """
    boot = _boot_snapshot_file(
        path, mmap=mmap, interval=interval, residency=residency
    )
    # Deferred import: journal.py imports _commit_bytes and SnapshotError
    # from this module.
    from .journal import journal_path, read_journal, replay_journal

    sidecar = journal_path(path)
    if not os.path.exists(sidecar):
        return boot
    journal, _records = read_journal(sidecar)
    if journal.base_epoch > boot.info.epoch:
        raise SnapshotError(
            f"{sidecar}: journal base epoch {journal.base_epoch} is ahead of "
            f"snapshot epoch {boot.info.epoch}: the snapshot file regressed "
            "underneath its journal"
        )
    if journal.base_epoch < boot.info.epoch:
        # Stale sidecar from a crashed compaction or a plain re-save; its
        # deltas are already folded into the snapshot payload.
        return boot
    boot.journal_path = sidecar
    boot.journal_records = replay_journal(
        boot.graph, sidecar, interval=interval
    )
    return boot


def load_snapshot(
    path: PathLike, *, mmap: bool = False, interval=None
) -> TemporalGraph:
    """Load a fully-warmed :class:`TemporalGraph` from the snapshot at ``path``.

    ``mmap=True`` requests the zero-copy columnar boot (v4 files only; older
    formats degrade to eager — use :func:`boot_snapshot` to observe the
    recorded fallback reasons).  ``interval`` restricts the boot to that
    time range's edges (extent-local mapping when combined with ``mmap``).

    Raises
    ------
    SnapshotError
        On a missing/unreadable file, bad magic, unsupported version,
        truncated payload, trailing garbage, checksum mismatch, an
        undecodable payload, or header counts that contradict the payload.
    """
    return boot_snapshot(path, mmap=mmap, interval=interval).graph
