"""Versioned binary snapshots of a warmed :class:`TemporalGraph`.

A snapshot captures *everything* :meth:`TemporalGraph.warm_indices` builds —
the sorted adjacency lists, the temporally sorted edge list, the distinct
timestamp set, the per-vertex ``T_out(u)`` / ``T_in(u)`` views and (since
format version 2) the frozen CSR columnar :class:`~repro.graph.views.GraphView`
arrays — so a long-lived service can cold-start in O(read) instead of
re-inserting and re-sorting every edge (O(E log E + E·d)), and boots straight
into view-servable state: the zero-materialization query pipeline needs no
per-edge warm-up at all.

File layout::

    +---------------------------------------------------------------+
    | magic ``b"TSPGSNAP"`` | format version (u16)                  |
    | graph epoch (u64)                                             |
    | num_vertices (u64) | num_edges (u64) | num_timestamps (u64)   |
    | payload length (u64) | CRC-32 of payload (u32)                |
    +---------------------------------------------------------------+
    | payload: zlib-compressed pickle of the warmed-state dict      |
    +---------------------------------------------------------------+

Every load validates the magic, the format version, the payload length and
the checksum *before* unpickling, and cross-checks the header counts against
the decoded graph afterwards; any mismatch raises :class:`SnapshotError`
instead of returning garbage.  The payload uses :mod:`pickle` because graph
vertices may be arbitrary hashables (ints, transit-stop strings, tuples);
snapshots are trusted local artifacts, not a wire format.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Union

from ..graph.temporal_graph import TemporalGraph

#: First bytes of every snapshot file.
SNAPSHOT_MAGIC = b"TSPGSNAP"

#: Current format version; bump when the payload layout changes.
#: Version 2 added the columnar GraphView arrays to the warmed state.
#: Version 3 changed no bytes but tightened the ordering contract: the
#: persisted sorted-edge backing (and the view columns aligned with it)
#: break equal-timestamp ties with the deterministic repr-based key, not
#: the writer's hash-seed-dependent set order.
SNAPSHOT_VERSION = 3

#: Versions this build can still read.  Version 1 payloads simply lack the
#: ``view`` columns; version ≤ 2 payloads may carry the old nondeterministic
#: tie order, so their sorted backing and view are *not* adopted — the graph
#: restores fine and re-sorts/rebuilds them lazily on first use (one
#: O(E log E) pass; fresh snapshots keep the full O(read) boot).
SUPPORTED_SNAPSHOT_VERSIONS = (1, 2, SNAPSHOT_VERSION)

#: Header layout: magic, version, epoch, |V|, |E|, |T|, payload length, CRC-32.
_HEADER_STRUCT = struct.Struct(">8sHQQQQQI")

HEADER_SIZE = _HEADER_STRUCT.size

PathLike = Union[str, "os.PathLike[str]"]


class SnapshotError(RuntimeError):
    """Raised when a snapshot file is unreadable, corrupted or incompatible."""


@dataclass(frozen=True)
class SnapshotInfo:
    """Decoded snapshot header (cheap to read: no payload is touched)."""

    version: int
    epoch: int
    num_vertices: int
    num_edges: int
    num_timestamps: int
    payload_bytes: int

    def as_row(self) -> dict:
        """Flat dict for table rendering and CLI output."""
        return {
            "version": self.version,
            "epoch": self.epoch,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "timestamps": self.num_timestamps,
            "payload_bytes": self.payload_bytes,
        }


def _encode(graph: TemporalGraph) -> tuple:
    """Warm ``graph`` and encode it to ``(header, payload, info)``.

    The single place the on-disk layout is produced; :func:`save_snapshot`
    and :func:`snapshot_bytes` both write exactly these bytes.
    """
    state = graph.warmed_state()
    payload = zlib.compress(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
    info = SnapshotInfo(
        version=SNAPSHOT_VERSION,
        epoch=graph.epoch,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_timestamps=len(state["timestamps"]),
        payload_bytes=len(payload),
    )
    header = _HEADER_STRUCT.pack(
        SNAPSHOT_MAGIC,
        info.version,
        info.epoch,
        info.num_vertices,
        info.num_edges,
        info.num_timestamps,
        info.payload_bytes,
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    return header, payload, info


def save_snapshot(graph: TemporalGraph, path: PathLike) -> SnapshotInfo:
    """Warm ``graph`` and write its full index state to ``path``.

    The write goes through a temporary sibling file plus :func:`os.replace`
    so a crash mid-write never leaves a truncated snapshot behind the real
    name.  Returns the header that was written.
    """
    header, payload, info = _encode(graph)
    path = os.fspath(path)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(header)
        handle.write(payload)
    os.replace(tmp_path, path)
    return info


def _read_header(handle: BinaryIO, path: str) -> tuple:
    raw = handle.read(HEADER_SIZE)
    if len(raw) < HEADER_SIZE:
        raise SnapshotError(
            f"{path}: truncated snapshot header ({len(raw)} of {HEADER_SIZE} bytes)"
        )
    magic, version, epoch, n_vertices, n_edges, n_ts, payload_len, crc = (
        _HEADER_STRUCT.unpack(raw)
    )
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path}: not a tspG snapshot (bad magic {magic!r})")
    if version not in SUPPORTED_SNAPSHOT_VERSIONS:
        raise SnapshotError(
            f"{path}: unsupported snapshot format version {version} "
            f"(this build reads versions "
            f"{', '.join(str(v) for v in SUPPORTED_SNAPSHOT_VERSIONS)})"
        )
    return version, epoch, n_vertices, n_edges, n_ts, payload_len, crc


def peek_snapshot(path: PathLike) -> SnapshotInfo:
    """Read and validate only the header of the snapshot at ``path``."""
    path = os.fspath(path)
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot open snapshot: {exc}") from exc
    with handle:
        version, epoch, n_vertices, n_edges, n_ts, payload_len, _ = _read_header(
            handle, path
        )
    return SnapshotInfo(
        version=version,
        epoch=epoch,
        num_vertices=n_vertices,
        num_edges=n_edges,
        num_timestamps=n_ts,
        payload_bytes=payload_len,
    )


def load_snapshot(path: PathLike) -> TemporalGraph:
    """Load a fully-warmed :class:`TemporalGraph` from the snapshot at ``path``.

    Raises
    ------
    SnapshotError
        On a missing/unreadable file, bad magic, unsupported version,
        truncated payload, trailing garbage, checksum mismatch, an
        undecodable payload, or header counts that contradict the payload.
    """
    path = os.fspath(path)
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot open snapshot: {exc}") from exc
    with handle:
        version, epoch, n_vertices, n_edges, n_ts, payload_len, crc = _read_header(
            handle, path
        )
        payload = handle.read(payload_len + 1)
    if len(payload) < payload_len:
        raise SnapshotError(
            f"{path}: truncated snapshot payload "
            f"({len(payload)} of {payload_len} bytes)"
        )
    if len(payload) > payload_len:
        raise SnapshotError(f"{path}: trailing data after snapshot payload")
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise SnapshotError(f"{path}: snapshot payload checksum mismatch")
    try:
        state = pickle.loads(zlib.decompress(payload))
    except Exception as exc:  # zlib.error, pickle errors, ...
        raise SnapshotError(f"{path}: cannot decode snapshot payload: {exc}") from exc
    try:
        # Pre-v3 writers sorted equal-timestamp ties in hash-seed order;
        # adopting their backing/view would leak that stale order into a
        # build whose fresh graphs use the deterministic key.
        graph = TemporalGraph.from_warmed_state(
            state, trust_order=version >= 3
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"{path}: malformed snapshot state: {exc}") from exc
    if (
        graph.num_vertices != n_vertices
        or graph.num_edges != n_edges
        or len(graph.timestamps()) != n_ts
        or graph.epoch != epoch
    ):
        raise SnapshotError(
            f"{path}: snapshot header does not match payload "
            f"(header says |V|={n_vertices}, |E|={n_edges}, |T|={n_ts}, "
            f"epoch={epoch}; payload decodes to |V|={graph.num_vertices}, "
            f"|E|={graph.num_edges}, |T|={len(graph.timestamps())}, "
            f"epoch={graph.epoch})"
        )
    return graph


def snapshot_bytes(graph: TemporalGraph) -> bytes:
    """Serialize ``graph`` to an in-memory snapshot (testing/debug helper)."""
    header, payload, _ = _encode(graph)
    return header + payload
