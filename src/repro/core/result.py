"""Result object of a temporal-simple-path-graph query.

Every algorithm in the library (VUG and all baselines) returns a
:class:`PathGraph`, so results are directly comparable and the analysis
utilities (upper-bound ratios, correctness cross-checks) operate on a single
type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple, Union

from ..graph.edge import TemporalEdge, TimeInterval, Timestamp, Vertex, as_edge, as_interval
from ..graph.temporal_graph import TemporalGraph
from ..graph.views import SubgraphView

EdgeTuple = Tuple[Vertex, Vertex, Timestamp]

#: An intermediate upper-bound graph: an edge-mask view on the default
#: zero-materialization pipeline, a real graph on the materializing one.
UpperBoundGraph = Union[TemporalGraph, SubgraphView]


@dataclass(frozen=True)
class PathGraph:
    """An (s, t, interval)-labelled subgraph — the ``tspG`` or an upper bound of it.

    Attributes
    ----------
    source, target:
        Query endpoints ``s`` and ``t``.
    interval:
        Query time interval ``[τb, τe]``.
    vertices:
        Frozen set of vertices in the path graph.
    edges:
        Frozen set of ``(u, v, τ)`` tuples.
    """

    source: Vertex
    target: Vertex
    interval: TimeInterval
    vertices: FrozenSet[Vertex]
    edges: FrozenSet[EdgeTuple]

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, source: Vertex, target: Vertex, interval) -> "PathGraph":
        """The empty result (no temporal simple path exists)."""
        return cls(
            source=source,
            target=target,
            interval=as_interval(interval),
            vertices=frozenset(),
            edges=frozenset(),
        )

    @classmethod
    def from_members(
        cls,
        source: Vertex,
        target: Vertex,
        interval,
        vertices: Iterable[Vertex],
        edges: Iterable,
    ) -> "PathGraph":
        """Build a result from vertex and edge collections."""
        edge_tuples = frozenset(as_edge(edge).as_tuple() for edge in edges)
        return cls(
            source=source,
            target=target,
            interval=as_interval(interval),
            vertices=frozenset(vertices),
            edges=edge_tuples,
        )

    @classmethod
    def from_edges(cls, source: Vertex, target: Vertex, interval, edges: Iterable) -> "PathGraph":
        """Build a result from edges only; the vertex set is induced."""
        edge_tuples = frozenset(as_edge(edge).as_tuple() for edge in edges)
        vertices: Set[Vertex] = set()
        for u, v, _ in edge_tuples:
            vertices.add(u)
            vertices.add(v)
        return cls(
            source=source,
            target=target,
            interval=as_interval(interval),
            vertices=frozenset(vertices),
            edges=edge_tuples,
        )

    @classmethod
    def from_graph(cls, source: Vertex, target: Vertex, interval, graph: TemporalGraph) -> "PathGraph":
        """Wrap an existing :class:`TemporalGraph` as a result."""
        return cls(
            source=source,
            target=target,
            interval=as_interval(interval),
            vertices=frozenset(graph.vertices()),
            edges=frozenset(graph.edge_tuples()),
        )

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the path graph."""
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges in the path graph."""
        return len(self.edges)

    @property
    def is_empty(self) -> bool:
        """``True`` when the path graph has no edges."""
        return not self.edges

    def temporal_edges(self) -> Iterator[TemporalEdge]:
        """Iterate edges as :class:`TemporalEdge` objects."""
        for u, v, t in self.edges:
            yield TemporalEdge(u, v, t)

    def to_temporal_graph(self) -> TemporalGraph:
        """Materialise the path graph as a :class:`TemporalGraph`."""
        graph = TemporalGraph(vertices=self.vertices)
        for u, v, t in self.edges:
            graph.add_edge(u, v, t)
        return graph

    def contains_edge(self, edge) -> bool:
        """``True`` iff ``edge`` belongs to the path graph."""
        return as_edge(edge).as_tuple() in self.edges

    def contains_vertex(self, vertex: Vertex) -> bool:
        """``True`` iff ``vertex`` belongs to the path graph."""
        return vertex in self.vertices

    def is_subgraph_of(self, other: "PathGraph") -> bool:
        """``True`` iff this graph's vertices and edges are contained in ``other``'s."""
        return self.vertices <= other.vertices and self.edges <= other.edges

    def same_members(self, other: "PathGraph") -> bool:
        """``True`` iff both results have identical vertex and edge sets."""
        return self.vertices == other.vertices and self.edges == other.edges

    def edge_difference(self, other: "PathGraph") -> Tuple[Set[EdgeTuple], Set[EdgeTuple]]:
        """Return ``(edges only here, edges only in other)`` — debugging helper."""
        return (set(self.edges) - set(other.edges), set(other.edges) - set(self.edges))

    def summary(self) -> Dict[str, object]:
        """Small dict used by the CLI and the benchmark reports."""
        return {
            "source": self.source,
            "target": self.target,
            "interval": self.interval.as_tuple(),
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
        }

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[EdgeTuple]:
        return iter(self.edges)

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PathGraph(s={self.source!r}, t={self.target!r}, "
            f"interval={self.interval}, |V|={self.num_vertices}, |E|={self.num_edges})"
        )


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each phase of VUG (Exp-4)."""

    quick_ubg: float = 0.0
    tight_ubg: float = 0.0
    eev: float = 0.0

    @property
    def total(self) -> float:
        """Total time across the three phases."""
        return self.quick_ubg + self.tight_ubg + self.eev

    def as_dict(self) -> Dict[str, float]:
        """Plain dict (phase name → seconds)."""
        return {
            "QuickUBG": self.quick_ubg,
            "TightUBG": self.tight_ubg,
            "EEV": self.eev,
            "total": self.total,
        }

    def accumulate(self, other: "PhaseTimings") -> None:
        """Add another query's phase timings into this accumulator."""
        self.quick_ubg += other.quick_ubg
        self.tight_ubg += other.tight_ubg
        self.eev += other.eev


@dataclass
class VUGReport:
    """Full VUG output: exact result, intermediate graphs and phase timings.

    ``upper_bound_quick`` / ``upper_bound_tight`` expose ``Gq`` and ``Gt`` so
    the upper-bound-ratio experiments (Table II / Fig. 10) and the EEV-only
    experiments (Fig. 11) can reuse the intermediate products without
    recomputing them.  On the default zero-materialization pipeline they are
    edge-mask :class:`~repro.graph.views.SubgraphView` objects (same read
    API; call ``.materialize()`` for a mutable :class:`TemporalGraph`);
    ``VUG(zero_materialization=False)`` yields real graphs.
    """

    result: PathGraph
    upper_bound_quick: Optional[UpperBoundGraph] = None
    upper_bound_tight: Optional[UpperBoundGraph] = None
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    space_cost: int = 0
    eev_statistics: Optional[object] = None
    #: ``True`` when a cooperative :class:`~repro.core.deadline.Deadline`
    #: cut the pipeline off before the exact result was produced; the
    #: ``result`` is then the empty path graph, never a partial one.
    timed_out: bool = False

    @property
    def tspg(self) -> PathGraph:
        """Alias for :attr:`result`."""
        return self.result
