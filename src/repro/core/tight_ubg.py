"""Tight upper-bound graph generation (Algorithm 5 of the paper).

Starting from the quick upper-bound graph ``Gq`` and the time-stream common
vertices, an edge ``e(u, v, τ)`` with ``u ≠ s`` and ``v ≠ t`` survives into the
tight upper-bound graph ``Gt`` iff

``TCV_τl(s, u) ∩ TCV_τr(v, t) = ∅``

where ``τl`` is the largest in-timestamp of ``u`` below ``τ`` and ``τr`` the
smallest out-timestamp of ``v`` above ``τ`` (Lemma 8 shows this single
intersection subsumes all other timestamp combinations).  Edges leaving ``s``
or entering ``t`` are kept unconditionally (Lemma 2).  The result is still an
upper bound of the ``tspG`` (Lemma 3 is necessary but not sufficient), but a
much tighter one than ``Gq`` because it also encodes the simple-path
constraint.

Zero-materialization kernel: when ``Gq`` arrives as an edge-mask
:class:`~repro.graph.views.SubgraphView` (the output of the refactored
QuickUBG), the filter *refines the mask in place of building a graph* — the
surviving edges share the parent's columnar storage and no per-edge
insertion happens.  A :class:`~repro.graph.temporal_graph.TemporalGraph`
input falls back to the pre-refactor materializing scan, also available
directly as :func:`tight_upper_bound_graph_materializing`.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple, Union

from ..graph.edge import Vertex, as_interval
from ..graph.temporal_graph import TemporalGraph
from ..graph.views import SubgraphView
from .tcv import TimeStreamCommonVertices, compute_time_stream_common_vertices

QuickGraph = Union[TemporalGraph, SubgraphView]


def tight_upper_bound_graph(
    quick_graph: QuickGraph,
    source: Vertex,
    target: Vertex,
    interval,
    tcv: Optional[TimeStreamCommonVertices] = None,
) -> QuickGraph:
    """Compute the tight upper-bound graph ``Gt`` (Algorithm 5).

    Parameters
    ----------
    quick_graph:
        The quick upper-bound graph ``Gq`` produced by
        :func:`~repro.core.quick_ubg.quick_upper_bound_graph` — an edge-mask
        :class:`SubgraphView` on the zero-materialization path, or a plain
        :class:`TemporalGraph` from legacy callers.
    tcv:
        Pre-computed time-stream common vertices; computed here (Algorithm 4)
        when omitted.

    Returns
    -------
    SubgraphView or TemporalGraph
        The same shape as the input: a refined mask view for a view input
        (zero copies), a freshly built graph for a graph input.
    """
    window = as_interval(interval)
    if tcv is None:
        tcv = compute_time_stream_common_vertices(quick_graph, source, target, window)
    if isinstance(quick_graph, SubgraphView):
        return _tight_mask(quick_graph, source, target, tcv)
    return tight_upper_bound_graph_materializing(
        quick_graph, source, target, window, tcv=tcv
    )


def _tight_mask(
    quick: SubgraphView, source: Vertex, target: Vertex, tcv: TimeStreamCommonVertices
) -> SubgraphView:
    """Refine the quick mask with the Lemma 9 filter (no edge copies)."""
    base = quick.base
    labels, src, dst, ts = base.labels, base.src, base.dst, base.ts
    source_id = base.index_of.get(source, -1)
    target_id = base.index_of.get(target, -1)
    indices: list = []
    vids: Set[int] = set()
    for index in quick.iter_indices():
        u = src[index]
        v = dst[index]
        if u != source_id and v != target_id:
            # Lemma 9 condition i) via the Algorithm 5 defaults.
            if not _passes_tcv_filter(tcv, labels[u], labels[v], ts[index]):
                continue
        # else: Lemma 2 / Algorithm 5 lines 4-6 — edges incident to the
        # query endpoints are always part of some temporal simple path.
        indices.append(index)
        vids.add(u)
        vids.add(v)
    # Carry the kernel backend forward so EEV's grouped adjacency expansion
    # over Gt runs on the same (vectorized or pure-Python) path as Gq.
    return SubgraphView(base, indices, vids, backend=quick.backend)


def tight_upper_bound_graph_materializing(
    quick_graph: TemporalGraph,
    source: Vertex,
    target: Vertex,
    interval,
    tcv: Optional[TimeStreamCommonVertices] = None,
) -> TemporalGraph:
    """Pre-refactor TightUBG: build ``Gt`` as a fresh :class:`TemporalGraph`.

    Kept as the reference implementation for the randomized oracle and the
    exp11 benchmark; new code should pass views through
    :func:`tight_upper_bound_graph`.
    """
    window = as_interval(interval)
    if tcv is None:
        tcv = compute_time_stream_common_vertices(quick_graph, source, target, window)
    tight = TemporalGraph()
    for edge in quick_graph.sorted_edges():
        u, v, timestamp = edge.source, edge.target, edge.timestamp
        if u == source or v == target:
            # Lemma 2 / Algorithm 5 lines 4-6: edges incident to the query
            # endpoints are always part of some temporal simple path.
            tight.add_edge(u, v, timestamp)
            continue
        if _passes_tcv_filter(tcv, u, v, timestamp):
            tight.add_edge(u, v, timestamp)
    return tight


def _passes_tcv_filter(
    tcv: TimeStreamCommonVertices, u: Vertex, v: Vertex, timestamp: int
) -> bool:
    """Lemma 9 condition i): keep the edge iff the two TCV sets are disjoint.

    Looking the source side up at ``timestamp - 1`` and the target side at
    ``timestamp + 1`` is equivalent to using ``τl`` / ``τr`` directly
    (Lemma 5), with the Algorithm 5 defaults ``{u}`` / ``{v}`` when no entry
    applies.
    """
    from_source = tcv.from_source_or_default(u, timestamp - 1)
    to_target = tcv.to_target_or_default(v, timestamp + 1)
    return not (from_source & to_target)


def tight_upper_bound_with_tcv(
    quick_graph: QuickGraph, source: Vertex, target: Vertex, interval
) -> Tuple[QuickGraph, TimeStreamCommonVertices]:
    """Convenience wrapper returning both ``Gt`` and the TCV tables."""
    window = as_interval(interval)
    tcv = compute_time_stream_common_vertices(quick_graph, source, target, window)
    return (
        tight_upper_bound_graph(quick_graph, source, target, window, tcv=tcv),
        tcv,
    )
