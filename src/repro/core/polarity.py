"""Polarity time computation (Algorithm 3 of the paper).

For a query ``(s, t, [τb, τe])`` the *polarity times* of a vertex ``u`` are

* the earliest arrival time ``A(u)``: the smallest arrival timestamp over all
  temporal paths from ``s`` to ``u`` within the interval that do **not** pass
  through ``t`` (``+inf`` when none exists), with the convention
  ``A(s) = τb - 1``;
* the latest departure time ``D(u)``: the largest departure timestamp over all
  temporal paths from ``u`` to ``t`` within the interval that do **not** pass
  through ``s`` (``-inf`` when none exists), with ``D(t) = τe + 1``.

Both sweeps run in ``O(n + m)`` time using a FIFO queue and the monotone
relaxations of Algorithm 3, avoiding the ``O(log n)`` priority-queue factor of
the Dijkstra-based ``tgTSG`` baseline — this is the asymptotic (and measured,
Fig. 9) advantage of QuickUBG over tgTSG.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph.edge import TimeInterval, Vertex, as_interval
from ..graph.temporal_graph import TemporalGraph
from ..graph.views import GraphView

INFINITY = float("inf")
NEG_INFINITY = float("-inf")


@dataclass(frozen=True)
class PolarityTimes:
    """The two polarity-time tables of a query (Definition 4)."""

    arrival: Dict[Vertex, float]
    departure: Dict[Vertex, float]
    source: Vertex
    target: Vertex
    interval: TimeInterval

    def earliest_arrival(self, vertex: Vertex) -> float:
        """``A(vertex)`` (``+inf`` when unreachable from ``s``)."""
        return self.arrival.get(vertex, INFINITY)

    def latest_departure(self, vertex: Vertex) -> float:
        """``D(vertex)`` (``-inf`` when ``t`` is unreachable from ``vertex``)."""
        return self.departure.get(vertex, NEG_INFINITY)

    def admits_edge(self, source: Vertex, target: Vertex, timestamp: int) -> bool:
        """Lemma 1: the edge lies on some temporal s-t path iff ``A(u) < τ < D(v)``."""
        return self.earliest_arrival(source) < timestamp < self.latest_departure(target)


def compute_polarity_times(
    graph: TemporalGraph,
    source: Vertex,
    target: Vertex,
    interval,
) -> PolarityTimes:
    """Compute ``A(·)`` and ``D(·)`` for every vertex (Algorithm 3).

    The forward sweep relaxes out-edges from ``s`` (never expanding ``t``), the
    backward sweep relaxes in-edges from ``t`` (never expanding ``s``); each
    vertex keeps a monotone best value so each edge is examined a bounded
    number of times.
    """
    window = as_interval(interval)
    arrival = _sweep_earliest_arrival(graph, source, target, window)
    departure = _sweep_latest_departure(graph, source, target, window)
    return PolarityTimes(
        arrival=arrival,
        departure=departure,
        source=source,
        target=target,
        interval=window,
    )


def compute_polarity_id_arrays(
    view: GraphView,
    source: Vertex,
    target: Vertex,
    interval,
) -> Tuple[List[float], List[float]]:
    """Algorithm 3 over the frozen CSR view, in interned-id space.

    Returns ``(arrival_by_id, departure_by_id)`` — lists indexed by interned
    vertex id with the same values :func:`compute_polarity_times` produces
    (the sweeps converge to the unique earliest-arrival/latest-departure
    fixed point, so the two implementations are interchangeable).  This is
    the polarity kernel of the zero-materialization pipeline: dense lists
    replace hash tables, and the per-vertex timestamp lists the dict-based
    sweeps rebuild every query are bisected *in place* on the view's
    CSR-aligned ``out_ts``/``in_ts`` columns instead.
    """
    window = as_interval(interval)
    source_id = view.index_of.get(source)
    target_id = view.index_of.get(target)
    arrival = _sweep_arrival_ids(view, source_id, target_id, window)
    departure = _sweep_departure_ids(view, source_id, target_id, window)
    return arrival, departure


def _sweep_arrival_ids(
    view: GraphView, source_id, target_id, window: TimeInterval
) -> List[float]:
    """Id-space forward sweep (mirror of :func:`_sweep_earliest_arrival`)."""
    num_vertices = view.num_vertices
    arrival: List[float] = [INFINITY] * num_vertices
    if source_id is None:
        return arrival
    arrival[source_id] = window.begin - 1
    queue = deque([source_id])
    queued = bytearray(num_vertices)
    queued[source_id] = 1
    # Lowest out-CSR position already relaxed per vertex (exclusive stop).
    processed_from: Dict[int, int] = {}
    offsets, out_ts, out_dst = view.out_offsets, view.out_ts, view.out_dst
    window_end = window.end
    floor = window.begin - 1
    while queue:
        u = queue.popleft()
        queued[u] = 0
        current = arrival[u]
        begin, end = offsets[u], offsets[u + 1]
        stop = processed_from.get(u, end)
        bound = current if current > floor else floor
        start = bisect_right(out_ts, bound, begin, end)
        if start >= stop:
            continue
        processed_from[u] = start
        for position in range(start, stop):
            timestamp = out_ts[position]
            if timestamp > window_end:
                break
            v = out_dst[position]
            if v == target_id:
                # Algorithm 3 line 6: do not expand through the target.
                continue
            if timestamp >= arrival[v]:
                continue
            arrival[v] = timestamp
            if timestamp != window_end and not queued[v]:
                queue.append(v)
                queued[v] = 1
    return arrival


def _sweep_departure_ids(
    view: GraphView, source_id, target_id, window: TimeInterval
) -> List[float]:
    """Id-space backward sweep (mirror of :func:`_sweep_latest_departure`)."""
    num_vertices = view.num_vertices
    departure: List[float] = [NEG_INFINITY] * num_vertices
    if target_id is None:
        return departure
    departure[target_id] = window.end + 1
    queue = deque([target_id])
    queued = bytearray(num_vertices)
    queued[target_id] = 1
    # Highest in-CSR position (exclusive) already relaxed per vertex.
    processed_to: Dict[int, int] = {}
    offsets, in_ts, in_src = view.in_offsets, view.in_ts, view.in_src
    window_begin = window.begin
    ceiling = window.end + 1
    while queue:
        u = queue.popleft()
        queued[u] = 0
        current = departure[u]
        begin, end = offsets[u], offsets[u + 1]
        start = processed_to.get(u, begin)
        bound = current if current < ceiling else ceiling
        stop = bisect_left(in_ts, bound, begin, end)
        if stop <= start:
            continue
        processed_to[u] = stop
        for position in range(start, stop):
            timestamp = in_ts[position]
            if timestamp < window_begin:
                continue
            v = in_src[position]
            if v == source_id:
                # Mirror of the forward sweep: never expand through s.
                continue
            if timestamp <= departure[v]:
                continue
            departure[v] = timestamp
            if timestamp != window_begin and not queued[v]:
                queue.append(v)
                queued[v] = 1
    return departure


def _sweep_earliest_arrival(
    graph: TemporalGraph, source: Vertex, target: Vertex, window: TimeInterval
) -> Dict[Vertex, float]:
    """Forward BFS-like sweep computing ``A(u)`` for all vertices.

    Each vertex keeps a pointer into its timestamp-sorted out-neighbour list
    (Algorithm 3's per-vertex pointer): when a vertex is re-visited with an
    earlier arrival time, only the newly eligible prefix of edges — those with
    timestamps between the new and the previously processed arrival bound —
    is scanned, so every edge is relaxed O(1) times overall.
    """
    from bisect import bisect_right

    arrival: Dict[Vertex, float] = {v: INFINITY for v in graph.vertices()}
    if not graph.has_vertex(source):
        return arrival
    arrival[source] = window.begin - 1
    queue = deque([source])
    queued = {source}
    # Lowest out-neighbour index already relaxed for each vertex; entries at
    # and beyond this index never need to be scanned again.
    processed_from: Dict[Vertex, int] = {}
    out_times: Dict[Vertex, list] = {}
    while queue:
        u = queue.popleft()
        queued.discard(u)
        current = arrival[u]
        entries = graph.out_neighbors_view(u)
        times = out_times.get(u)
        if times is None:
            times = [t for _, t in entries]
            out_times[u] = times
        stop = processed_from.get(u, len(entries))
        start = bisect_right(times, current if current > window.begin - 1 else window.begin - 1)
        if start >= stop:
            continue
        processed_from[u] = start
        for index in range(start, stop):
            v, timestamp = entries[index]
            if timestamp > window.end:
                break
            if v == target:
                # Algorithm 3 line 6: do not expand through the target; A(t)
                # stays +inf and paths via t are never used for other vertices.
                continue
            if timestamp >= arrival[v]:
                # Not an improvement (Algorithm 3 line 7).
                continue
            arrival[v] = timestamp
            # Algorithm 3 line 9 skips re-queueing when τ = τe because no
            # further strict extension is possible from v in that case.
            if timestamp != window.end and v not in queued:
                queue.append(v)
                queued.add(v)
    return arrival


def _sweep_latest_departure(
    graph: TemporalGraph, source: Vertex, target: Vertex, window: TimeInterval
) -> Dict[Vertex, float]:
    """Backward sweep computing ``D(u)`` for all vertices (mirror of the forward sweep)."""
    from bisect import bisect_left

    departure: Dict[Vertex, float] = {v: NEG_INFINITY for v in graph.vertices()}
    if not graph.has_vertex(target):
        return departure
    departure[target] = window.end + 1
    queue = deque([target])
    queued = {target}
    # Highest in-neighbour index (exclusive) already relaxed for each vertex.
    processed_to: Dict[Vertex, int] = {}
    in_times: Dict[Vertex, list] = {}
    while queue:
        u = queue.popleft()
        queued.discard(u)
        current = departure[u]
        entries = graph.in_neighbors_view(u)
        times = in_times.get(u)
        if times is None:
            times = [t for _, t in entries]
            in_times[u] = times
        start = processed_to.get(u, 0)
        bound = current if current < window.end + 1 else window.end + 1
        stop = bisect_left(times, bound)
        if stop <= start:
            continue
        processed_to[u] = stop
        for index in range(start, stop):
            v, timestamp = entries[index]
            if timestamp < window.begin:
                continue
            if v == source:
                # Mirror of the forward sweep: never expand through s.
                continue
            if timestamp <= departure[v]:
                continue
            departure[v] = timestamp
            if timestamp != window.begin and v not in queued:
                queue.append(v)
                queued.add(v)
    return departure
