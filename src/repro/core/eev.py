"""Escaped edges verification (Algorithms 6 and 7 of the paper).

``EEV`` turns the tight upper-bound graph ``Gt`` into the exact ``tspG``
without enumerating all temporal simple paths:

1. Edges incident to ``s`` or ``t`` are confirmed directly (Lemma 2), and so
   are edges one hop away from them via a cheap timestamp comparison
   (Lemma 10).
2. Every remaining ("escaped") edge is verified at most once: a bidirectional
   DFS (Algorithm 7) searches for a single temporal simple path through it;
   when one is found, every edge of that path *and* every parallel replacement
   edge allowed by Lemma 11 is confirmed in one batch, so edges shared by many
   paths are never re-processed.

Two optimisations from Section V are implemented:

* *Prioritisation of search direction* — the longer of the two half-searches
  (estimated from ``τ - τb`` vs ``τe - τ``) runs first, so failures are
  discovered before effort is spent on the easier half.
* *Neighbour exploration order* — the forward search explores out-neighbours
  in non-ascending temporal order and the backward search in-neighbours in
  non-descending temporal order, biasing the DFS towards short witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..graph.edge import TemporalEdge, TimeInterval, Timestamp, Vertex, as_interval
from ..graph.temporal_graph import TemporalGraph
from ..graph.views import SubgraphView
from ..paths.temporal_path import TemporalPath
from .deadline import Deadline
from .result import PathGraph


class EEVDeadlineExpired(RuntimeError):
    """Raised by :func:`escaped_edges_verification` when its deadline expires.

    The cooperative cut-off signal of the EEV phase: the caller (VUG's
    pipeline) catches it and reports the query as ``timed_out``.  Raised at
    most one node expansion past the deadline instant — the search polls at
    every expansion — so the cut-off slack is bounded by a single edge
    expansion, not by a whole witness search.
    """

EdgeTuple = Tuple[Vertex, Vertex, Timestamp]

#: EEV consumes only the read API shared by graphs and edge-mask views
#: (``sorted_edges``/``num_edges``/``out_neighbors_view``/``in_neighbors_view``),
#: so the zero-materialization pipeline feeds it ``Gt`` as a mask view.
TightGraph = Union[TemporalGraph, SubgraphView]


@dataclass
class EEVStatistics:
    """Counters describing how the verification work was distributed."""

    edges_total: int = 0
    confirmed_by_lemma2: int = 0
    confirmed_by_lemma10: int = 0
    confirmed_by_search: int = 0
    confirmed_by_replacement: int = 0
    rejected_by_search: int = 0
    searches_performed: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by benchmark reports."""
        return {
            "edges_total": self.edges_total,
            "confirmed_by_lemma2": self.confirmed_by_lemma2,
            "confirmed_by_lemma10": self.confirmed_by_lemma10,
            "confirmed_by_search": self.confirmed_by_search,
            "confirmed_by_replacement": self.confirmed_by_replacement,
            "rejected_by_search": self.rejected_by_search,
            "searches_performed": self.searches_performed,
        }


def escaped_edges_verification(
    tight_graph: TightGraph,
    source: Vertex,
    target: Vertex,
    interval,
    use_lemma10: bool = True,
    collect_statistics: bool = False,
    deadline: Optional[Deadline] = None,
) -> PathGraph | Tuple[PathGraph, EEVStatistics]:
    """Algorithm 6: produce the exact ``tspG`` from the tight upper-bound graph.

    Parameters
    ----------
    tight_graph:
        The tight upper-bound graph ``Gt`` (or any upper bound of the ``tspG``
        that is itself a subgraph of ``Gq`` — see the Lemma 10 note below).
        Accepts a :class:`TemporalGraph` or a zero-copy
        :class:`~repro.graph.views.SubgraphView`; per-vertex adjacency of a
        view is materialised lazily and cached inside the view, so the
        bidirectional searches below pay no repeated mask scans.
    use_lemma10:
        Enable the one-hop confirmation shortcut.  Its proof relies on the
        input being the tight upper-bound graph of the same query; disable it
        when verifying edges of an arbitrary upper bound.
    collect_statistics:
        Also return an :class:`EEVStatistics` with per-rule counters.
    deadline:
        Optional cooperative cut-off.  Polled before every escaped-edge
        search *and* at every node expansion inside the bidirectional
        search; on expiry :class:`EEVDeadlineExpired` is raised promptly
        (slack: one edge expansion).  Queries that finish before the
        deadline produce bit-identical results to a deadline-free run —
        the polls are read-only.
    """
    window = as_interval(interval)
    stats = EEVStatistics(edges_total=tight_graph.num_edges)

    result_vertices: Set[Vertex] = set()
    result_edges: Set[EdgeTuple] = set()
    verified: Set[EdgeTuple] = set()

    ordered_edges = tight_graph.sorted_edges()

    # ------------------------------------------------------------------
    # Lines 2-5: direct confirmation via Lemmas 2 and 10.
    # ------------------------------------------------------------------
    earliest_from_source: Dict[Vertex, Timestamp] = {}
    latest_into_target: Dict[Vertex, Timestamp] = {}
    for v, timestamp in tight_graph.out_neighbors_view(source):
        if window.contains(timestamp):
            current = earliest_from_source.get(v)
            if current is None or timestamp < current:
                earliest_from_source[v] = timestamp
    for u, timestamp in tight_graph.in_neighbors_view(target):
        if window.contains(timestamp):
            current = latest_into_target.get(u)
            if current is None or timestamp > current:
                latest_into_target[u] = timestamp

    for edge in ordered_edges:
        u, v, timestamp = edge.source, edge.target, edge.timestamp
        key = (u, v, timestamp)
        if u == source or v == target:
            verified.add(key)
            result_edges.add(key)
            result_vertices.update((u, v))
            stats.confirmed_by_lemma2 += 1
            continue
        if not use_lemma10:
            continue
        direct_in = earliest_from_source.get(u)
        direct_out = latest_into_target.get(v)
        if (direct_in is not None and direct_in < timestamp) or (
            direct_out is not None and timestamp < direct_out
        ):
            verified.add(key)
            result_edges.add(key)
            result_vertices.update((u, v))
            stats.confirmed_by_lemma10 += 1

    # ------------------------------------------------------------------
    # Lines 6-19: bidirectional search for each remaining escaped edge.
    # ------------------------------------------------------------------
    searcher = BidirectionalSearcher(
        tight_graph, source, target, window, deadline=deadline
    )
    for edge in ordered_edges:
        key = edge.as_tuple()
        if key in verified:
            continue
        if deadline is not None and deadline.expired():
            raise EEVDeadlineExpired(
                f"deadline expired after {stats.searches_performed} of the "
                f"escaped-edge searches"
            )
        stats.searches_performed += 1
        witness = searcher.find_witness_path(edge)
        if witness is None:
            # The edge lies on no temporal simple path; remember the verdict
            # so later iterations do not retry it.
            verified.add(key)
            stats.rejected_by_search += 1
            continue
        newly_confirmed = _confirm_path_and_replacements(
            tight_graph, witness, window, verified, result_vertices, result_edges
        )
        stats.confirmed_by_search += 1
        stats.confirmed_by_replacement += max(0, newly_confirmed - len(witness))

    tspg = PathGraph.from_members(source, target, window, result_vertices, result_edges)
    if collect_statistics:
        return tspg, stats
    return tspg


def _confirm_path_and_replacements(
    graph: TightGraph,
    witness: TemporalPath,
    window: TimeInterval,
    verified: Set[EdgeTuple],
    result_vertices: Set[Vertex],
    result_edges: Set[EdgeTuple],
) -> int:
    """Add the witness path and its Lemma 11 replacement edges to the result.

    For the ``i``-th hop ``(u_{i-1}, u_i)`` of the witness, any parallel edge
    whose timestamp lies strictly between the neighbouring hops' timestamps
    (with the interval bounds at the path ends) also completes a temporal
    simple path and is confirmed in the same batch.  Returns the number of
    edges newly confirmed.
    """
    edges = list(witness.edges)
    vertices = witness.vertices()
    result_vertices.update(vertices)
    confirmed = 0
    for index, edge in enumerate(edges):
        lower = window.begin - 1 if index == 0 else edges[index - 1].timestamp
        upper = window.end + 1 if index == len(edges) - 1 else edges[index + 1].timestamp
        for neighbor, timestamp in graph.out_neighbors_view(edge.source):
            if neighbor != edge.target:
                continue
            if not (lower < timestamp < upper):
                continue
            key = (edge.source, edge.target, timestamp)
            if key not in result_edges:
                confirmed += 1
            result_edges.add(key)
            verified.add(key)
    return confirmed


class BidirectionalSearcher:
    """Algorithm 7: bidirectional DFS for one temporal simple path through an edge."""

    def __init__(
        self,
        graph: TightGraph,
        source: Vertex,
        target: Vertex,
        interval: TimeInterval,
        deadline: Optional[Deadline] = None,
    ) -> None:
        self._graph = graph
        self._source = source
        self._target = target
        self._interval = interval
        self._deadline = deadline

    def _check_deadline(self) -> None:
        """Cooperative poll, one per node expansion (no-op without a deadline).

        A single witness search can visit exponentially many states on an
        adversarial graph, so polling only *between* searches would leave
        the cut-off slack unbounded; polling at every expansion bounds it
        by one edge expansion.
        """
        if self._deadline is not None and self._deadline.expired():
            raise EEVDeadlineExpired("deadline expired inside a witness search")

    # ------------------------------------------------------------------
    def find_witness_path(self, edge: TemporalEdge) -> Optional[TemporalPath]:
        """Return a temporal simple path ``s → … → t`` through ``edge`` (or ``None``).

        The search space is the graph the searcher was built with; because the
        ``tspG`` is a subgraph of any upper bound, searching inside ``Gt`` is
        both sound and complete.
        """
        u, v, timestamp = edge.source, edge.target, edge.timestamp
        if not self._interval.contains(timestamp):
            return None
        if u == self._source and v == self._target:
            return TemporalPath([edge])

        visited: Set[Vertex] = {u, v}
        forward_needed = v != self._target
        backward_needed = u != self._source

        # Optimisation i): run the potentially longer half first.
        forward_first = (timestamp - self._interval.begin) > (self._interval.end - timestamp)

        def run_forward_then_backward() -> Optional[TemporalPath]:
            if not forward_needed:
                backward = self._first_backward_path(u, timestamp, visited)
                if backward is None:
                    return None
                return TemporalPath(backward + [edge])
            for forward in self._forward_paths(v, timestamp, visited):
                if not backward_needed:
                    return TemporalPath([edge] + forward)
                backward = self._first_backward_path(u, timestamp, visited)
                if backward is not None:
                    return TemporalPath(backward + [edge] + forward)
            return None

        def run_backward_then_forward() -> Optional[TemporalPath]:
            if not backward_needed:
                forward = self._first_forward_path(v, timestamp, visited)
                if forward is None:
                    return None
                return TemporalPath([edge] + forward)
            for backward in self._backward_paths(u, timestamp, visited):
                if not forward_needed:
                    return TemporalPath(backward + [edge])
                forward = self._first_forward_path(v, timestamp, visited)
                if forward is not None:
                    return TemporalPath(backward + [edge] + forward)
            return None

        if forward_first:
            return run_forward_then_backward()
        return run_backward_then_forward()

    # ------------------------------------------------------------------
    # forward half: simple paths  vertex → … → t  with ascending timestamps
    # ------------------------------------------------------------------
    def _forward_paths(self, vertex: Vertex, last_time: Timestamp, visited: Set[Vertex]):
        """Yield forward half-paths as edge lists; ``visited`` reflects the current path."""
        self._check_deadline()
        # Non-ascending exploration order (optimisation ii).
        entries = [
            (w, ts)
            for w, ts in self._graph.out_neighbors_view(vertex)
            if last_time < ts <= self._interval.end
        ]
        for w, ts in sorted(entries, key=lambda item: -item[1]):
            hop = TemporalEdge(vertex, w, ts)
            if w == self._target:
                yield [hop]
                continue
            if w in visited or w == self._source:
                continue
            visited.add(w)
            for rest in self._forward_paths(w, ts, visited):
                yield [hop] + rest
            visited.discard(w)

    def _first_forward_path(
        self, vertex: Vertex, last_time: Timestamp, visited: Set[Vertex]
    ) -> Optional[List[TemporalEdge]]:
        for path in self._forward_paths(vertex, last_time, visited):
            return path
        return None

    # ------------------------------------------------------------------
    # backward half: simple paths  s → … → vertex  with ascending timestamps
    # ------------------------------------------------------------------
    def _backward_paths(self, vertex: Vertex, next_time: Timestamp, visited: Set[Vertex]):
        """Yield backward half-paths (already oriented s → … → vertex)."""
        self._check_deadline()
        # Non-descending exploration order (optimisation ii).
        entries = [
            (w, ts)
            for w, ts in self._graph.in_neighbors_view(vertex)
            if self._interval.begin <= ts < next_time
        ]
        for w, ts in sorted(entries, key=lambda item: item[1]):
            hop = TemporalEdge(w, vertex, ts)
            if w == self._source:
                yield [hop]
                continue
            if w in visited or w == self._target:
                continue
            visited.add(w)
            for rest in self._backward_paths(w, ts, visited):
                yield rest + [hop]
            visited.discard(w)

    def _first_backward_path(
        self, vertex: Vertex, next_time: Timestamp, visited: Set[Vertex]
    ) -> Optional[List[TemporalEdge]]:
        for path in self._backward_paths(vertex, next_time, visited):
            return path
        return None
