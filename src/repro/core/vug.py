"""The VUG framework (Algorithm 1): Verification in Upper-bound Graph.

``VUG`` chains the three phases of the paper —

1. :func:`~repro.core.quick_ubg.quick_upper_bound_graph` (QuickUBG, Alg. 2+3),
2. :func:`~repro.core.tight_ubg.tight_upper_bound_graph` (TightUBG, Alg. 4+5),
3. :func:`~repro.core.eev.escaped_edges_verification` (EEV, Alg. 6+7),

and returns the exact temporal simple path graph together with the
intermediate upper-bound graphs and per-phase wall-clock timings (the raw
material of Exp-4, Exp-5 and Exp-6).

The default pipeline is **zero-materialization**: the intermediate
upper-bound graphs ``Gq`` and ``Gt`` are edge-mask
:class:`~repro.graph.views.SubgraphView` objects over the parent graph's
frozen columnar :class:`~repro.graph.views.GraphView` — no
:class:`TemporalGraph` is built anywhere on the hot path (call
``.materialize()`` on a report's upper bounds if a mutable graph is
needed).  Constructing ``VUG(zero_materialization=False)`` runs the
pre-refactor pipeline that materializes a fresh graph per phase; it is kept
as the reference baseline for the randomized equivalence oracle and the
exp11 benchmark.

:func:`generate_tspg` is the one-call public entry point most users want.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..graph.edge import Vertex, as_interval
from ..graph.temporal_graph import TemporalGraph
from .deadline import Deadline
from .eev import EEVDeadlineExpired, EEVStatistics, escaped_edges_verification
from .kernels import (
    KERNEL_BACKENDS,
    numpy_available,
    polarity_id_arrays_numpy,
    quick_mask_numpy,
)
from .polarity import compute_polarity_id_arrays, compute_polarity_times
from .quick_ubg import quick_mask_kernel, quick_upper_bound_graph_materializing
from .result import PathGraph, PhaseTimings, VUGReport
from .tcv import compute_time_stream_common_vertices
from .tight_ubg import tight_upper_bound_graph, tight_upper_bound_graph_materializing


@dataclass
class VUG:
    """Configurable VUG query engine.

    Parameters
    ----------
    use_tight_upper_bound:
        When ``False`` the TightUBG phase is skipped and EEV runs directly on
        ``Gq`` — the ablation used to quantify how much the simple-path
        pruning contributes.
    use_lemma10:
        Forwarded to :func:`escaped_edges_verification`; disabling it forces a
        bidirectional search for every escaped edge.
    collect_eev_statistics:
        Attach an :class:`EEVStatistics` to the report.
    zero_materialization:
        When ``True`` (the default) the phases exchange edge-mask views and
        no intermediate :class:`TemporalGraph` is built; ``False`` selects
        the pre-refactor materializing pipeline (the oracle baseline).
    kernel_backend:
        ``"python"`` (default) runs the pure-Python hot-path kernels;
        ``"numpy"`` dispatches the polarity sweep, the Lemma 1 window scan
        and the adjacency grouping to their vectorized variants in
        :mod:`repro.core.kernels` — bit-identical by contract, validated by
        the randomized oracle.  When numpy is not installed ``"numpy"``
        silently degrades to the Python kernels, so the setting is always
        safe.  Only meaningful with ``zero_materialization=True`` (the
        materializing reference pipeline has no vectorized form).
    """

    use_tight_upper_bound: bool = True
    use_lemma10: bool = True
    collect_eev_statistics: bool = False
    zero_materialization: bool = True
    kernel_backend: str = "python"

    _KERNEL_BACKENDS = KERNEL_BACKENDS

    def __post_init__(self) -> None:
        if self.kernel_backend not in self._KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {self.kernel_backend!r}; "
                f"choose from {', '.join(self._KERNEL_BACKENDS)}"
            )

    def effective_kernel_backend(self) -> str:
        """The backend that will actually run (``"numpy"`` needs numpy)."""
        if (
            self.kernel_backend == "numpy"
            and self.zero_materialization
            and numpy_available()
        ):
            return "numpy"
        return "python"

    def run(
        self,
        graph: TemporalGraph,
        source: Vertex,
        target: Vertex,
        interval,
        deadline: Optional[Deadline] = None,
    ) -> VUGReport:
        """Execute the full pipeline and return a :class:`VUGReport`.

        ``deadline`` is the cooperative per-query cut-off.  It is polled at
        the three phase boundaries (before QuickUBG, before TightUBG,
        before EEV) and — because EEV's search loop is where unbounded work
        lives — at every escaped-edge search and node expansion inside EEV.
        On expiry the report comes back with ``timed_out=True``, the empty
        result and the phase timings accumulated so far; the cut-off slack
        is bounded by one uninterruptible stretch of work (a single
        QuickUBG or TightUBG phase, or one EEV edge expansion).  A query
        that finishes in budget is bit-identical to a deadline-free run.
        """
        window = as_interval(interval)
        timings = PhaseTimings()
        if deadline is not None and deadline.expired():
            return self._timed_out_report(source, target, window, timings)
        tight_phase = (
            tight_upper_bound_graph
            if self.zero_materialization
            else tight_upper_bound_graph_materializing
        )

        # Phase 1: quick upper-bound graph (temporal constraint).
        started = time.perf_counter()
        if self.zero_materialization:
            # Interval-sliced kernels over the frozen columnar view: the
            # polarity sweeps run in interned-id space on the CSR-aligned
            # timestamp columns and the Lemma 1 scan produces an edge mask —
            # nothing is materialized anywhere in this pipeline.  Both
            # backends read the same column buffers and produce the same
            # mask; the numpy one does it in a handful of array passes.
            view = graph.view()
            if self.effective_kernel_backend() == "numpy":
                arrival_ids, departure_ids = polarity_id_arrays_numpy(
                    view, source, target, window
                )
                quick = quick_mask_numpy(view, arrival_ids, departure_ids, window)
            else:
                arrival_ids, departure_ids = compute_polarity_id_arrays(
                    view, source, target, window
                )
                quick = quick_mask_kernel(view, arrival_ids, departure_ids, window)
        else:
            polarity = compute_polarity_times(graph, source, target, window)
            quick = quick_upper_bound_graph_materializing(
                graph, source, target, window, polarity=polarity
            )
        timings.quick_ubg = time.perf_counter() - started
        if deadline is not None and deadline.expired():
            return self._timed_out_report(
                source, target, window, timings, upper_bound_quick=quick
            )

        # Phase 2: tight upper-bound graph (simple-path constraint).
        started = time.perf_counter()
        if self.use_tight_upper_bound:
            tcv = compute_time_stream_common_vertices(quick, source, target, window)
            tight = tight_phase(quick, source, target, window, tcv=tcv)
            tcv_space = tcv.space_cost()
        else:
            tight = quick
            tcv_space = 0
        timings.tight_ubg = time.perf_counter() - started
        if deadline is not None and deadline.expired():
            return self._timed_out_report(
                source, target, window, timings,
                upper_bound_quick=quick, upper_bound_tight=tight,
                tcv_space=tcv_space,
            )

        # Phase 3: escaped edges verification (exact result).
        started = time.perf_counter()
        try:
            eev_output = escaped_edges_verification(
                tight,
                source,
                target,
                window,
                use_lemma10=self.use_lemma10 and self.use_tight_upper_bound,
                collect_statistics=self.collect_eev_statistics,
                deadline=deadline,
            )
        except EEVDeadlineExpired:
            timings.eev = time.perf_counter() - started
            return self._timed_out_report(
                source, target, window, timings,
                upper_bound_quick=quick, upper_bound_tight=tight,
                tcv_space=tcv_space,
            )
        timings.eev = time.perf_counter() - started

        statistics: Optional[EEVStatistics] = None
        if self.collect_eev_statistics:
            result, statistics = eev_output
        else:
            result = eev_output

        # Linear-space accounting used by the space-consumption experiment
        # (Exp-3): the intermediate graphs plus the TCV entries and the result.
        space_cost = (
            quick.num_vertices
            + quick.num_edges
            + tight.num_vertices
            + tight.num_edges
            + tcv_space
            + result.num_vertices
            + result.num_edges
        )

        return VUGReport(
            result=result,
            upper_bound_quick=quick,
            upper_bound_tight=tight,
            timings=timings,
            space_cost=space_cost,
            eev_statistics=statistics,
        )

    @staticmethod
    def _timed_out_report(
        source: Vertex,
        target: Vertex,
        window,
        timings: PhaseTimings,
        upper_bound_quick=None,
        upper_bound_tight=None,
        tcv_space: int = 0,
    ) -> VUGReport:
        """The report of a deadline-cut-off query: empty result, flag set.

        The result is deliberately the *empty* path graph rather than a
        partial one — a half-verified edge set is an upper bound of
        nothing useful, and serving it as if it were the tspG would be a
        correctness bug.  Whatever upper bounds were completed before the
        cut-off ride along for diagnostics, and ``space_cost`` charges them
        with the same per-phase accounting a completed run uses, so the
        space tables (Exp-3/Exp-6) don't under-count cut-off rows.
        """
        space_cost = tcv_space
        if upper_bound_quick is not None:
            space_cost += upper_bound_quick.num_vertices + upper_bound_quick.num_edges
        if upper_bound_tight is not None:
            space_cost += upper_bound_tight.num_vertices + upper_bound_tight.num_edges
        return VUGReport(
            result=PathGraph.empty(source, target, window),
            upper_bound_quick=upper_bound_quick,
            upper_bound_tight=upper_bound_tight,
            timings=timings,
            space_cost=space_cost,
            timed_out=True,
        )

    # Alias matching the paper's "query" phrasing.
    query = run


def generate_tspg(
    graph: TemporalGraph,
    source: Vertex,
    target: Vertex,
    interval,
) -> PathGraph:
    """Generate the temporal simple path graph ``tspG[τb, τe](s, t)``.

    This is the library's primary public entry point — the problem statement
    of the paper solved with the full VUG pipeline.

    Parameters
    ----------
    graph:
        The directed temporal graph ``G``.
    source, target:
        Query endpoints ``s`` and ``t`` (must be different vertices).
    interval:
        ``(τb, τe)`` pair or :class:`~repro.graph.TimeInterval`.

    Returns
    -------
    PathGraph
        The subgraph of ``graph`` containing exactly the vertices and edges of
        all temporal simple paths from ``source`` to ``target`` within the
        interval; empty when no such path exists.

    Examples
    --------
    >>> from repro import TemporalGraph, generate_tspg
    >>> g = TemporalGraph(edges=[("s", "b", 2), ("b", "t", 6), ("b", "c", 3),
    ...                          ("c", "t", 7), ("s", "a", 3)])
    >>> tspg = generate_tspg(g, "s", "t", (2, 7))
    >>> sorted(tspg.vertices)
    ['b', 'c', 's', 't']
    """
    if source == target:
        raise ValueError("source and target must be different vertices")
    report = VUG().run(graph, source, target, interval)
    return report.result


def generate_tspg_report(
    graph: TemporalGraph,
    source: Vertex,
    target: Vertex,
    interval,
    **options,
) -> VUGReport:
    """Like :func:`generate_tspg` but returns the full :class:`VUGReport`."""
    if source == target:
        raise ValueError("source and target must be different vertices")
    return VUG(**options).run(graph, source, target, interval)
