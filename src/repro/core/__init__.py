"""VUG core: the paper's contribution (QuickUBG, TightUBG, EEV, VUG)."""

from .deadline import Deadline
from .result import PathGraph, PhaseTimings, VUGReport
from .polarity import PolarityTimes, compute_polarity_times
from .quick_ubg import quick_upper_bound_graph, quick_upper_bound_with_polarity
from .tcv import TCVIndex, TimeStreamCommonVertices, compute_time_stream_common_vertices
from .eev import (
    BidirectionalSearcher,
    EEVDeadlineExpired,
    EEVStatistics,
    escaped_edges_verification,
)
from .tight_ubg import tight_upper_bound_graph, tight_upper_bound_with_tcv
from .vug import VUG, generate_tspg, generate_tspg_report

__all__ = [
    "Deadline",
    "EEVDeadlineExpired",
    "PathGraph",
    "PhaseTimings",
    "VUGReport",
    "PolarityTimes",
    "compute_polarity_times",
    "quick_upper_bound_graph",
    "quick_upper_bound_with_polarity",
    "TCVIndex",
    "TimeStreamCommonVertices",
    "compute_time_stream_common_vertices",
    "tight_upper_bound_graph",
    "tight_upper_bound_with_tcv",
    "BidirectionalSearcher",
    "EEVStatistics",
    "escaped_edges_verification",
    "VUG",
    "generate_tspg",
    "generate_tspg_report",
]
