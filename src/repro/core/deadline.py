"""Cooperative per-query deadlines.

A :class:`Deadline` is an *absolute* instant that a query must not run
past.  It is the admission-control primitive of the serving layer: batch
budgets, shard-group budgets and per-request deadlines all reduce to one
``Deadline`` that travels with the query — from
:meth:`repro.service.TspgService.run_batch` through the shard router and
the process-pool boundary down to the algorithm itself — so a long-running
in-flight query can cut *itself* off promptly instead of squatting on a
worker after its budget is gone.

Design notes
------------
* **Absolute, not relative.**  A duration captured at submit time would
  silently extend the budget for work that sat queued behind a full pool;
  an absolute instant means "remaining" is always computed against *now*.
* **Monotonic clock.**  The instant lives on the ``time.monotonic()``
  scale, not the wall clock: an NTP step or VM-resume adjustment to the
  wall clock would instantly expire (or silently extend) every in-flight
  deadline.  ``CLOCK_MONOTONIC`` (and its macOS/Windows equivalents) is
  system-wide per boot, so the instant survives pickling across the
  process boundary unchanged for the *local* worker pools this library
  runs — deadlines are not meaningful across machines or reboots.
* **Cooperative, not preemptive.**  Python threads cannot be interrupted;
  instead the expensive phases poll :meth:`Deadline.expired` at documented
  points (the VUG phase boundaries, and every node expansion inside EEV's
  bidirectional search).  The cut-off *slack* — how far past the deadline a
  query can run — is therefore bounded by the longest stretch of work
  between two checks: one QuickUBG or TightUBG phase of a single query, or
  one edge expansion of the EEV search.
* **Checks are read-only.**  Polling a deadline never mutates anything, so
  results of queries that finish in budget are bit-identical with and
  without a deadline attached.

``Deadline`` is deliberately placed in :mod:`repro.core` (not the service
layer): the algorithm interface consumes it, and the layering rule says
algorithms never import from :mod:`repro.service`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Deadline:
    """An absolute instant (``time.monotonic()`` scale) a query must meet.

    Frozen and picklable by construction: the one field is a float on the
    system-wide monotonic scale, so a deadline crosses the
    ``ProcessPoolExecutor`` boundary losslessly and the worker-side
    remaining budget is recomputed against the worker's own reading of the
    same clock (valid on one machine within one boot — exactly the
    deployments a local worker pool serves).

    Examples
    --------
    >>> d = Deadline.after(60.0)
    >>> d.expired()
    False
    >>> d.remaining() <= 60.0
    True
    """

    #: The instant itself, in ``time.monotonic()`` seconds.
    at_monotonic: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """The deadline ``seconds`` from now (negative values are already expired)."""
        return cls(at_monotonic=time.monotonic() + seconds)

    @classmethod
    def from_budget(cls, budget_seconds: Optional[float]) -> Optional["Deadline"]:
        """Convert an optional relative budget to an optional deadline.

        The helper every batch entry point uses: ``None`` stays ``None``
        (no budget means no deadline), anything else becomes the absolute
        instant the budget runs out.
        """
        if budget_seconds is None:
            return None
        return cls.after(budget_seconds)

    def remaining(self) -> float:
        """Seconds left before the deadline (clamped at 0.0 once expired)."""
        return max(0.0, self.at_monotonic - time.monotonic())

    def expired(self) -> bool:
        """``True`` once the instant has passed (the cooperative poll)."""
        return time.monotonic() >= self.at_monotonic

    def earlier(self, other: Optional["Deadline"]) -> "Deadline":
        """The stricter of two deadlines (``other`` may be ``None``).

        Used where a per-request deadline meets a batch-wide budget: the
        query must honour whichever runs out first.
        """
        if other is None or self.at_monotonic <= other.at_monotonic:
            return self
        return other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(in {self.at_monotonic - time.monotonic():+.3f}s)"
