"""Quick upper-bound graph generation (Algorithm 2 of the paper).

Given the polarity times of a query, an edge ``e(u, v, τ)`` lies on at least
one temporal path from ``s`` to ``t`` within ``[τb, τe]`` iff
``A(u) < τ < D(v)`` (Lemma 1).  Keeping exactly those edges yields the *quick
upper-bound graph* ``Gq`` in ``O(m)`` time — a superset of the final ``tspG``
that already removes every edge violating the temporal constraint.
"""

from __future__ import annotations

from typing import Optional

from ..graph.edge import Vertex, as_interval
from ..graph.temporal_graph import TemporalGraph
from .polarity import PolarityTimes, compute_polarity_times


def quick_upper_bound_graph(
    graph: TemporalGraph,
    source: Vertex,
    target: Vertex,
    interval,
    polarity: Optional[PolarityTimes] = None,
) -> TemporalGraph:
    """Compute the quick upper-bound graph ``Gq`` (Algorithm 2).

    Parameters
    ----------
    polarity:
        Pre-computed polarity times; when omitted they are computed here
        (Algorithm 3).  Passing them explicitly lets the VUG driver time the
        two steps separately.

    Returns
    -------
    TemporalGraph
        The subgraph of ``graph`` whose edges all satisfy ``A(u) < τ < D(v)``.
        Vertices are exactly the endpoints of surviving edges (Definition of an
        induced subgraph in Section II).
    """
    window = as_interval(interval)
    if polarity is None:
        polarity = compute_polarity_times(graph, source, target, window)
    quick = TemporalGraph()
    # Lemma 1 test inlined over the raw tables: this loop touches every edge
    # of G, so per-edge function-call overhead matters.
    arrival = polarity.arrival
    departure = polarity.departure
    infinity = float("inf")
    neg_infinity = float("-inf")
    for u, v, timestamp in graph.edge_tuples():
        if arrival.get(u, infinity) < timestamp < departure.get(v, neg_infinity):
            quick.add_edge(u, v, timestamp)
    return quick


def quick_upper_bound_with_polarity(
    graph: TemporalGraph, source: Vertex, target: Vertex, interval
) -> tuple[TemporalGraph, PolarityTimes]:
    """Convenience wrapper returning both ``Gq`` and the polarity tables."""
    window = as_interval(interval)
    polarity = compute_polarity_times(graph, source, target, window)
    return (
        quick_upper_bound_graph(graph, source, target, window, polarity=polarity),
        polarity,
    )
