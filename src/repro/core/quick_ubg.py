"""Quick upper-bound graph generation (Algorithm 2 of the paper).

Given the polarity times of a query, an edge ``e(u, v, τ)`` lies on at least
one temporal path from ``s`` to ``t`` within ``[τb, τe]`` iff
``A(u) < τ < D(v)`` (Lemma 1).  Keeping exactly those edges yields the *quick
upper-bound graph* ``Gq`` in ``O(m)`` time — a superset of the final ``tspG``
that already removes every edge violating the temporal constraint.

Zero-materialization kernel: instead of inserting every surviving edge into a
fresh :class:`~repro.graph.temporal_graph.TemporalGraph` (per-edge sorted
insertion + cache invalidation), :func:`quick_upper_bound_graph` pre-slices
the parent's timestamp-sorted edge columns to the query window with two
bisects, applies the Lemma 1 test over the interned columns, and returns an
edge-mask :class:`~repro.graph.views.SubgraphView` — no edge storage is
copied.  Call ``.materialize()`` on the result when a real graph is needed.

The pre-refactor materializing implementation is retained as
:func:`quick_upper_bound_graph_materializing`; it is the reference baseline
of the exp11 benchmark and the randomized equivalence oracle.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Union

from ..graph.edge import Vertex, as_interval
from ..graph.temporal_graph import TemporalGraph
from ..graph.views import GraphView, SubgraphView
from .polarity import PolarityTimes, compute_polarity_times

GraphLike = Union[TemporalGraph, GraphView]


def _as_view(graph: GraphLike) -> GraphView:
    """Coerce the input into the frozen columnar view of its graph."""
    if isinstance(graph, GraphView):
        return graph
    return graph.view()


def quick_upper_bound_graph(
    graph: GraphLike,
    source: Vertex,
    target: Vertex,
    interval,
    polarity: Optional[PolarityTimes] = None,
) -> SubgraphView:
    """Compute the quick upper-bound graph ``Gq`` (Algorithm 2).

    Parameters
    ----------
    graph:
        The temporal graph ``G`` (or its :class:`GraphView` directly).
    polarity:
        Pre-computed polarity times; when omitted they are computed here
        (Algorithm 3).  Passing them explicitly lets the VUG driver time the
        two steps separately.

    Returns
    -------
    SubgraphView
        An edge-mask view over ``graph`` whose surviving edges all satisfy
        ``A(u) < τ < D(v)``; its vertices are exactly the endpoints of
        surviving edges (Definition of an induced subgraph in Section II).
        The view implements the read API of a graph — materialize it
        explicitly with ``.materialize()`` if a mutable graph is required.

    .. versionchanged:: 1.2
       Returns a zero-copy :class:`SubgraphView` instead of a freshly built
       :class:`TemporalGraph` (see
       :func:`quick_upper_bound_graph_materializing` for the old behaviour).
    """
    window = as_interval(interval)
    if polarity is None:
        if isinstance(graph, GraphView):
            raise TypeError(
                "polarity times must be supplied when querying a GraphView "
                "directly (they are computed over the parent TemporalGraph)"
            )
        polarity = compute_polarity_times(graph, source, target, window)
    view = _as_view(graph)
    # Re-key the polarity tables from vertex labels to interned ids once
    # (O(n)); the scan itself is pure array indexing.
    arrival = polarity.arrival
    departure = polarity.departure
    infinity = float("inf")
    neg_infinity = float("-inf")
    labels = view.labels
    arrival_by_id = [arrival.get(label, infinity) for label in labels]
    departure_by_id = [departure.get(label, neg_infinity) for label in labels]
    return quick_mask_kernel(view, arrival_by_id, departure_by_id, window)


def quick_mask_kernel(
    view: GraphView,
    arrival_by_id: Sequence[float],
    departure_by_id: Sequence[float],
    window,
) -> SubgraphView:
    """The interval-sliced Lemma 1 scan over interned columns (Algorithm 2).

    Pre-slices the timestamp-sorted columns to ``[τb, τe]`` with two bisects
    — Lemma 1 implies ``τb <= τ <= τe`` for every admissible edge
    (``A(s) = τb - 1``, ``D(t) = τe + 1``), so edges outside the window need
    never be scanned.  The loop touches every in-window edge of ``G``, so
    per-edge overhead matters: it is array indexing plus two comparisons.
    """
    lo, hi = view.slice_bounds(window)
    src, dst, ts = view.src, view.dst, view.ts
    indices: list = []
    append = indices.append
    vids: Set[int] = set()
    add_vid = vids.add
    # Iterating zipped array slices keeps the per-edge work in C; ``index``
    # tracks the position in the parent columns.
    index = lo
    for u, v, timestamp in zip(src[lo:hi], dst[lo:hi], ts[lo:hi]):
        if arrival_by_id[u] < timestamp < departure_by_id[v]:
            append(index)
            add_vid(u)
            add_vid(v)
        index += 1
    return SubgraphView(view, indices, vids)


def quick_upper_bound_graph_materializing(
    graph: TemporalGraph,
    source: Vertex,
    target: Vertex,
    interval,
    polarity: Optional[PolarityTimes] = None,
) -> TemporalGraph:
    """Pre-refactor QuickUBG: build ``Gq`` as a fresh :class:`TemporalGraph`.

    Kept as the reference implementation the randomized oracle and the
    exp11 benchmark compare the zero-materialization kernel against; new
    code should use :func:`quick_upper_bound_graph`.
    """
    window = as_interval(interval)
    if polarity is None:
        polarity = compute_polarity_times(graph, source, target, window)
    quick = TemporalGraph()
    arrival = polarity.arrival
    departure = polarity.departure
    infinity = float("inf")
    neg_infinity = float("-inf")
    for u, v, timestamp in graph.edge_tuples():
        if arrival.get(u, infinity) < timestamp < departure.get(v, neg_infinity):
            quick.add_edge(u, v, timestamp)
    return quick


def quick_upper_bound_with_polarity(
    graph: TemporalGraph, source: Vertex, target: Vertex, interval
) -> tuple[SubgraphView, PolarityTimes]:
    """Convenience wrapper returning both ``Gq`` and the polarity tables."""
    window = as_interval(interval)
    polarity = compute_polarity_times(graph, source, target, window)
    return (
        quick_upper_bound_graph(graph, source, target, window, polarity=polarity),
        polarity,
    )
