"""Vectorized (numpy) variants of the query hot-path kernels.

The zero-materialization pipeline spends its per-query time in three places:
the polarity sweeps (Algorithm 3), the Lemma 1 window scan (Algorithm 2) and
EEV's grouped adjacency expansion.  This module provides numpy versions of
the first two; the third lives with the data it groups, as
:meth:`repro.graph.views.SubgraphView._group_by_numpy`, and is selected by
the ``backend`` flag the mask kernels stamp on every view they build.

All operands come from the buffer-backed :class:`~repro.graph.columns.
IndexColumn` storage of :class:`~repro.graph.views.GraphView` — the numpy
arrays are :func:`numpy.frombuffer` views of the *same* bytes the pure-Python
sweeps bisect, so the two backends read identical inputs.

Equivalence contract
--------------------
``polarity_id_arrays_numpy`` computes the same earliest-arrival /
latest-departure tables as :func:`~repro.core.polarity.
compute_polarity_id_arrays`.  It runs a single Gauss–Seidel pass over the
distinct timestamps of the window, ascending for arrivals and descending
for departures, relaxing every edge of one timestamp at once.  A single
pass is *exact*: edges sharing a timestamp can never enable each other
(``t > A(u)`` fails when ``A(u) = t``), and a later group can only assign
table values at its own — larger — timestamp, so it can never retroactively
enable an edge in an earlier group.  The queue-based Python sweep is a
different chaotic iteration of the same monotone relaxation operator from
the same initial tables, so both reach the same unique fixed point (the
values, not the visit order, are the contract).  Timestamps are int64 and
therefore exactly representable in float64, so the float tables compare
equal to the Python lists element-wise (``5 == 5.0``), and every downstream
consumer only *compares* the values.

``quick_mask_numpy`` evaluates Lemma 1 (``A(u) < τ < D(v)``) over the same
``[lo, hi)`` window slice :func:`~repro.core.quick_ubg.quick_mask_kernel`
iterates, producing the identical ascending index list — including the
``lo == hi`` empty-window convention pinned by the degenerate-interval
regression tests.

The sweep reads a *window-local timestamp-group layout* (each group's edges
sorted by head for the forward pass and by tail for the backward pass, with
``reduceat`` boundaries) built over the query window's ``[lo, hi)`` edge
slice only — never the whole column — and cached per window under a small
bounded LRU in ``GraphView._kernel_scratch``.  Restricting the layout to
the window is exact by the group-monotonicity argument above: a timestamp
group outside ``[τb, τe]`` is never iterated by either sweep, so edges
outside the window can never relax a table value any in-window consumer
reads.  The payoff is residency: layout cost is O(w log w) in the window's
edge count ``w`` (not O(E log E)), and on an mmap-booted view a narrow
query faults in only the window's pages of ``src``/``dst``/``ts``.  Like
the CSR-aligned columns the cache is never persisted, and the view's
immutability (mutation rebuilds the view, and with it an empty scratch)
keeps every cached layout valid for the view's whole lifetime.

When numpy is not installed (:func:`numpy_available` is ``False``) callers
must use the pure-Python kernels; the dispatching layers (``VUG``,
``SubgraphView``) do that silently, so ``kernel_backend="numpy"`` is always
safe to request.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from ..graph.columns import BUFFER_COLUMN_TYPES, numpy_available, numpy_or_none
from ..graph.edge import Vertex, as_interval
from ..graph.views import GraphView, SubgraphView

__all__ = [
    "KERNEL_BACKENDS",
    "numpy_available",
    "polarity_id_arrays_numpy",
    "quick_mask_numpy",
]

#: The selectable kernel backends, in fallback order.
KERNEL_BACKENDS = ("python", "numpy")

#: Cache key of the window-layout LRU in ``GraphView._kernel_scratch``.
_LAYOUT_KEY = "ts_group_layouts"

#: Max distinct ``(lo, hi)`` window layouts cached per view.  Serve loops
#: typically repeat a handful of hot intervals; beyond that, rebuilding a
#: window layout is O(w log w) in the window's edge count, so eviction is
#: cheap to recover from and the cache never anchors cold pages.
_LAYOUT_CACHE_CAPACITY = 8


def _as_numpy(column):
    """Zero-copy numpy view of a buffer-backed column (copy otherwise)."""
    if isinstance(column, BUFFER_COLUMN_TYPES):
        return column.numpy()
    np = numpy_or_none()
    return np.asarray(column, dtype=np.int64)


def _window_columns(view: GraphView, window) -> Tuple[int, int, object, object, object]:
    """The ``[lo, hi)`` window slice of the edge columns as numpy views."""
    lo, hi = view.slice_bounds(window)
    src = _as_numpy(view.src)[lo:hi]
    dst = _as_numpy(view.dst)[lo:hi]
    ts = _as_numpy(view.ts)[lo:hi]
    return lo, hi, src, dst, ts


def _layout_cache(view: GraphView) -> "OrderedDict":
    """The per-view window-layout LRU, created on first use."""
    cache = view._kernel_scratch.get(_LAYOUT_KEY)
    if cache is None:
        cache = OrderedDict()
        view._kernel_scratch[_LAYOUT_KEY] = cache
    return cache


def _ts_group_layout(view: GraphView, window):
    """The window-local timestamp-group relaxation layout (LRU-cached).

    Returns ``(uts, fwd, bwd)`` built over the ``[lo, hi)`` edge slice of
    ``slice_bounds(window)`` only, where ``uts`` is the window's sorted
    distinct timestamps and ``fwd[i]``/``bwd[i]`` describe timestamp group
    ``i`` (one contiguous run of the ts-sorted window slice):

    * ``fwd[i] = (t, src_g, gdst, starts)`` — the group's edge tails in
      head-sorted order, the distinct heads, and the ``reduceat``
      boundaries of each head's run;
    * ``bwd[i] = (t, dst_g, gsrc, starts)`` — the mirror, tail-grouped.

    Every group of the slice is in-window by construction (``lo`` and
    ``hi`` bisect the sorted ``ts`` column on the window bounds), so the
    sweeps iterate the layout whole — no per-query searchsorted needed.
    The layout stores vertex ids, never edge indices, so slice-local
    arrays need no offset correction.  Layouts are keyed by ``(lo, hi)``
    in a small LRU per view; the view is immutable (mutation rebuilds the
    view and its scratch), so cached layouts never go stale.
    """
    lo, hi = view.slice_bounds(window)
    cache = _layout_cache(view)
    key = (lo, hi)
    layout = cache.get(key)
    if layout is not None:
        cache.move_to_end(key)
        return layout
    np = numpy_or_none()
    src = _as_numpy(view.src)[lo:hi]
    dst = _as_numpy(view.dst)[lo:hi]
    ts = _as_numpy(view.ts)[lo:hi]
    uts, group_starts = np.unique(ts, return_index=True)
    bounds = group_starts.tolist() + [hi - lo]
    fwd, bwd = [], []
    for i in range(len(uts)):
        s, e = bounds[i], bounds[i + 1]
        src_g, dst_g = src[s:e], dst[s:e]
        by_head = np.argsort(dst_g, kind="stable")
        heads = dst_g[by_head]
        head_starts = np.flatnonzero(np.r_[True, heads[1:] != heads[:-1]])
        by_tail = np.argsort(src_g, kind="stable")
        tails = src_g[by_tail]
        tail_starts = np.flatnonzero(np.r_[True, tails[1:] != tails[:-1]])
        t = int(uts[i])
        fwd.append((t, src_g[by_head], heads[head_starts], head_starts))
        bwd.append((t, dst_g[by_tail], tails[tail_starts], tail_starts))
    layout = (uts, fwd, bwd)
    cache[key] = layout
    while len(cache) > _LAYOUT_CACHE_CAPACITY:
        cache.popitem(last=False)
    return layout


def polarity_id_arrays_numpy(
    view: GraphView,
    source: Vertex,
    target: Vertex,
    interval,
):
    """Vectorized Algorithm 3: ``(arrival_by_id, departure_by_id)`` arrays.

    Returns two float64 numpy arrays indexed by interned vertex id, equal
    element-wise to the lists of :func:`~repro.core.polarity.
    compute_polarity_id_arrays`.  One ascending pass over the window's
    timestamp groups computes the arrival table exactly (see the module
    docstring for why no fixed-point iteration is needed); one descending
    pass mirrors it for departures.  Each group relaxes all of its edges in
    a handful of array operations: gather the tails' arrivals, reduce the
    "some in-edge relaxes" flag per head with ``bitwise_or.reduceat``, and
    scatter the group timestamp into the improved heads.

    Algorithm 3's endpoint rules are preserved by construction: the
    arrival of ``target`` is restored to its pre-sweep value after every
    group (dropping edges *into* the target, so nothing routes through it —
    and preserving the source pin when ``source == target``), the arrival
    of ``source`` stays ``τb - 1`` (group timestamps are in-window, hence
    strictly larger), and the mirror holds for departures.
    """
    np = numpy_or_none()
    window = as_interval(interval)
    num_vertices = view.num_vertices
    arrival = np.full(num_vertices, np.inf)
    departure = np.full(num_vertices, -np.inf)
    source_id = view.index_of.get(source)
    target_id = view.index_of.get(target)
    # The window-local layout holds exactly the in-window timestamp groups,
    # so both sweeps walk it end to end.
    uts, fwd, bwd = _ts_group_layout(view, window)
    first, last = 0, len(uts)

    if source_id is not None:
        arrival[source_id] = window.begin - 1
        # The queue sweep never *writes* the target's slot, so its pinned
        # value survives even when source == target; mirror that by
        # restoring whatever the slot held before the sweep began.
        target_pin = arrival[target_id] if target_id is not None else None
        for group in range(first, last):
            t, src_g, gdst, starts = fwd[group]
            relaxes = arrival[src_g] < t
            if not relaxes.any():
                continue
            improved = gdst[np.bitwise_or.reduceat(relaxes, starts)]
            current = arrival[improved]
            arrival[improved] = np.where(current < t, current, float(t))
            if target_id is not None:
                arrival[target_id] = target_pin

    if target_id is not None:
        departure[target_id] = window.end + 1
        source_pin = departure[source_id] if source_id is not None else None
        for group in range(last - 1, first - 1, -1):
            t, dst_g, gsrc, starts = bwd[group]
            relaxes = departure[dst_g] > t
            if not relaxes.any():
                continue
            improved = gsrc[np.bitwise_or.reduceat(relaxes, starts)]
            current = departure[improved]
            departure[improved] = np.where(current > t, current, float(t))
            if source_id is not None:
                departure[source_id] = source_pin

    return arrival, departure


def quick_mask_numpy(
    view: GraphView,
    arrival_by_id,
    departure_by_id,
    window,
) -> SubgraphView:
    """Vectorized Algorithm 2: the Lemma 1 scan as one boolean reduction.

    ``arrival_by_id`` / ``departure_by_id`` may be the numpy arrays of
    :func:`polarity_id_arrays_numpy` or any sequence (they are coerced).
    The resulting :class:`SubgraphView` carries ``backend="numpy"`` so the
    downstream TightUBG refinement and EEV adjacency grouping stay on the
    vectorized path.
    """
    np = numpy_or_none()
    window = as_interval(window)
    arrival = np.asarray(arrival_by_id, dtype=np.float64)
    departure = np.asarray(departure_by_id, dtype=np.float64)
    lo, _, src, dst, ts = _window_columns(view, window)
    keep = (arrival[src] < ts) & (ts < departure[dst])
    indices = (np.flatnonzero(keep) + lo).tolist()
    # Surviving endpoints via presence flags — one O(E) scatter and one
    # O(V) scan beat sorting the survivor columns for uniqueness.
    present = np.zeros(view.num_vertices, dtype=bool)
    present[src[keep]] = True
    present[dst[keep]] = True
    vids = set(np.flatnonzero(present).tolist())
    return SubgraphView(view, indices, vids, backend="numpy")
