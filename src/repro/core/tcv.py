"""Time-stream common vertices (Definition 5 and Algorithm 4 of the paper).

For a vertex ``u`` and timestamp ``τ``, the time-stream common vertices
``TCV_τ(s, u)`` are the vertices (other than ``s``) shared by *every* temporal
simple path from ``s`` to ``u`` within ``[τb, τ]`` that does not contain ``t``;
``TCV_τ(u, t)`` is the mirror notion for paths from ``u`` to ``t`` within
``[τ, τe]`` that do not contain ``s``.

Key facts exploited by the implementation (all proved in the paper):

* **Lemma 5** — only one entry per *distinct* in-timestamp of ``u`` (for the
  source side) / out-timestamp (for the target side) needs to be stored; the
  value at any other timestamp equals the nearest stored entry at or below
  (resp. at or above) it.
* **Lemma 6** — the intersection may be taken over temporal *paths* rather
  than temporal *simple* paths, which makes the recursion over in-neighbours
  (Equations 3 and 4) exact.
* **Lemma 7** — once an entry degenerates to ``{u}`` every later (resp.
  earlier) entry equals ``{u}``, so the per-vertex computation can stop
  ("completed" vertices); lookups past the last stored entry return the
  stored ``{u}``.

The computation runs a single forward scan of the quick upper-bound graph's
edges in non-descending temporal order (and a single backward scan for the
target side), intersecting incrementally; total cost ``O(n + θ·m)``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..graph.edge import TimeInterval, Timestamp, Vertex, as_interval

Entry = Tuple[Timestamp, FrozenSet[Vertex]]


@dataclass
class TCVIndex:
    """Per-vertex sorted entry lists for one side (source or target).

    ``entries[u]`` is a list of ``(timestamp, vertex set)`` pairs sorted by
    timestamp ascending.  For the source side the timestamps are (a prefix of)
    the distinct in-timestamps of ``u`` in ``Gq``; for the target side a
    suffix of the distinct out-timestamps.
    """

    anchor: Vertex
    side: str  # "source" or "target"
    entries: Dict[Vertex, List[Entry]] = field(default_factory=dict)

    def lookup(self, vertex: Vertex, timestamp: Timestamp) -> Optional[FrozenSet[Vertex]]:
        """Value of ``TCV_timestamp`` for ``vertex`` (``None`` when undefined).

        Source side: nearest stored entry at or *below* ``timestamp``
        (Lemma 5); target side: nearest stored entry at or *above* it.  The
        anchor vertex itself always maps to the empty set (base case of the
        recursion).
        """
        if vertex == self.anchor:
            return frozenset()
        stored = self.entries.get(vertex)
        if not stored:
            return None
        times = [ts for ts, _ in stored]
        if self.side == "source":
            idx = bisect_right(times, timestamp) - 1
            if idx < 0:
                return None
            return stored[idx][1]
        idx = bisect_left(times, timestamp)
        if idx >= len(stored):
            return None
        return stored[idx][1]

    def stored_entries(self, vertex: Vertex) -> List[Entry]:
        """All stored entries of ``vertex`` (copy) — used by tests."""
        return list(self.entries.get(vertex, ()))

    def num_entries(self) -> int:
        """Total number of stored entries (the space term of Theorem 3)."""
        return sum(len(stored) for stored in self.entries.values())

    def total_set_size(self) -> int:
        """Sum of entry set sizes — the ``θ·m`` space term of Theorem 3."""
        return sum(len(value) for stored in self.entries.values() for _, value in stored)


@dataclass
class TimeStreamCommonVertices:
    """Both TCV indexes of a query plus the defaults of Algorithm 5."""

    source_index: TCVIndex
    target_index: TCVIndex
    interval: TimeInterval

    def from_source(self, vertex: Vertex, timestamp: Timestamp) -> Optional[FrozenSet[Vertex]]:
        """``TCV_timestamp(s, vertex)`` or ``None`` when no entry applies."""
        return self.source_index.lookup(vertex, timestamp)

    def to_target(self, vertex: Vertex, timestamp: Timestamp) -> Optional[FrozenSet[Vertex]]:
        """``TCV_timestamp(vertex, t)`` or ``None`` when no entry applies."""
        return self.target_index.lookup(vertex, timestamp)

    def from_source_or_default(self, vertex: Vertex, timestamp: Timestamp) -> FrozenSet[Vertex]:
        """Lookup with the Algorithm 5 default ``{vertex}`` when undefined."""
        value = self.from_source(vertex, timestamp)
        return value if value is not None else frozenset({vertex})

    def to_target_or_default(self, vertex: Vertex, timestamp: Timestamp) -> FrozenSet[Vertex]:
        """Lookup with the Algorithm 5 default ``{vertex}`` when undefined."""
        value = self.to_target(vertex, timestamp)
        return value if value is not None else frozenset({vertex})

    def space_cost(self) -> int:
        """Total number of vertex slots stored across both indexes."""
        return self.source_index.total_set_size() + self.target_index.total_set_size()


def compute_time_stream_common_vertices(
    quick_graph,
    source: Vertex,
    target: Vertex,
    interval,
) -> TimeStreamCommonVertices:
    """Algorithm 4: compute ``TCV_·(s, ·)`` and ``TCV_·(·, t)`` over ``Gq``.

    ``quick_graph`` may be a :class:`TemporalGraph` or an edge-mask
    :class:`~repro.graph.views.SubgraphView` — both scans consume only the
    timestamp-sorted ``edge_tuples`` sequence.
    """
    window = as_interval(interval)
    source_index = _compute_source_side(quick_graph, source, target)
    target_index = _compute_target_side(quick_graph, source, target)
    return TimeStreamCommonVertices(
        source_index=source_index,
        target_index=target_index,
        interval=window,
    )


def _compute_source_side(
    quick_graph, source: Vertex, target: Vertex
) -> TCVIndex:
    """Forward scan computing ``TCV_·(s, u)`` for every vertex ``u``."""
    index = TCVIndex(anchor=source, side="source")
    completed: set = set()
    # Plain-tuple iteration over the timestamp-sorted sequence: works
    # identically for a TemporalGraph and an edge-mask SubgraphView, and
    # allocates no TemporalEdge objects on the hot path.
    for v, u, timestamp in quick_graph.edge_tuples():
        if u == target or u == source or u in completed:
            # Algorithm 4 line 8: no entries are maintained for t, and
            # completed vertices already degenerated to {u} (Lemma 7).
            continue
        base = index.lookup(v, timestamp - 1)
        if base is None:
            # Algorithm 4 line 15: a missing entry means the in-neighbour was
            # completed (or is not reached before τ); its value is {v}.
            base = frozenset({v})
        term = base | {u}
        stored = index.entries.setdefault(u, [])
        if stored and stored[-1][0] == timestamp:
            # Another in-edge of u at the same timestamp: continue the
            # running intersection for the current entry (Algorithm 4 case i).
            stored[-1] = (timestamp, stored[-1][1] & term)
        elif stored:
            # First in-edge of u at a strictly larger timestamp: the previous
            # entry is final; the new entry inherits it (TCV_τ ⊆ TCV_{τ-1})
            # and intersects the new term (Algorithm 4 case ii).
            stored.append((timestamp, stored[-1][1] & term))
        else:
            # Very first entry of u (Algorithm 4 line 17).
            stored.append((timestamp, term))
        if stored[-1][1] == frozenset({u}):
            completed.add(u)
    return index


def _compute_target_side(
    quick_graph, source: Vertex, target: Vertex
) -> TCVIndex:
    """Backward scan computing ``TCV_·(u, t)`` for every vertex ``u``."""
    index = TCVIndex(anchor=target, side="target")
    completed: set = set()
    # Entries are produced in descending timestamp order; collect per vertex
    # and reverse at the end so the stored lists are ascending for lookups.
    descending: Dict[Vertex, List[Entry]] = {}
    for u, v, timestamp in reversed(quick_graph.edge_tuples()):
        if u == source or u == target or u in completed:
            continue
        stored_v = descending.get(v)
        base = _lookup_descending(stored_v, timestamp + 1) if v != target else frozenset()
        if base is None:
            base = frozenset({v})
        term = base | {u}
        stored = descending.setdefault(u, [])
        if stored and stored[-1][0] == timestamp:
            stored[-1] = (timestamp, stored[-1][1] & term)
        elif stored:
            stored.append((timestamp, stored[-1][1] & term))
        else:
            stored.append((timestamp, term))
        if stored[-1][1] == frozenset({u}):
            completed.add(u)
    for vertex, stored in descending.items():
        index.entries[vertex] = list(reversed(stored))
    return index


def _lookup_descending(
    stored: Optional[List[Entry]], timestamp: Timestamp
) -> Optional[FrozenSet[Vertex]]:
    """Nearest entry at or above ``timestamp`` in a descending-ordered list."""
    if not stored:
        return None
    # ``stored`` is ordered by descending timestamp; find the last element
    # whose timestamp is still >= the requested one.
    result: Optional[FrozenSet[Vertex]] = None
    for ts, value in stored:
        if ts >= timestamp:
            result = value
        else:
            break
    return result
