"""repro — Temporal Simple Path Graph generation (VUG).

A from-scratch Python implementation of *"Efficient Temporal Simple Path Graph
Generation"* (ICDE 2025): the VUG algorithm (QuickUBG + TightUBG + EEV), the
enumeration baselines it is compared against, synthetic dataset analogues, a
query-workload harness and the benchmark drivers reproducing every table and
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import TemporalGraph, generate_tspg
>>> graph = TemporalGraph(edges=[("s", "b", 2), ("b", "c", 3), ("b", "t", 6),
...                              ("c", "t", 7), ("s", "a", 3)])
>>> tspg = generate_tspg(graph, "s", "t", (2, 7))
>>> sorted(tspg.vertices)
['b', 'c', 's', 't']
"""

from .graph import GraphView, SubgraphView, TemporalEdge, TemporalGraph, TimeInterval
from .graph.builder import TemporalGraphBuilder
from .core import (
    Deadline,
    PathGraph,
    VUG,
    VUGReport,
    compute_polarity_times,
    escaped_edges_verification,
    generate_tspg,
    generate_tspg_report,
    quick_upper_bound_graph,
    tight_upper_bound_graph,
)
from .baselines import EPdtTSG, EPesTSG, EPtgTSG, NaiveEnumeration
from .algorithms import (
    ALGORITHM_CLASSES,
    PAPER_ALGORITHMS,
    VUGAlgorithm,
    available_algorithms,
    get_algorithm,
)
from .paths import (
    TemporalPath,
    count_temporal_simple_paths,
    enumerate_temporal_simple_paths,
)
from .queries import QueryRunner, QueryWorkload, TspgQuery, generate_workload
from .service import (
    BatchReport,
    ShardedTspgService,
    TspgService,
    WorkerPool,
    WorkerPoolError,
)
from .store import (
    GraphStore,
    InMemoryGraphStore,
    SnapshotError,
    SnapshotGraphStore,
    load_snapshot,
    save_snapshot,
)
from .analysis import brute_force_tspg

__version__ = "1.0.0"

__all__ = [
    "TemporalGraph",
    "GraphView",
    "SubgraphView",
    "TemporalEdge",
    "TimeInterval",
    "TemporalGraphBuilder",
    "PathGraph",
    "VUG",
    "VUGReport",
    "generate_tspg",
    "generate_tspg_report",
    "quick_upper_bound_graph",
    "tight_upper_bound_graph",
    "escaped_edges_verification",
    "compute_polarity_times",
    "EPdtTSG",
    "EPesTSG",
    "EPtgTSG",
    "NaiveEnumeration",
    "VUGAlgorithm",
    "ALGORITHM_CLASSES",
    "PAPER_ALGORITHMS",
    "available_algorithms",
    "get_algorithm",
    "TemporalPath",
    "enumerate_temporal_simple_paths",
    "count_temporal_simple_paths",
    "TspgQuery",
    "QueryWorkload",
    "QueryRunner",
    "generate_workload",
    "TspgService",
    "ShardedTspgService",
    "BatchReport",
    "WorkerPool",
    "WorkerPoolError",
    "Deadline",
    "GraphStore",
    "InMemoryGraphStore",
    "SnapshotGraphStore",
    "SnapshotError",
    "load_snapshot",
    "save_snapshot",
    "brute_force_tspg",
    "__version__",
]
