"""Executing query workloads against one or more algorithms.

The runner mirrors the paper's measurement protocol: it executes every query
of a workload with each algorithm, accumulates total response time and
max/min space cost per algorithm, and supports a per-workload time budget so
slow baselines can be cut off and reported as "INF" (the paper's 12-hour
cut-off, scaled down to seconds for the synthetic datasets).

Execution is delegated to :class:`~repro.service.TspgService`, which warms
the per-graph indices once per graph (instead of on the first query) and can
optionally memoize results.  The runner keeps result memoization *off* by
default: its job is measuring algorithm response time, and serving a repeat
query from a cache would report lookup time instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines.interface import AlgorithmResult, TspgAlgorithm
from ..core.result import PathGraph
from ..graph.temporal_graph import TemporalGraph
from .query import QueryWorkload, TspgQuery

INF = float("inf")


@dataclass
class WorkloadResult:
    """Aggregated outcome of one algorithm over one workload."""

    algorithm: str
    workload: str
    total_seconds: float = 0.0
    num_queries: int = 0
    num_completed: int = 0
    timed_out: bool = False
    max_space: int = 0
    min_space: int = 0
    per_query_seconds: List[float] = field(default_factory=list)
    results: List[PathGraph] = field(default_factory=list)

    @property
    def is_inf(self) -> bool:
        """``True`` when the workload was cut off (the paper's "INF" marker)."""
        return self.timed_out

    @property
    def reported_seconds(self) -> float:
        """Total seconds, or ``inf`` when cut off."""
        return INF if self.timed_out else self.total_seconds

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "time_s": "INF" if self.timed_out else round(self.total_seconds, 4),
            "queries": f"{self.num_completed}/{self.num_queries}",
            "max_space": self.max_space,
            "min_space": self.min_space,
        }


@dataclass
class QueryRunner:
    """Runs workloads against algorithms with an optional per-workload budget.

    Parameters
    ----------
    time_budget_seconds:
        Wall-clock budget per (algorithm, workload) pair.  Once exceeded the
        remaining queries are skipped and the result is flagged ``timed_out``
        — the down-scaled analogue of the paper's 12-hour limit.
    keep_results:
        Store every query's :class:`PathGraph` (needed by correctness
        cross-checks, wasteful for pure timing runs).
    use_cache:
        Let the underlying service serve repeat queries from its result
        cache.  Off by default because memoization distorts the response-time
        measurements the runner exists to take.
    num_shards:
        When greater than 1, workloads run through a
        :class:`~repro.service.ShardedTspgService` that partitions each graph
        across this many time-range shards (``shard_overlap`` widens their
        extents).  Results are identical to the unsharded path; only the
        serving topology changes.
    executor:
        Default batch backend of every service this runner builds
        (``"threads"`` or ``"processes"``); the process backend additionally
        needs snapshots to boot workers from (``graph_from_snapshot`` /
        ``graph_from_shard_snapshots``), degrading to threads otherwise.
    pool:
        Optional persistent :class:`~repro.service.WorkerPool` attached to
        every service this runner builds, so repeated process-backend
        batches reuse the same long-lived workers instead of re-booting a
        fresh executor per batch.  The pool's lifecycle stays the
        caller's — the runner never closes it.
    kernel_backend:
        Forwarded to every service this runner builds: ``"python"`` or
        ``"numpy"`` selects the hot-path kernel implementation of the
        VUG-family algorithms (``None`` keeps each algorithm's default).
        Bit-identical either way; ``"numpy"`` degrades to the Python
        kernels when numpy is not installed.
    """

    time_budget_seconds: Optional[float] = None
    keep_results: bool = False
    use_cache: bool = False
    num_shards: int = 1
    shard_overlap: int = 0
    executor: str = "threads"
    pool: Optional[object] = None
    kernel_backend: Optional[str] = None
    # One service per graph so index warming and (optional) memoization are
    # shared across run_workload/run_all/run_single calls.  Keyed by id();
    # the strong reference keeps each graph alive, so ids cannot be reused.
    _services: Dict[int, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _service_for(self, graph: TemporalGraph):
        from ..service import ShardedTspgService, TspgService  # deferred: cycle

        service = self._services.get(id(graph))
        if service is None:
            # The cache is always sized; `use_cache` gates lookups per
            # submit, so toggling it after the first call still works.
            if self.num_shards > 1:
                service = ShardedTspgService(
                    graph, self.num_shards, overlap=self.shard_overlap,
                    executor=self.executor, pool=self.pool,
                    kernel_backend=self.kernel_backend,
                )
            else:
                service = TspgService(
                    graph, executor=self.executor, pool=self.pool,
                    kernel_backend=self.kernel_backend,
                )
            self._services[id(graph)] = service
        return service

    def graph_from_snapshot(self, path) -> TemporalGraph:
        """Boot a graph (and its warmed service) from an index snapshot.

        The loaded graph is registered with the runner, so every subsequent
        ``run_workload``/``run_single`` call against it reuses the
        snapshot-warmed indices instead of rebuilding them — the O(read)
        cold-start path of :meth:`TspgService.from_snapshot`, kept behind the
        runner's one-service-per-graph bookkeeping.  On an unsharded runner
        the snapshot path stays attached to the service, so
        ``executor="processes"`` batches can boot their workers from it.
        """
        from ..service import ShardedTspgService, TspgService  # deferred: cycle

        if self.num_shards > 1:
            from ..store import load_snapshot  # deferred: store imports graph

            graph = load_snapshot(path)
            self._services[id(graph)] = ShardedTspgService(
                graph, self.num_shards, overlap=self.shard_overlap,
                executor=self.executor, pool=self.pool,
                kernel_backend=self.kernel_backend,
            )
        else:
            service = TspgService.from_snapshot(
                path, executor=self.executor, pool=self.pool,
                kernel_backend=self.kernel_backend,
            )
            graph = service.graph
            self._services[id(graph)] = service
        return graph

    def graph_from_shard_snapshots(self, path) -> TemporalGraph:
        """Boot a sharded router from a per-shard snapshot set directory.

        The counterpart of :meth:`graph_from_snapshot` for
        :class:`~repro.store.ShardSnapshotSet` directories (written by
        ``tspg warm --shards N`` or
        :meth:`~repro.service.ShardedTspgService.save_shards`): the router
        boots one shard service per snapshot file and keeps the files
        attached so ``executor="processes"`` batches fan out over worker
        processes.

        Note the runner keys its service registry by graph identity and
        hands workloads the graph object, so *this* entry point
        materialises the full-graph union up front — callers that want the
        router's full-graph-free boot (the union built only if a spanning
        query ever needs it) should use
        :meth:`~repro.service.ShardedTspgService.from_shard_snapshots`
        directly.
        """
        from ..service import ShardedTspgService  # deferred: cycle

        router = ShardedTspgService.from_shard_snapshots(
            path, executor=self.executor, pool=self.pool,
            kernel_backend=self.kernel_backend,
        )
        graph = router.graph
        self._services[id(graph)] = router
        return graph

    def run_workload(
        self,
        algorithm: TspgAlgorithm,
        graph: TemporalGraph,
        workload: QueryWorkload,
    ) -> WorkloadResult:
        """Execute every query of ``workload`` with ``algorithm``."""
        service = self._service_for(graph)
        outcome = WorkloadResult(
            algorithm=algorithm.name,
            workload=workload.name,
            num_queries=len(workload),
        )
        space_values: List[int] = []
        started = time.perf_counter()
        for query in workload:
            if (
                self.time_budget_seconds is not None
                and time.perf_counter() - started > self.time_budget_seconds
            ):
                outcome.timed_out = True
                break
            result = service.submit(query, algorithm, use_cache=self.use_cache)
            outcome.total_seconds += result.elapsed_seconds
            outcome.per_query_seconds.append(result.elapsed_seconds)
            outcome.num_completed += 1
            space_values.append(result.space_cost)
            if result.timed_out:
                outcome.timed_out = True
            if self.keep_results:
                outcome.results.append(result.result)
        if space_values:
            outcome.max_space = max(space_values)
            outcome.min_space = min(space_values)
        return outcome

    def run_all(
        self,
        algorithms: Sequence[TspgAlgorithm],
        graph: TemporalGraph,
        workload: QueryWorkload,
    ) -> List[WorkloadResult]:
        """Run every algorithm over the same workload (the Fig. 5 protocol)."""
        return [self.run_workload(algorithm, graph, workload) for algorithm in algorithms]

    def run_single(
        self,
        algorithm: TspgAlgorithm,
        graph: TemporalGraph,
        query: TspgQuery,
    ) -> AlgorithmResult:
        """Run a single query (used by the CLI and the examples).

        One-shot queries skip the service unless caching is on: warming every
        per-graph index to answer a single query would cost more than the
        query itself on large graphs.
        """
        if not self.use_cache:
            return algorithm.run(graph, query.source, query.target, query.interval)
        return self._service_for(graph).submit(query, algorithm, use_cache=True)
