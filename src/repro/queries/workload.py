"""Random query-workload generation.

The paper's workloads are "1000 random queries with different source vertices
``s``, target vertices ``t`` and time intervals ``[τb, τe]`` where ``s`` can
temporally reach ``t`` within ``[τb, τe]``", with the interval span ``θ``
fixed per dataset.  :func:`generate_workload` reproduces that recipe on any
temporal graph: it samples a source, an interval anchored at a random edge
timestamp, and then a target among the vertices temporally reachable from the
source within that interval.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..graph.edge import TimeInterval, Vertex
from ..graph.temporal_graph import TemporalGraph
from ..paths.reachability import INFINITY, earliest_arrival_times
from .query import QueryWorkload, TspgQuery


class WorkloadGenerationError(RuntimeError):
    """Raised when no reachable query could be sampled within the attempt budget."""


def generate_workload(
    graph: TemporalGraph,
    num_queries: int,
    theta: int,
    seed: Optional[int] = None,
    name: str = "workload",
    max_attempts_per_query: int = 200,
) -> QueryWorkload:
    """Sample ``num_queries`` reachable queries with interval span ``theta``.

    Parameters
    ----------
    graph:
        The dataset graph.
    theta:
        Interval span ``θ = τe - τb + 1``; intervals are anchored so that they
        intersect the graph's timestamp range.
    seed:
        Seed for reproducible workloads (the benchmark harness fixes it).
    max_attempts_per_query:
        Sampling attempts before giving up on one query slot.

    Raises
    ------
    WorkloadGenerationError
        If a query slot cannot be filled; this indicates the graph is too
        sparse for the requested ``theta``.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if theta <= 1:
        raise ValueError("theta must be at least 2 (a path needs two timestamps)")
    timestamps = graph.timestamps()
    if not timestamps:
        raise WorkloadGenerationError("the graph has no edges to build queries from")

    rng = random.Random(seed)
    vertices = [v for v in graph.vertices() if graph.out_degree(v) > 0]
    if not vertices:
        raise WorkloadGenerationError("the graph has no vertex with out-going edges")

    workload = QueryWorkload(name=name)
    for _ in range(num_queries):
        query = _sample_reachable_query(
            graph, rng, vertices, timestamps, theta, max_attempts_per_query
        )
        if query is None:
            raise WorkloadGenerationError(
                f"could not sample a reachable query with theta={theta} after "
                f"{max_attempts_per_query} attempts"
            )
        workload.add(query)
    return workload


def _sample_reachable_query(
    graph: TemporalGraph,
    rng: random.Random,
    candidate_sources: List[Vertex],
    timestamps: List[int],
    theta: int,
    max_attempts: int,
) -> Optional[TspgQuery]:
    """Sample one query whose target is temporally reachable from its source."""
    for _ in range(max_attempts):
        source = rng.choice(candidate_sources)
        # Anchor the interval at the timestamp of one of the source's
        # out-edges so the source has a chance to act within the window.
        out_entries = graph.out_neighbors_view(source)
        if not out_entries:
            continue
        _, anchor = out_entries[rng.randrange(len(out_entries))]
        begin = anchor - rng.randrange(theta)
        interval = TimeInterval(begin, begin + theta - 1)
        arrival = earliest_arrival_times(graph, source, interval, strict=True)
        reachable = [
            v
            for v, time in arrival.items()
            if time != INFINITY and v != source
        ]
        if not reachable:
            continue
        target = rng.choice(reachable)
        return TspgQuery(source=source, target=target, interval=interval)
    return None


def workload_for_theta_sweep(
    graph: TemporalGraph,
    thetas: List[int],
    num_queries: int,
    seed: Optional[int] = None,
    name: str = "sweep",
) -> List[QueryWorkload]:
    """One workload per ``θ`` value, sharing the seed (the Fig. 6 / Fig. 10 sweeps)."""
    workloads = []
    for theta in thetas:
        workloads.append(
            generate_workload(
                graph,
                num_queries=num_queries,
                theta=theta,
                seed=seed,
                name=f"{name}-theta{theta}",
            )
        )
    return workloads
