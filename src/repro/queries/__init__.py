"""Query objects, random workload generation and the workload runner."""

from .query import QueryWorkload, TspgQuery
from .workload import (
    WorkloadGenerationError,
    generate_workload,
    workload_for_theta_sweep,
)
from .runner import INF, QueryRunner, WorkloadResult

__all__ = [
    "TspgQuery",
    "QueryWorkload",
    "WorkloadGenerationError",
    "generate_workload",
    "workload_for_theta_sweep",
    "QueryRunner",
    "WorkloadResult",
    "INF",
]
