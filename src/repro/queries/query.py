"""Query value objects.

A ``tspG`` query is fully described by the source, the target and the time
interval; :class:`TspgQuery` bundles the three and a :class:`QueryWorkload`
is a named list of queries over one dataset (the paper runs 1000 random
queries per dataset and reports their total time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from ..graph.edge import TimeInterval, Vertex, as_interval


@dataclass(frozen=True)
class TspgQuery:
    """One temporal-simple-path-graph query ``(s, t, [τb, τe])``."""

    source: Vertex
    target: Vertex
    interval: TimeInterval

    def __post_init__(self) -> None:
        object.__setattr__(self, "interval", as_interval(self.interval))
        if self.source == self.target:
            raise ValueError("source and target of a query must differ")

    @property
    def theta(self) -> int:
        """The interval span ``θ`` the paper's parameter sweeps vary."""
        return self.interval.span

    def as_tuple(self):
        """``(source, target, (τb, τe))`` — handy for logging and golden files."""
        return (self.source, self.target, self.interval.as_tuple())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Query({self.source!r} -> {self.target!r}, {self.interval})"


@dataclass
class QueryWorkload:
    """A named collection of queries against one dataset."""

    name: str
    queries: List[TspgQuery] = field(default_factory=list)

    def add(self, query: TspgQuery) -> None:
        """Append one query."""
        self.queries.append(query)

    def extend(self, queries: Sequence[TspgQuery]) -> None:
        """Append many queries."""
        self.queries.extend(queries)

    def __iter__(self) -> Iterator[TspgQuery]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def average_theta(self) -> float:
        """Mean interval span across the workload (sanity metric)."""
        if not self.queries:
            return 0.0
        return sum(q.theta for q in self.queries) / len(self.queries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryWorkload({self.name!r}, {len(self.queries)} queries)"
