"""Synthetic analogues of the paper's D1–D10 datasets.

The paper evaluates on ten real-world temporal graphs (TABLE I) obtained from
SNAP and KONECT.  Those graphs cannot be redistributed (and are far too large
for a pure-Python reproduction), so this registry provides *scaled-down
synthetic analogues*: each entry keeps the paper's dataset id, its original
statistics for reference, the default interval span ``θ`` used in the
experiments, and a deterministic generator whose output mimics the structural
profile of the original (burstiness, degree skew, community structure, size
ordering D1 < … < D10).

The analogues preserve what the algorithms are sensitive to — the relative
ordering of upper-bound tightness and the growth of enumeration cost with
``θ`` — which is what the benchmark harness reports.

Alongside D1–D10 the registry carries one *scale* entry,
:data:`SYNTH_SCALE` (key ``"synth-scale"``): a parameterisable streaming
generator for bigger-than-RAM snapshot testing (10⁷–10⁸ edges).  Unlike the
D-entries it is never loaded eagerly by registry-wide tooling (``tspg
datasets`` prints its parameters instead of its statistics) — its edges are
*streamed* into a graph or straight to disk by the caller that asked for
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..graph.statistics import GraphStatistics, compute_statistics
from ..graph.temporal_graph import TemporalGraph
from ..graph import generators


@dataclass(frozen=True)
class PaperStatistics:
    """The original dataset's statistics as reported in TABLE I."""

    num_vertices: int
    num_edges: int
    num_timestamps: int
    max_degree: int
    default_theta: int


@dataclass(frozen=True)
class DatasetSpec:
    """One synthetic dataset: metadata plus a deterministic generator."""

    key: str
    paper_name: str
    description: str
    default_theta: int
    generator: Callable[[], TemporalGraph]
    paper_statistics: PaperStatistics

    def load(self) -> TemporalGraph:
        """Generate (deterministically) the synthetic analogue graph."""
        return self.generator()

    def statistics(self) -> GraphStatistics:
        """Statistics of the synthetic analogue (for the TABLE I bench)."""
        return compute_statistics(self.load())


def _d1_email() -> TemporalGraph:
    """D1 analogue (email-Eu-core): small, dense, bursty email traffic."""
    return generators.bursty_email_graph(
        num_vertices=70, num_bursts=14, edges_per_burst=200, burst_width=8,
        gap_between_bursts=3, seed=101,
    )


def _d2_mathoverflow() -> TemporalGraph:
    """D2 analogue (sx-mathoverflow): Q&A graph with moderate hubs."""
    return generators.preferential_attachment_temporal_graph(
        num_vertices=100, num_edges=3000, num_timestamps=60, hub_bias=0.6, seed=102,
    )


def _d3_askubuntu() -> TemporalGraph:
    """D3 analogue (sx-askubuntu): larger Q&A graph, sparser per vertex."""
    return generators.preferential_attachment_temporal_graph(
        num_vertices=150, num_edges=5000, num_timestamps=80, hub_bias=0.7, seed=103,
    )


def _d4_superuser() -> TemporalGraph:
    """D4 analogue (sx-superuser): Q&A graph with stronger hub skew."""
    return generators.preferential_attachment_temporal_graph(
        num_vertices=180, num_edges=6000, num_timestamps=80, hub_bias=0.75, seed=104,
    )


def _d5_wiki_ru() -> TemporalGraph:
    """D5 analogue (wiki-ru): community-structured edit interactions."""
    return generators.community_temporal_graph(
        num_communities=6, community_size=20, intra_edges_per_community=500,
        inter_edges=300, num_timestamps=80, seed=105,
    )


def _d6_wiki_de() -> TemporalGraph:
    """D6 analogue (wiki-de): larger community-structured edit interactions."""
    return generators.community_temporal_graph(
        num_communities=8, community_size=25, intra_edges_per_community=550,
        inter_edges=420, num_timestamps=90, seed=106,
    )


def _d7_wiki_talk() -> TemporalGraph:
    """D7 analogue (wiki-talk): cycle-rich back-and-forth talk-page exchanges."""
    return generators.temporal_cycle_graph(
        num_vertices=80, num_cycles=400, cycle_length=5, num_timestamps=80,
        chord_edges=600, seed=107,
    )


def _d8_flickr() -> TemporalGraph:
    """D8 analogue (flickr): dense follower bursts over few distinct timestamps."""
    return generators.bursty_email_graph(
        num_vertices=40, num_bursts=10, edges_per_burst=1100, burst_width=12,
        gap_between_bursts=2, seed=108,
    )


def _d9_stackoverflow() -> TemporalGraph:
    """D9 analogue (sx-stackoverflow): the largest Q&A graph."""
    return generators.preferential_attachment_temporal_graph(
        num_vertices=220, num_edges=9000, num_timestamps=90, hub_bias=0.7, seed=109,
    )


def _d10_wikipedia() -> TemporalGraph:
    """D10 analogue (wikipedia): the largest graph, mixed hub + community."""
    base = generators.preferential_attachment_temporal_graph(
        num_vertices=250, num_edges=8000, num_timestamps=100, hub_bias=0.7, seed=110,
    )
    extra = generators.community_temporal_graph(
        num_communities=6, community_size=30, intra_edges_per_community=400,
        inter_edges=300, num_timestamps=100, seed=210,
    )
    merged = base.copy()
    offset = 10_000  # keep the community block's vertex ids disjoint
    for u, v, t in extra.edge_tuples():
        merged.add_edge(offset + u, offset + v, t)
    # Sparse bridges so the two blocks form one connected temporal structure.
    import random

    rng = random.Random(310)
    for _ in range(400):
        u = rng.randrange(250)
        v = offset + rng.randrange(180)
        t = rng.randrange(1, 101)
        if rng.random() < 0.5:
            merged.add_edge(u, v, t)
        else:
            merged.add_edge(v, u, t)
    return merged


#: The ten dataset specs, keyed "D1" … "D10".
DATASETS: Dict[str, DatasetSpec] = {
    "D1": DatasetSpec(
        key="D1",
        paper_name="email-Eu-core",
        description="European research institution internal email (bursty, dense).",
        default_theta=10,
        generator=_d1_email,
        paper_statistics=PaperStatistics(1_005, 332_334, 803, 9_782, 10),
    ),
    "D2": DatasetSpec(
        key="D2",
        paper_name="sx-mathoverflow",
        description="MathOverflow question/answer/comment interactions.",
        default_theta=20,
        generator=_d2_mathoverflow,
        paper_statistics=PaperStatistics(88_581, 506_550, 2_350, 5_931, 20),
    ),
    "D3": DatasetSpec(
        key="D3",
        paper_name="sx-askubuntu",
        description="AskUbuntu question/answer/comment interactions.",
        default_theta=20,
        generator=_d3_askubuntu,
        paper_statistics=PaperStatistics(159_316, 964_437, 2_613, 8_729, 20),
    ),
    "D4": DatasetSpec(
        key="D4",
        paper_name="sx-superuser",
        description="SuperUser question/answer/comment interactions.",
        default_theta=20,
        generator=_d4_superuser,
        paper_statistics=PaperStatistics(194_085, 1_443_339, 2_773, 26_996, 20),
    ),
    "D5": DatasetSpec(
        key="D5",
        paper_name="wiki-ru",
        description="Russian Wikipedia edit interactions.",
        default_theta=25,
        generator=_d5_wiki_ru,
        paper_statistics=PaperStatistics(457_018, 2_282_055, 4_715, 188_103, 25),
    ),
    "D6": DatasetSpec(
        key="D6",
        paper_name="wiki-de",
        description="German Wikipedia edit interactions.",
        default_theta=25,
        generator=_d6_wiki_de,
        paper_statistics=PaperStatistics(519_404, 6_729_794, 5_599, 395_780, 25),
    ),
    "D7": DatasetSpec(
        key="D7",
        paper_name="wiki-talk",
        description="Wikipedia talk-page interactions (extremely skewed).",
        default_theta=20,
        generator=_d7_wiki_talk,
        paper_statistics=PaperStatistics(1_140_149, 7_833_140, 2_320, 264_905, 20),
    ),
    "D8": DatasetSpec(
        key="D8",
        paper_name="flickr",
        description="Flickr follower growth (few distinct timestamps, dense).",
        default_theta=10,
        generator=_d8_flickr,
        paper_statistics=PaperStatistics(2_302_926, 33_140_017, 196, 34_174, 10),
    ),
    "D9": DatasetSpec(
        key="D9",
        paper_name="sx-stackoverflow",
        description="StackOverflow question/answer/comment interactions.",
        default_theta=20,
        generator=_d9_stackoverflow,
        paper_statistics=PaperStatistics(6_024_271, 63_497_050, 2_776, 101_663, 20),
    ),
    "D10": DatasetSpec(
        key="D10",
        paper_name="wikipedia",
        description="English Wikipedia hyperlink/edit interactions.",
        default_theta=25,
        generator=_d10_wikipedia,
        paper_statistics=PaperStatistics(2_166_670, 86_337_879, 3_787, 218_465, 25),
    ),
}


@dataclass(frozen=True)
class SyntheticScaleSpec:
    """The ``synth-scale`` registry entry: a streaming scale generator.

    Not a :class:`DatasetSpec`: loading it eagerly at its headline sizes
    (10⁷–10⁸ edges) is exactly what the mmap snapshot boot exists to avoid,
    so registry-wide tooling must treat it as *parameters*, not a graph.
    Use :meth:`scaled` (or CLI size flags) to derive a right-sized variant,
    :meth:`edge_stream` to iterate its edges in O(1) memory, and
    :meth:`write_edge_list` to stream them to a text file without ever
    holding the edge list.
    """

    key: str = "synth-scale"
    description: str = (
        "Streaming synthetic scale generator (skewed degrees, bursty "
        "timestamps) for bigger-than-RAM snapshot and mmap-boot testing."
    )
    default_theta: int = 50
    num_vertices: int = 20_000
    num_edges: int = 120_000
    num_timestamps: int = 2_000
    hub_bias: float = 0.6
    burst_skew: float = 2.5
    seed: int = 415

    def scaled(
        self,
        *,
        num_vertices: Optional[int] = None,
        num_edges: Optional[int] = None,
        num_timestamps: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> "SyntheticScaleSpec":
        """A copy with the given size parameters overridden."""
        overrides = {
            name: value
            for name, value in (
                ("num_vertices", num_vertices),
                ("num_edges", num_edges),
                ("num_timestamps", num_timestamps),
                ("seed", seed),
            )
            if value is not None
        }
        return replace(self, **overrides)

    def parameters(self) -> Dict[str, object]:
        """Flat parameter dict (what ``tspg datasets`` renders as the row)."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "num_timestamps": self.num_timestamps,
            "hub_bias": self.hub_bias,
            "burst_skew": self.burst_skew,
            "seed": self.seed,
        }

    def edge_stream(self) -> Iterator[Tuple[int, int, int]]:
        """Yield the deterministic ``(u, v, t)`` stream, O(1) memory."""
        return generators.synth_scale_edges(
            self.num_vertices,
            self.num_edges,
            num_timestamps=self.num_timestamps,
            hub_bias=self.hub_bias,
            burst_skew=self.burst_skew,
            seed=self.seed,
        )

    def load(self) -> TemporalGraph:
        """Stream the edges into a :class:`TemporalGraph`.

        The returned graph holds every *distinct* edge in memory (duplicate
        draws collapse) — appropriate for scaled-down variants; at the
        headline 10⁷–10⁸ sizes, warm into a snapshot once and serve it
        mmap'd instead of calling this per boot.
        """
        graph = TemporalGraph(vertices=range(self.num_vertices))
        graph.add_edges(self.edge_stream())
        return graph

    def write_edge_list(self, path) -> int:
        """Stream the edges to ``path`` as ``u v t`` lines; return the count.

        Never materialises the edge list: memory stays O(1) regardless of
        ``num_edges``, so generating a 10⁸-edge file works on a small box.
        """
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for u, v, t in self.edge_stream():
                handle.write(f"{u} {v} {t}\n")
                count += 1
        return count


#: The scale entry (see :class:`SyntheticScaleSpec`); key ``"synth-scale"``.
SYNTH_SCALE = SyntheticScaleSpec()

#: Key under which the scale generator is exposed by the CLI.
SYNTH_SCALE_KEY = SYNTH_SCALE.key


def dataset_keys() -> List[str]:
    """The dataset keys in paper order (D1 … D10)."""
    return [f"D{i}" for i in range(1, 11)]


def get_dataset(key: str) -> DatasetSpec:
    """Look a dataset spec up by key (e.g. ``"D3"``)."""
    try:
        return DATASETS[key]
    except KeyError as exc:
        raise KeyError(f"unknown dataset {key!r}; available: {', '.join(dataset_keys())}") from exc


def load_dataset(key: str) -> TemporalGraph:
    """Generate the synthetic analogue graph for ``key``."""
    return get_dataset(key).load()


def small_dataset_keys() -> List[str]:
    """Datasets small enough for the slowest baselines (used by quick benches)."""
    return ["D1", "D2", "D3", "D4"]
