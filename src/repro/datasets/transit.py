"""Synthetic transit network for the SFMTA case study (Exp-8, Fig. 13).

The paper's case study builds a temporal graph from the San Francisco
Municipal Transportation Agency GTFS feed (936,188 scheduled trips, 3,267
stops) and queries the temporal simple path graph from "Silver Ave" to
"30th St" within [9:20, 9:30].  The feed is not redistributable, so this
module generates a schedule-like temporal graph that

* contains the eight named stops of Fig. 13 with bus trips reproducing the
  figure's 17-edge neighbourhood (three bus lines 469, 291 and 720 with
  minute-resolution departures), and
* embeds that neighbourhood in a larger synthetic city grid of stops with
  periodic timetables, so the query actually has to prune irrelevant trips.

Timestamps are minutes since midnight (e.g. 9:23 → 563).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.temporal_graph import TemporalGraph


def minute(hhmm: str) -> int:
    """Convert ``"HH:MM"`` to minutes since midnight (``"09:23"`` → 563)."""
    hours, minutes = hhmm.split(":")
    return int(hours) * 60 + int(minutes)


def hhmm(minutes: int) -> str:
    """Inverse of :func:`minute` (563 → ``"09:23"``)."""
    return f"{minutes // 60:02d}:{minutes % 60:02d}"


#: The eight stops of Fig. 13.
CASE_STUDY_STOPS: List[str] = [
    "Silver Ave",
    "Trumbull St",
    "Murray St",
    "Richland Ave",
    "Highland Ave",
    "Appleton Ave",
    "Cortland Ave",
    "30th St",
]

#: The case-study query of the paper: s = "Silver Ave", t = "30th St", [9:20, 9:30].
CASE_STUDY_QUERY: Tuple[str, str, Tuple[int, int]] = (
    "Silver Ave",
    "30th St",
    (minute("09:20"), minute("09:30")),
)


@dataclass(frozen=True)
class ScheduledTrip:
    """One scheduled hop of a bus line between consecutive stops."""

    line: str
    from_stop: str
    to_stop: str
    departure: int  # minutes since midnight

    def as_edge(self) -> Tuple[str, str, int]:
        """Edge tuple for :class:`TemporalGraph`."""
        return (self.from_stop, self.to_stop, self.departure)


def case_study_trips() -> List[ScheduledTrip]:
    """The 17 trips of the Fig. 13 neighbourhood.

    Bus 469 serves Silver Ave → Trumbull St → Murray St → Richland Ave,
    bus 291 serves Richland Ave → Highland Ave → Appleton Ave → 30th St and
    bus 720 serves Silver Ave → Cortland Ave → 30th St; consecutive departures
    are one minute apart as in the figure.
    """
    trips: List[ScheduledTrip] = []

    def add(line: str, stops: List[str], departures: List[str]) -> None:
        for index, when in enumerate(departures):
            trips.append(
                ScheduledTrip(
                    line=line,
                    from_stop=stops[index % (len(stops) - 1)],
                    to_stop=stops[index % (len(stops) - 1) + 1],
                    departure=minute(when),
                )
            )

    # Bus 469 runs two services through Silver Ave -> Richland Ave.
    line_469 = ["Silver Ave", "Trumbull St", "Murray St", "Richland Ave"]
    add("469", line_469, ["09:22", "09:23", "09:24"])
    add("469", line_469, ["09:24", "09:25", "09:26"])
    # Bus 291 continues from Richland Ave to 30th St.
    line_291 = ["Richland Ave", "Highland Ave", "Appleton Ave", "30th St"]
    add("291", line_291, ["09:25", "09:26", "09:27"])
    add("291", line_291, ["09:27", "09:28", "09:29"])
    # Bus 720 is the direct-ish alternative via Cortland Ave.
    line_720 = ["Silver Ave", "Cortland Ave", "30th St"]
    add("720", line_720, ["09:23", "09:26"])
    add("720", line_720, ["09:26", "09:28"])
    # One late arrival into 30th St that is still inside the window.
    trips.append(ScheduledTrip("291", "Appleton Ave", "30th St", minute("09:30")))
    return trips


def case_study_graph() -> TemporalGraph:
    """The bare Fig. 13 neighbourhood: 8 stops and 17 scheduled trips."""
    graph = TemporalGraph(vertices=CASE_STUDY_STOPS)
    for trip in case_study_trips():
        graph.add_edge(*trip.as_edge())
    return graph


def generate_transit_network(
    num_extra_stops: int = 120,
    lines: int = 14,
    stops_per_line: int = 8,
    first_departure: str = "06:00",
    last_departure: str = "22:00",
    headway_minutes: int = 12,
    seed: Optional[int] = 42,
) -> TemporalGraph:
    """Generate a city-scale synthetic timetable embedding the case-study stops.

    Each synthetic line is a random sequence of stops served periodically from
    ``first_departure`` to ``last_departure`` with the given headway; travel
    time between consecutive stops is one or two minutes.  The Fig. 13 trips
    are always included, and a handful of connector trips attach the named
    stops to the synthetic grid so the case-study query runs against a graph
    with plenty of irrelevant schedule entries to prune.
    """
    rng = random.Random(seed)
    graph = TemporalGraph(vertices=CASE_STUDY_STOPS)

    for trip in case_study_trips():
        graph.add_edge(*trip.as_edge())

    extra_stops = [f"Stop {index:03d}" for index in range(num_extra_stops)]
    for stop in extra_stops:
        graph.add_vertex(stop)

    all_stops = extra_stops + CASE_STUDY_STOPS
    start = minute(first_departure)
    end = minute(last_departure)
    for line_index in range(lines):
        line_stops = rng.sample(all_stops, min(stops_per_line, len(all_stops)))
        departure = start + rng.randrange(headway_minutes)
        while departure < end:
            current = departure
            for from_stop, to_stop in zip(line_stops, line_stops[1:]):
                if from_stop == to_stop:
                    continue
                graph.add_edge(from_stop, to_stop, current)
                current += rng.choice((1, 2))
            departure += headway_minutes
    # Connector trips feeding the case-study corridor in the morning peak.
    for _ in range(30):
        from_stop = rng.choice(extra_stops)
        to_stop = rng.choice(CASE_STUDY_STOPS)
        when = minute("09:00") + rng.randrange(45)
        graph.add_edge(from_stop, to_stop, when)
        graph.add_edge(to_stop, rng.choice(extra_stops), when + rng.choice((1, 2)))
    return graph


def describe_transfer_options(path_graph) -> List[str]:
    """Human-readable rendering of a transit ``tspG`` (one line per trip edge)."""
    lines = []
    for u, v, timestamp in sorted(path_graph.edges, key=lambda item: item[2]):
        lines.append(f"{hhmm(timestamp)}  {u} -> {v}")
    return lines
