"""Dataset registry: synthetic analogues of D1–D10 and the transit case study."""

from .registry import (
    DATASETS,
    SYNTH_SCALE,
    SYNTH_SCALE_KEY,
    DatasetSpec,
    PaperStatistics,
    SyntheticScaleSpec,
    dataset_keys,
    get_dataset,
    load_dataset,
    small_dataset_keys,
)
from .transit import (
    CASE_STUDY_QUERY,
    CASE_STUDY_STOPS,
    ScheduledTrip,
    case_study_graph,
    case_study_trips,
    describe_transfer_options,
    generate_transit_network,
    hhmm,
    minute,
)

__all__ = [
    "DATASETS",
    "SYNTH_SCALE",
    "SYNTH_SCALE_KEY",
    "DatasetSpec",
    "SyntheticScaleSpec",
    "PaperStatistics",
    "dataset_keys",
    "get_dataset",
    "load_dataset",
    "small_dataset_keys",
    "CASE_STUDY_QUERY",
    "CASE_STUDY_STOPS",
    "ScheduledTrip",
    "case_study_graph",
    "case_study_trips",
    "describe_transfer_options",
    "generate_transit_network",
    "minute",
    "hhmm",
]
