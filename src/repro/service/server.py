"""The network serving tier: one booted service, many concurrent clients.

``tspg serve`` historically spoke JSONL over stdio to exactly one client.
This module puts the same request loop behind an asyncio TCP front end so
many clients multiplex onto one shared booted service (and its attached
:class:`~repro.service.pool.WorkerPool`), without giving either path its
own protocol implementation:

- :class:`RequestCore` is the transport-independent request handler — it
  owns the JSONL op schema (``query`` / ``batch`` / ``ingest`` / ``stats``
  / ``quit``), the error translation contract, and the per-op latency
  accounting.  The stdio loop in :mod:`repro.cli` and the TCP server below
  both drive this one object, so a protocol fix lands in both transports.
- :class:`TspgServer` is the asyncio front end.  Admission control is
  built from the existing :class:`~repro.core.deadline.Deadline`
  machinery: a request's deadline is stamped at *arrival* (so queue wait
  counts against it), and a request whose deadline expires before a
  worker slot frees up is refused **before any work runs** — the same
  refuse-before-work contract the service itself honours for expired
  deadlines.  A bounded per-client queue gives TCP backpressure (a
  firehose client blocks only its own reader), a global in-flight bound
  refuses excess load outright, and a round-robin fair scheduler hands
  worker slots out per-client so one busy connection cannot starve the
  rest.  Each client's responses are written under a per-connection lock
  with ``drain()`` — a slow consumer stalls only its own writes, never
  the accept loop or other clients.
- :class:`TspgClient` is a small blocking JSONL client (tests, the exp18
  load harness, and the CI protocol smoke all drive the server with it),
  and :class:`ServerThread` runs a server on a background event loop for
  in-process harnesses.

Refusal contract
----------------
Two refusal shapes exist, and they are deliberately distinct:

- **Deadline refusal** (the request carried ``deadline_ms`` /
  ``budget_ms`` and it expired while queued): answered like a timed-out
  query — ``ok: true`` with zero counts, ``timed_out: true`` and
  ``refused: true`` — because the *protocol* succeeded; the caller's
  budget simply ran out before admission, exactly as it may run out
  mid-phase inside the service.
- **Overload refusal** (the global in-flight bound is hit): ``ok: false``
  with ``refused: true`` and ``retryable: true`` — the server did not
  accept the request at all and a retry later may succeed.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import functools
import itertools
import json
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..algorithms import available_algorithms
from ..core.deadline import Deadline
from ..queries.query import TspgQuery
from .pool import WorkerPool, WorkerPoolError

__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_MAX_LINE_BYTES",
    "DEFAULT_MAX_PENDING_PER_CLIENT",
    "LatencyHistogram",
    "RequestCore",
    "ServerStats",
    "ServerThread",
    "TspgClient",
    "TspgServer",
    "coerce_vertex",
    "parse_request_line",
]

# Bounds chosen for a serving tier, not a bulk loader: a 1 MiB line fits
# thousand-edge ingest batches with room to spare, while still refusing a
# runaway (or adversarial) request before it is buffered whole.
DEFAULT_MAX_LINE_BYTES = 1 << 20
DEFAULT_MAX_INFLIGHT = 64
DEFAULT_MAX_PENDING_PER_CLIENT = 16


def coerce_vertex(label: str, graph) -> object:
    """Interpret a request vertex label as int when the graph uses integer ids.

    ``graph`` only needs ``has_vertex`` — callers pass the *service* (flat
    or sharded), never ``service.graph``, because on a snapshot-booted
    sharded router the ``graph`` accessor would materialise the full-graph
    union just to coerce a label, which ``has_vertex`` answers union-free.
    """
    if graph.has_vertex(label):
        return label
    try:
        as_int = int(label)
    except ValueError:
        return label
    return as_int if graph.has_vertex(as_int) else label


def parse_request_line(line: str):
    """Decode one protocol line into ``(kind, request)``.

    ``kind`` is ``"blank"`` (empty line or ``#`` comment — skip, answer
    nothing), ``"quit"`` (session end requested) or ``"request"``.  Raises
    :class:`ValueError` on malformed JSON or a non-object payload; both
    transports translate that into an ``ok: false`` response and keep the
    session alive.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return "blank", None
    request = json.loads(stripped)
    if not isinstance(request, dict):
        raise ValueError("request must be a JSON object")
    if request.get("op") == "quit":
        return "quit", request
    return "request", request


def request_op(request: dict) -> str:
    """The operation a request names (the legacy schema implies it)."""
    operation = request.get("op")
    if operation is None:
        operation = "batch" if "queries" in request else "query"
    return operation


def arrival_deadline(request: dict) -> Optional[Deadline]:
    """Stamp a request's budget against the clock *now*, at arrival.

    Queries carry ``deadline_ms``, batches ``budget_ms``.  The network
    tier stamps the deadline when the request is read off the socket, so
    time spent waiting for admission counts against the caller's budget —
    that is what makes refuse-before-work meaningful under load.
    """
    operation = request_op(request)
    raw = None
    if operation == "query":
        raw = request.get("deadline_ms")
    elif operation == "batch":
        raw = request.get("budget_ms")
    if raw is None:
        return None
    return Deadline.after(float(raw) / 1000.0)


# ----------------------------------------------------------------------
# latency + counter surface
# ----------------------------------------------------------------------

_BUCKET_BOUNDS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class LatencyHistogram:
    """Fixed log-spaced latency buckets (milliseconds), thread-safe.

    Quantiles are read off the bucket upper edges (the exact maximum is
    tracked separately), which is the usual serving-histogram trade: O(1)
    memory per op regardless of traffic, at ~bucket-width resolution.
    """

    __slots__ = ("_lock", "_counts", "_count", "_sum", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(_BUCKET_BOUNDS_MS) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, elapsed_ms: float) -> None:
        index = bisect.bisect_left(_BUCKET_BOUNDS_MS, elapsed_ms)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += elapsed_ms
            if elapsed_ms > self._max:
                self._max = elapsed_ms

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> float:
        """The bucket upper edge at quantile ``q`` (max for the top bucket)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= rank:
                    if index >= len(_BUCKET_BOUNDS_MS):
                        return self._max
                    return min(_BUCKET_BOUNDS_MS[index], self._max)
            return self._max

    def summary(self) -> Dict[str, object]:
        with self._lock:
            count, total, peak = self._count, self._sum, self._max
            counts = list(self._counts)
        if count == 0:
            return {"count": 0}
        buckets = [
            [(_BUCKET_BOUNDS_MS[i] if i < len(_BUCKET_BOUNDS_MS) else None), n]
            for i, n in enumerate(counts)
            if n
        ]
        return {
            "count": count,
            "mean_ms": round(total / count, 3),
            "p50_ms": round(self.quantile(0.50), 3),
            "p99_ms": round(self.quantile(0.99), 3),
            "max_ms": round(peak, 3),
            "buckets_ms": buckets,
        }


class ServerStats:
    """Serving-tier counters surfaced by the ``stats`` op.

    One instance per :class:`RequestCore`; the TCP server shares it, so a
    stdio session reports the same schema with the connection counters at
    zero (the degenerate single-client case).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.connections_opened = 0
        self.connections_active = 0
        self.requests_admitted = 0
        self.responses_sent = 0
        self.refused_deadline = 0
        self.refused_overload = 0
        self.protocol_errors = 0
        self._histograms: Dict[str, LatencyHistogram] = {}

    def note_connection_opened(self) -> None:
        with self._lock:
            self.connections_opened += 1
            self.connections_active += 1

    def note_connection_closed(self) -> None:
        with self._lock:
            self.connections_active -= 1

    def note_refusal(self, kind: str) -> None:
        with self._lock:
            if kind == "deadline":
                self.refused_deadline += 1
            else:
                self.refused_overload += 1

    def note_protocol_error(self) -> None:
        with self._lock:
            self.protocol_errors += 1

    def note_response(self) -> None:
        with self._lock:
            self.responses_sent += 1

    def note_op(self, operation: str, elapsed_ms: float) -> None:
        with self._lock:
            self.requests_admitted += 1
            histogram = self._histograms.get(operation)
            if histogram is None:
                histogram = self._histograms[operation] = LatencyHistogram()
        histogram.record(elapsed_ms)

    @property
    def refusals(self) -> int:
        return self.refused_deadline + self.refused_overload

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            histograms = dict(self._histograms)
            payload: Dict[str, object] = {
                "connections_opened": self.connections_opened,
                "connections_active": self.connections_active,
                "requests_admitted": self.requests_admitted,
                "responses_sent": self.responses_sent,
                "refused_deadline": self.refused_deadline,
                "refused_overload": self.refused_overload,
                "protocol_errors": self.protocol_errors,
            }
        payload["latency_ms"] = {
            operation: histogram.summary()
            for operation, histogram in sorted(histograms.items())
        }
        return payload


# ----------------------------------------------------------------------
# the shared request core
# ----------------------------------------------------------------------


class RequestCore:
    """Transport-independent JSONL request handling over one booted service.

    Both ``tspg serve`` transports (stdio and ``--listen``) hold exactly
    one of these.  It validates and dispatches the op schema, translates
    the serving error contract (worker death is retryable, snapshot
    corruption and malformed requests are ``ok: false``, the session
    always survives), and records per-op latency into :attr:`stats`.
    """

    def __init__(
        self,
        service,
        *,
        pool: Optional[WorkerPool] = None,
        default_workers: int = 1,
        default_executor: str = "threads",
        default_budget_seconds: Optional[float] = None,
        evict_every: int = 0,
        stats: Optional[ServerStats] = None,
    ) -> None:
        self.service = service
        self.pool = pool
        self.default_workers = default_workers
        self.default_executor = default_executor
        self.default_budget_seconds = default_budget_seconds
        self.evict_every = evict_every
        self.stats = stats or ServerStats()
        self._gauges: Optional[Callable[[], Dict[str, int]]] = None
        self._evict_lock = threading.Lock()
        self._handled = 0

    def attach_gauges(self, gauges: Callable[[], Dict[str, int]]) -> None:
        """Let the TCP server contribute live queue/in-flight gauges."""
        self._gauges = gauges

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    def parse_query(self, request: dict) -> TspgQuery:
        """Decode one query request (or one batch entry)."""
        missing = [
            key for key in ("source", "target", "begin", "end") if key not in request
        ]
        if missing:
            raise ValueError(f"query request is missing {', '.join(missing)}")
        return TspgQuery(
            coerce_vertex(str(request["source"]), self.service),
            coerce_vertex(str(request["target"]), self.service),
            (int(request["begin"]), int(request["end"])),
        )

    # ------------------------------------------------------------------
    # the line-level protocol (stdio drives this directly)
    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> Tuple[Optional[dict], bool]:
        """Answer one raw protocol line: ``(response | None, session_over)``.

        Blank lines and ``#`` comments answer nothing and keep going —
        interactive sessions produce them as keystroke artifacts, not as
        requests.  ``quit`` is acknowledged (so shutdown is observable,
        symmetric with every other op) and ends the session; EOF is the
        transport's job and ends it without an ack.
        """
        try:
            kind, request = parse_request_line(line)
        except ValueError as exc:
            self.stats.note_protocol_error()
            return {"ok": False, "error": str(exc)}, False
        if kind == "blank":
            return None, False
        if kind == "quit":
            return {"ok": True, "op": "quit"}, True
        return self.respond(request, arrival_deadline(request)), False

    def respond(self, request: dict, deadline: Optional[Deadline] = None) -> dict:
        """Handle one decoded request, translating errors per the contract."""
        from ..store import SnapshotError  # deferred: service <-> store cycle

        try:
            return self.handle(request, deadline=deadline)
        except WorkerPoolError as exc:
            # A worker died mid-batch.  The pool has already discarded its
            # broken worker set and will fork a fresh one on the next
            # batch — the session must survive to serve it.
            return {"ok": False, "error": str(exc), "retryable": True}
        except SnapshotError as exc:
            # A worker failed to boot (snapshot deleted/rewritten under a
            # live session).  Only EOF or quit may end the session; the
            # operator decides whether to re-warm.
            return {"ok": False, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}

    # ------------------------------------------------------------------
    # op dispatch
    # ------------------------------------------------------------------
    def handle(self, request: dict, *, deadline: Optional[Deadline] = None) -> dict:
        """Answer one decoded JSONL request (raises on protocol errors)."""
        started = time.perf_counter()
        operation = request_op(request)
        algorithm = request.get("algorithm")
        if algorithm is not None and algorithm not in available_algorithms():
            raise ValueError(
                f"unknown algorithm {algorithm!r}; available: "
                f"{', '.join(available_algorithms())}"
            )
        if operation == "query":
            response = self._handle_query(request, algorithm, deadline)
        elif operation == "batch":
            response = self._handle_batch(request, algorithm, deadline)
        elif operation == "ingest":
            response = self._handle_ingest(request)
        elif operation == "stats":
            response = self._handle_stats()
        else:
            raise ValueError(
                f"unknown op {operation!r} "
                "(expected query, batch, ingest, stats or quit)"
            )
        self.stats.note_op(operation, (time.perf_counter() - started) * 1000.0)
        if self.evict_every:
            with self._evict_lock:
                self._handled += 1
                due = self._handled % self.evict_every == 0
            if due:
                # Periodic DONTNEED keeps a long session's resident set
                # proportional to its recent working set; dropped pages
                # re-fault from the snapshot file, so this trades a little
                # tail latency for bounded memory.
                self.service.evict_cold_pages()
        return response

    def _handle_query(
        self, request: dict, algorithm: Optional[str], deadline: Optional[Deadline]
    ) -> dict:
        query = self.parse_query(request)
        if deadline is None and request.get("deadline_ms") is not None:
            deadline = Deadline.after(float(request["deadline_ms"]) / 1000.0)
        # Epoch stamps bracket the answer so a network client can replay
        # it against a serial oracle: the result is bit-identical to the
        # graph at *some* epoch in [epoch_before, epoch_after].
        epoch_before = self.service.epoch
        outcome = self.service.submit(query, algorithm, deadline=deadline)
        epoch_after = self.service.epoch
        response = {
            "ok": True,
            "op": "query",
            "algorithm": outcome.algorithm,
            "num_vertices": outcome.result.num_vertices,
            "num_edges": outcome.result.num_edges,
            "elapsed_ms": round(outcome.elapsed_seconds * 1000.0, 3),
            "timed_out": outcome.timed_out,
            "cache_hit": bool(outcome.extras.get("cache_hit")),
            "epoch_before": epoch_before,
            "epoch_after": epoch_after,
        }
        if request.get("include_edges"):
            # Deterministic order so two replays of the same answer are
            # byte-identical on the wire, not just set-equal.
            response["edges"] = [
                [u, v, t]
                for u, v, t in sorted(
                    outcome.result.edges,
                    key=lambda item: (item[2], str(item[0]), str(item[1])),
                )
            ]
        return response

    def _handle_batch(
        self, request: dict, algorithm: Optional[str], deadline: Optional[Deadline]
    ) -> dict:
        raw = request.get("queries")
        if not isinstance(raw, list) or not raw:
            raise ValueError("batch request needs a non-empty 'queries' list")
        queries = []
        for entry in raw:
            if isinstance(entry, dict):
                queries.append(self.parse_query(entry))
            else:
                if len(entry) != 4:
                    raise ValueError(
                        "each batch query must be [source, target, begin, end]"
                    )
                queries.append(
                    self.parse_query(
                        dict(zip(("source", "target", "begin", "end"), entry))
                    )
                )
        budget = self.default_budget_seconds
        if request.get("budget_ms") is not None:
            budget = float(request["budget_ms"]) / 1000.0
        if deadline is not None:
            # The arrival-stamped deadline already accounts for queue
            # wait; re-deriving from budget_ms here would restart the
            # clock and hand queued batches a fresh budget.
            budget = None
        workers = int(request.get("workers", self.default_workers))
        report = self.service.run_batch(
            queries,
            algorithm,
            max_workers=workers,
            time_budget_seconds=budget,
            deadline=deadline,
            executor=self.default_executor,
        )
        row = report.as_row()
        row["num_timed_out"] = report.num_timed_out
        return {"ok": True, "op": "batch", **row}

    def _handle_ingest(self, request: dict) -> dict:
        raw = request.get("edges")
        if not isinstance(raw, list) or not raw:
            raise ValueError("ingest request needs a non-empty 'edges' list")
        edges = []
        for entry in raw:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise ValueError(
                    "each ingested edge must be [source, target, timestamp]"
                )
            source, target, timestamp = entry
            if isinstance(source, str):
                source = coerce_vertex(source, self.service)
            if isinstance(target, str):
                target = coerce_vertex(target, self.service)
            edges.append((source, target, int(timestamp)))
        delta = self.service.ingest(edges)
        return {
            "ok": True,
            "op": "ingest",
            "appended": delta.num_rows,
            "epoch": delta.new_epoch,
            "append_only": bool(delta.append_only),
            "new_vertices": [str(vertex) for vertex in delta.new_vertices],
        }

    def _handle_stats(self) -> dict:
        stats = self.service.cache_stats()
        response = {
            "ok": True,
            "op": "stats",
            "epoch": self.service.epoch,
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "size": stats.size,
            },
            "index": dict(self.service.index_stats),
        }
        residency = self.service.residency_stats()
        if residency is not None:
            response["residency"] = residency
        if self.pool is not None:
            response["pool"] = self.pool.stats()
        server = self.stats.as_dict()
        if self._gauges is not None:
            server.update(self._gauges())
        else:
            server.setdefault("queue_depth", 0)
            server.setdefault("inflight", 0)
        response["server"] = server
        return response

    # ------------------------------------------------------------------
    # refusals
    # ------------------------------------------------------------------
    def deadline_refusal(self, request: dict) -> dict:
        """The refuse-before-work answer for an expired-in-queue request."""
        operation = request_op(request)
        if operation == "query":
            return {
                "ok": True,
                "op": "query",
                "algorithm": request.get("algorithm")
                or self.service.default_algorithm,
                "num_vertices": 0,
                "num_edges": 0,
                "elapsed_ms": 0.0,
                "timed_out": True,
                "cache_hit": False,
                "refused": True,
            }
        if operation == "batch":
            total = len(request.get("queries") or [])
            return {
                "ok": True,
                "op": "batch",
                "queries": total,
                "completed": 0,
                "timed_out": True,
                "refused": True,
            }
        return {
            "ok": False,
            "refused": True,
            "error": f"deadline expired before {operation!r} was admitted",
        }

    def overload_refusal(self, max_inflight: int) -> dict:
        return {
            "ok": False,
            "refused": True,
            "retryable": True,
            "error": (
                f"server overloaded: {max_inflight} requests already queued "
                "or running (max-inflight); retry later"
            ),
        }


# ----------------------------------------------------------------------
# fair scheduling
# ----------------------------------------------------------------------


class _FairScheduler:
    """Round-robin worker-slot allocator, one waiter queue per client.

    Lives entirely on the event loop (no locks).  ``permits`` is the
    number of concurrently running requests; when a slot frees, the next
    grant rotates across *sessions* rather than draining whichever
    session queued the most waiters — a firehose client gets one turn per
    rotation, same as everyone else.
    """

    def __init__(self, permits: int) -> None:
        if permits < 1:
            raise ValueError("permits must be at least 1")
        self._free = permits
        self._waiters: Dict[object, Deque[asyncio.Future]] = {}
        self._rotation: Deque[object] = deque()

    async def acquire(self, session_key: object) -> None:
        if self._free > 0 and not self._rotation:
            self._free -= 1
            return
        future = asyncio.get_running_loop().create_future()
        queue = self._waiters.get(session_key)
        if queue is None:
            queue = self._waiters[session_key] = deque()
            self._rotation.append(session_key)
        elif session_key not in self._rotation:
            self._rotation.append(session_key)
        queue.append(future)
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # Granted and cancelled in the same tick (deadline fired
                # just as the slot arrived): hand the slot back.
                self.release()
            else:
                future.cancel()
            raise

    def release(self) -> None:
        if not self._grant_next():
            self._free += 1

    def _grant_next(self) -> bool:
        while self._rotation:
            session_key = self._rotation.popleft()
            queue = self._waiters.get(session_key)
            granted = False
            while queue:
                future = queue.popleft()
                if not future.done():
                    future.set_result(None)
                    granted = True
                    break
            if queue:
                self._rotation.append(session_key)
            else:
                self._waiters.pop(session_key, None)
            if granted:
                return True
        return False


# ----------------------------------------------------------------------
# the asyncio server
# ----------------------------------------------------------------------

_QUIT = object()
_CLOSE = object()


class _Session:
    """One connected client: its writer lock and bounded pending queue."""

    __slots__ = ("key", "writer", "write_lock", "pending", "alive")

    def __init__(self, key: int, writer: asyncio.StreamWriter, bound: int) -> None:
        self.key = key
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.pending: asyncio.Queue = asyncio.Queue(maxsize=bound)
        self.alive = True

    async def send(self, response: dict) -> None:
        if not self.alive:
            return
        data = (json.dumps(response) + "\n").encode("utf-8")
        try:
            # The per-session lock + drain() is the slow-client isolation:
            # a consumer that stops reading fills its own socket buffer and
            # stalls only coroutines writing to *this* session.
            async with self.write_lock:
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, OSError):
            self.alive = False


class TspgServer:
    """Asyncio TCP front end multiplexing JSONL clients onto one core.

    Per connection, a *reader* coroutine parses length-delimited lines and
    feeds a bounded pending queue (blocking the reader — TCP backpressure
    — when the client outruns the server), and a *processor* coroutine
    dequeues, passes admission control, runs the request on a bounded
    thread pool and writes the response.  Admission control:

    - a request with a deadline that has already expired, or that expires
      while waiting for a worker slot, is refused before any work runs;
    - when ``queue_depth`` reaches ``max_inflight`` new requests are
      refused immediately (``retryable: true``);
    - worker slots rotate round-robin across connections
      (:class:`_FairScheduler`).
    """

    def __init__(
        self,
        core: RequestCore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_pending_per_client: int = DEFAULT_MAX_PENDING_PER_CLIENT,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        admission_margin_ms: float = 0.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if max_pending_per_client < 1:
            raise ValueError("max_pending_per_client must be at least 1")
        self._core = core
        self._host = host
        self._port = port
        self._workers = workers
        self._max_inflight = max_inflight
        self._max_pending = max_pending_per_client
        self._max_line_bytes = max_line_bytes
        # Optional safety margin: refuse when the remaining budget is too
        # small to plausibly finish, not merely when it is already zero.
        self._admission_margin = admission_margin_ms / 1000.0
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="tspg-serve"
        )
        self._scheduler = _FairScheduler(workers)
        self._session_keys = itertools.count(1)
        self._sessions: set = set()
        self._conn_tasks: set = set()
        self._queued = 0
        self._inflight = 0
        self._server: Optional[asyncio.base_events.Server] = None
        core.attach_gauges(
            lambda: {"queue_depth": self.queue_depth, "inflight": self._inflight}
        )

    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServerStats:
        return self._core.stats

    @property
    def queue_depth(self) -> int:
        """Requests admitted past parsing but not yet completed.

        ``_queued`` covers a request's whole lifetime (the processor
        decrements it after the response is computed), so it already
        includes the ``_inflight`` subset that is actually running.
        """
        return self._queued

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=self._max_line_bytes,
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Closing the transports EOFs every reader; the handlers then
        # drain their processors and exit on their own.
        for session in list(self._sessions):
            session.alive = False
            with contextlib.suppress(Exception):
                session.writer.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        session = _Session(next(self._session_keys), writer, self._max_pending)
        self._sessions.add(session)
        self.stats.note_connection_opened()
        processor = asyncio.get_running_loop().create_task(
            self._process_session(session)
        )
        try:
            await self._read_session(reader, session)
        finally:
            # EOF and quit converge here: hand the processor the close
            # sentinel, let it finish everything already admitted, then
            # tear the connection down — the symmetric shutdown path.
            await session.pending.put(_CLOSE)
            try:
                await processor
            finally:
                self._sessions.discard(session)
                self.stats.note_connection_closed()
                with contextlib.suppress(Exception):
                    writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
                if task is not None:
                    self._conn_tasks.discard(task)

    async def _read_session(
        self, reader: asyncio.StreamReader, session: _Session
    ) -> None:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                self.stats.note_protocol_error()
                await session.send(
                    {
                        "ok": False,
                        "error": (
                            f"request line exceeds {self._max_line_bytes} "
                            "bytes; closing connection"
                        ),
                    }
                )
                return
            except (ConnectionError, OSError):
                return
            if not line:
                return  # EOF
            if not line.endswith(b"\n"):
                # The peer disconnected mid-request; the torn fragment was
                # never a complete protocol line, so drop it silently.
                return
            try:
                text = line.decode("utf-8")
            except UnicodeDecodeError:
                self.stats.note_protocol_error()
                await session.send(
                    {"ok": False, "error": "request line is not valid UTF-8"}
                )
                continue
            try:
                kind, request = parse_request_line(text)
            except ValueError as exc:
                self.stats.note_protocol_error()
                await session.send({"ok": False, "error": str(exc)})
                continue
            if kind == "blank":
                continue
            if kind == "quit":
                # Routed through the pending queue so the ack follows every
                # response this client already has in flight, in order.
                await session.pending.put(_QUIT)
                return
            try:
                deadline = arrival_deadline(request)
            except (TypeError, ValueError) as exc:
                self.stats.note_protocol_error()
                await session.send({"ok": False, "error": str(exc)})
                continue
            if self.queue_depth >= self._max_inflight:
                self.stats.note_refusal("overload")
                await session.send(self._core.overload_refusal(self._max_inflight))
                continue
            self._queued += 1
            # Bounded: when this client has max_pending requests waiting,
            # the reader (and therefore the TCP window) stalls — that is
            # the backpressure, and it never touches other sessions.
            await session.pending.put((request, deadline))

    async def _process_session(self, session: _Session) -> None:
        while True:
            item = await session.pending.get()
            if item is _CLOSE:
                return
            if item is _QUIT:
                await session.send({"ok": True, "op": "quit"})
                return
            request, deadline = item
            try:
                response = await self._admit_and_run(session, request, deadline)
            except Exception as exc:  # unexpected: answer, never kill the loop
                response = {"ok": False, "error": f"internal error: {exc!r}"}
            finally:
                self._queued -= 1
            await session.send(response)
            self.stats.note_response()

    async def _admit_and_run(
        self, session: _Session, request: dict, deadline: Optional[Deadline]
    ) -> dict:
        if deadline is not None:
            remaining = deadline.remaining() - self._admission_margin
            if remaining <= 0:
                self.stats.note_refusal("deadline")
                return self._core.deadline_refusal(request)
            try:
                await asyncio.wait_for(
                    self._scheduler.acquire(session.key), timeout=remaining
                )
            except asyncio.TimeoutError:
                self.stats.note_refusal("deadline")
                return self._core.deadline_refusal(request)
        else:
            await self._scheduler.acquire(session.key)
        self._inflight += 1
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._executor,
                functools.partial(self._core.respond, request, deadline),
            )
        finally:
            self._inflight -= 1
            self._scheduler.release()


# ----------------------------------------------------------------------
# in-process lifecycle + blocking client
# ----------------------------------------------------------------------


class ServerThread:
    """Run a :class:`TspgServer` on a background event loop.

    The harness side of the tier: tests, the exp18 load generator and the
    CI protocol smoke all boot one of these, connect
    :class:`TspgClient`s against :attr:`address`, and tear it down with
    :meth:`stop` (or the context manager).
    """

    def __init__(self, core: RequestCore, **server_kwargs) -> None:
        self._core = core
        self._server_kwargs = server_kwargs
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[TspgServer] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="tspg-server",
            daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            self._thread.join(timeout=10)
            raise RuntimeError(
                f"server failed to start: {self._startup_error!r}"
            ) from self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.server = TspgServer(self._core, **self._server_kwargs)
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.server.aclose()

    @property
    def address(self) -> Tuple[str, int]:
        assert self.server is not None
        return self.server.address

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class TspgClient:
    """A small blocking JSONL client for the TCP serving tier.

    Speaks exactly the protocol the server does: one JSON object per
    line in each direction.  :meth:`request` is the lockstep path;
    :meth:`send` + :meth:`recv` allow pipelining (the server answers a
    connection's requests in order).
    """

    def __init__(self, address: Tuple[str, int], timeout: Optional[float] = 30.0) -> None:
        host, port = address
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def send(self, request: dict) -> None:
        self._file.write((json.dumps(request) + "\n").encode("utf-8"))
        self._file.flush()

    def send_raw(self, data: bytes, flush: bool = True) -> None:
        """Write raw bytes (protocol-conformance tests forge torn frames)."""
        self._file.write(data)
        if flush:
            self._file.flush()

    def recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def request(self, request: dict) -> dict:
        self.send(request)
        return self.recv()

    def request_pipelined(self, requests: List[dict]) -> List[dict]:
        for request in requests:
            self._file.write((json.dumps(request) + "\n").encode("utf-8"))
        self._file.flush()
        return [self.recv() for _ in requests]

    def quit(self) -> dict:
        return self.request({"op": "quit"})

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self._file.close()
        with contextlib.suppress(OSError):
            self._sock.close()

    def __enter__(self) -> "TspgClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
