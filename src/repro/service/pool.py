"""Persistent serving pools: long-lived worker processes shared across batches.

The per-batch ``executor="processes"`` backend pays its start-up tax on
*every* ``run_batch`` call: a fresh ``ProcessPoolExecutor`` is created, each
worker forks, boots its :class:`~repro.service.TspgService` from the snapshot
file, warms the columnar view — and then the whole apparatus is torn down
with the batch.  For a one-shot CLI invocation that is the right shape; for
a serving loop answering batch after batch it re-buys the boot cost forever.

:class:`WorkerPool` is the long-lived alternative.  It owns one
``ProcessPoolExecutor`` whose worker processes survive across batches, so
the per-worker snapshot-booted service cache
(:data:`repro.service.service._WORKER_SERVICES`) — including the warmed
view and each worker's LRU result cache — is built once and then reused by
every subsequent batch routed through the pool.  Attach one to a
:class:`~repro.service.TspgService` or
:class:`~repro.service.ShardedTspgService` (the ``pool=`` constructor
argument or :meth:`~repro.service.TspgService.attach_pool`) and every
``run_batch(executor="processes")`` call fans out over the pool instead of
building its own executor; ``tspg serve`` drives exactly this loop.

Lifecycle
---------
* The pool is a context manager; :meth:`close` (or leaving the ``with``
  block) shuts the workers down.  Services fall back to their per-batch
  executor when their attached pool is closed.
* Worker processes are forked lazily on the first submit, not at
  construction — a pool that never serves a process batch costs nothing.
* **Worker death** (OOM kill, segfault, ``os._exit``) breaks a
  ``ProcessPoolExecutor`` permanently.  The pool converts the stdlib's
  opaque ``BrokenProcessPool`` into a :class:`WorkerPoolError` naming what
  happened, and discards the broken executor so the *next* batch forks
  fresh workers and succeeds — the in-flight batch fails loudly, the pool
  recovers.

Thread-safety: submits may come from multiple threads (the sharded router
fans groups out concurrently); the executor swap is lock-guarded.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Optional


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the host's cores; on a cgroup- or
    affinity-restricted runner that over-forks workers (each booting a
    full snapshot service) for zero added parallelism.  Also used by the
    benchmark drivers' multi-core gates.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


class WorkerPoolError(RuntimeError):
    """A persistent pool could not serve: closed, or a worker process died.

    Distinct from a worker *exception* (which re-raises as itself): this
    error means the pool machinery failed, and — unless the pool was
    closed — its message states that the workers have been rebuilt and the
    batch can simply be resubmitted.
    """


class WorkerPool:
    """A persistent process pool serving many batches with one worker boot.

    Parameters
    ----------
    max_workers:
        Number of worker processes (defaults to the affinity-aware visible
        CPU count).  This caps the pool's *parallelism*; a batch
        requesting more workers than the pool holds still completes —
        excess chunks queue.

    Examples
    --------
    >>> from repro.service import TspgService, WorkerPool
    >>> with WorkerPool(max_workers=4) as pool:              # doctest: +SKIP
    ...     service = TspgService.from_snapshot("g.tspgsnap", pool=pool)
    ...     for batch in batches:
    ...         service.run_batch(batch, max_workers=4, executor="processes")
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._max_workers = max_workers or available_cpus()
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False
        # Counts executor builds: 1 after the first submit, +1 after every
        # worker-death rebuild.  Diagnostic only.
        self._generation = 0
        self._batches_served = 0
        self._tasks_submitted = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker processes down; further submits raise.

        Idempotent.  Services with this pool attached degrade gracefully:
        a closed pool makes their ``processes`` batches build a per-batch
        executor again, exactly as if no pool had ever been attached.
        """
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has run."""
        return self._closed

    @property
    def max_workers(self) -> int:
        """The pool's parallelism cap."""
        return self._max_workers

    def stats(self) -> Dict[str, int]:
        """Diagnostic counters (rendered by ``tspg serve``'s ``stats`` op)."""
        return {
            "max_workers": self._max_workers,
            "live": int(self._executor is not None),
            "generation": self._generation,
            "batches_served": self._batches_served,
            "tasks_submitted": self._tasks_submitted,
        }

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise WorkerPoolError("worker pool is closed")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self._max_workers)
                self._generation += 1
            return self._executor

    def _discard_broken(self, executor: ProcessPoolExecutor) -> None:
        """Drop a broken executor so the next submit forks fresh workers."""
        with self._lock:
            if self._executor is executor:
                self._executor = None
        executor.shutdown(wait=False, cancel_futures=True)

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        """Submit one task to the pool (forking the workers on first use)."""
        executor = self._ensure_executor()
        try:
            future = executor.submit(fn, *args, **kwargs)
        except BrokenProcessPool as exc:
            self._discard_broken(executor)
            raise WorkerPoolError(
                "worker pool is broken (a worker process died); the pool "
                "discarded its workers and will fork fresh ones on the next "
                "batch — resubmit"
            ) from exc
        except RuntimeError as exc:
            # close() raced this submit between _ensure_executor() and
            # executor.submit(): surface the promised error type, not the
            # stdlib's "cannot schedule new futures after shutdown".
            raise WorkerPoolError("worker pool is closed") from exc
        # Remember which executor produced this future: by the time a
        # broken future is harvested, another batch may already have
        # triggered a rebuild, and discarding "the current" executor then
        # would shut down a healthy worker set serving someone else.
        future._tspg_pool_executor = executor  # type: ignore[attr-defined]
        with self._lock:
            self._tasks_submitted += 1
        return future

    def harvest(self, future: Future):
        """``future.result()`` with worker-death translated to a clear error.

        Worker *exceptions* re-raise as themselves (a bug in a query is not
        a pool failure).  A worker *death* raises :class:`WorkerPoolError`
        after discarding the broken executor, so the pool self-heals for
        the next batch while the current one fails loudly instead of
        returning a partial report.
        """
        try:
            return future.result()
        except BrokenProcessPool as exc:
            # Discard exactly the executor this future came from — never a
            # healthy rebuilt one a concurrent batch is already using.
            executor = getattr(future, "_tspg_pool_executor", None)
            if executor is not None:
                self._discard_broken(executor)
            raise WorkerPoolError(
                "a worker process died while serving this batch (killed or "
                "crashed, not a Python exception); the pool discarded its "
                "workers and will fork fresh ones on the next batch — "
                "resubmit the batch"
            ) from exc

    def note_batch(self) -> None:
        """Count one served batch (called by the services after a fan-out)."""
        with self._lock:
            self._batches_served += 1
