"""Time-range sharding: one graph, N shard services, one router.

:class:`ShardedTspgService` partitions a temporal graph's timestamp span into
``num_shards`` contiguous ranges and builds one
:class:`~repro.service.service.TspgService` per range over the projected
subgraph.  Correctness rests on a simple property of every algorithm in the
registry: the tspG of ``(s, t, [τb, τe])`` depends only on the edges whose
timestamp lies inside ``[τb, τe]``.  A shard whose (overlap-widened) extent
*covers* the query interval therefore contains every edge the query can see
and answers it bit-identically to the full graph.

* **Routing** — each query goes to the *narrowest* shard whose extent covers
  its interval; ties break towards the earlier shard.
* **Overlap** — shard extents are widened by ``overlap`` timestamps on both
  sides, so queries whose interval straddles a partition boundary by up to
  the overlap still stay on one shard.  Pick the workload's typical θ as the
  overlap to keep boundary-crossing fallbacks rare.
* **Fallback** — a query no single shard covers (an interval wider than a
  shard extent) is answered by a service over the full graph, so every query
  is always answerable.
* **Batches** — :meth:`ShardedTspgService.run_batch` groups a batch by
  routed shard, fans the groups out concurrently, and merges the per-shard
  :class:`~repro.service.service.BatchReport` objects into one report in the
  original submission order.
* **Persistence & process parallelism** — :meth:`ShardedTspgService.save_shards`
  writes one current-format snapshot per shard extent plus a manifest
  (:class:`~repro.store.ShardSnapshotSet`), and
  :meth:`ShardedTspgService.from_shard_snapshots` boots a router from that
  directory in O(read) *without touching the full graph* (the full-graph
  fallback is materialised lazily as the union of the shard graphs only if
  a spanning query ever needs it).  With shard snapshots attached,
  ``run_batch(executor="processes")`` fans the shard groups out over a
  ``ProcessPoolExecutor`` — each worker boots from its shard's snapshot
  file — sidestepping the GIL for the pure-Python hot path; it falls back
  to threads automatically when snapshots are absent or stale.

The router is epoch-aware like the flat service: mutating the source graph
bumps its :attr:`~repro.graph.temporal_graph.TemporalGraph.epoch`, and the
next query transparently rebuilds the shard partitions.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..algorithms import get_algorithm, merge_kernel_backend
from ..baselines.interface import AlgorithmResult, TspgAlgorithm
from ..core.deadline import Deadline
from ..graph.edge import TimeInterval, Vertex, as_edge, as_interval
from ..graph.temporal_graph import EdgeDelta, TemporalGraph, _edge_sort_key
from ..queries.query import QueryWorkload, TspgQuery
from ..store.shard_set import ShardSetManifest, ShardSnapshotSet
from .cache import CacheStats
from .pool import WorkerPool
from .service import (
    DEFAULT_CACHE_SIZE,
    AlgorithmSpec,
    BatchItem,
    BatchReport,
    TspgService,
    _chunk_positions,
    _common_fallback_reasons,
    _snapshot_worker_run_batch,
    _usable_pool,
    _validate_executor,
)


@dataclass(frozen=True)
class ShardSpec:
    """One time-range shard: its partition cell and its widened extent."""

    index: int
    #: The partition cell — cells tile the graph's timestamp span disjointly.
    core: TimeInterval
    #: The cell widened by the overlap on both sides; the shard's graph holds
    #: exactly the edges with timestamps inside the extent.
    extent: TimeInterval
    num_edges: int = 0
    num_vertices: int = 0

    def covers(self, interval: TimeInterval) -> bool:
        """``True`` when a query over ``interval`` can be answered locally."""
        return self.extent.begin <= interval.begin and interval.end <= self.extent.end

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "shard": self.index,
            "core": self.core.as_tuple(),
            "extent": self.extent.as_tuple(),
            "vertices": self.num_vertices,
            "edges": self.num_edges,
        }


@dataclass
class ShardedBatchReport(BatchReport):
    """A merged batch report plus per-shard routing counts."""

    #: Queries answered per shard index (``-1`` is the full-graph fallback).
    routed: Dict[int, int] = field(default_factory=dict)

    @property
    def num_fallback(self) -> int:
        """Queries that no single shard covered."""
        return self.routed.get(FALLBACK_SHARD, 0)

    def as_row(self) -> Dict[str, object]:
        row = super().as_row()
        row["fallback"] = self.num_fallback
        return row


#: Routing key of the full-graph fallback service.
FALLBACK_SHARD = -1


@dataclass(frozen=True)
class _Topology:
    """One self-consistent shard build: specs, services, span and epoch.

    Swapped atomically on rebuild so concurrent readers never mix shard
    specs from one epoch with services from another.
    """

    shards: Tuple[ShardSpec, ...]
    services: Tuple[TspgService, ...]
    span: Optional[TimeInterval]
    epoch: int


def partition_time_range(
    span: TimeInterval, num_shards: int, overlap: int
) -> List[Tuple[TimeInterval, TimeInterval]]:
    """Split ``span`` into ``num_shards`` (core, extent) interval pairs.

    Cores tile ``span`` in near-equal widths; extents widen each core by
    ``overlap`` on both sides, clipped to ``span``.  Exposed as a function so
    tests (and future vertex-partition strategies) can exercise the geometry
    without building graphs.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if overlap < 0:
        raise ValueError("overlap must be non-negative")
    width = span.span  # number of distinct integer timestamps covered
    num_shards = min(num_shards, width)  # never produce empty cores
    cell, remainder = divmod(width, num_shards)
    pairs: List[Tuple[TimeInterval, TimeInterval]] = []
    begin = span.begin
    for index in range(num_shards):
        size = cell + (1 if index < remainder else 0)
        core = TimeInterval(begin, begin + size - 1)
        extent = TimeInterval(
            max(span.begin, core.begin - overlap),
            min(span.end, core.end + overlap),
        )
        pairs.append((core, extent))
        begin = core.end + 1
    return pairs


def _stage_ingest_rows(edges) -> List[Tuple[Vertex, Vertex, int]]:
    """Validate and normalise an ingest batch for a snapshot-booted router.

    Mirrors :meth:`TemporalGraph.append_edges` staging — self loops raise
    before anything is applied, in-batch duplicates collapse, rows come
    back in deterministic sort-key order — without needing a union graph.
    Rows already present in some shard are *not* filtered here; each
    shard's own ``append_edges`` dedups them (lazily, without hydration).
    """
    staged: List[Tuple[Vertex, Vertex, int]] = []
    seen: set = set()
    for edge in edges:
        e = as_edge(edge)
        if e.source == e.target:
            raise ValueError(f"self loops are not allowed: {e.source!r}")
        key = (e.source, e.target, e.timestamp)
        if key in seen:
            continue
        seen.add(key)
        staged.append(key)
    staged.sort(key=_edge_sort_key)
    return staged


def _boot_shard_generation(
    shard_set: ShardSnapshotSet,
    manifest: ShardSetManifest,
    *,
    mmap: bool,
    residency: bool,
    service_kwargs: Dict[str, object],
):
    """Boot one manifest generation's shard services from its files.

    Shared by :meth:`ShardedTspgService.from_shard_snapshots` (initial boot)
    and the generation-swap re-warm, so both paths produce identically
    configured services.  Returns ``(shards, services, policies,
    mmap_active, mmap_reasons)``.
    """
    from ..store.residency import ResidencyPolicy  # deferred: cycle

    shards: List[ShardSpec] = []
    services: List[TspgService] = []
    mmap_reasons: List[str] = []
    mmap_active = bool(mmap) and bool(manifest.shards)
    policies: List[ResidencyPolicy] = []
    for entry in manifest.shards:
        policy = ResidencyPolicy() if residency else None
        boot = shard_set.boot_shard(entry, mmap=mmap, residency=policy)
        graph = boot.graph
        if policy is not None:
            policy.advise_warm()
        if mmap and not boot.mmap_active:
            mmap_active = False
            mmap_reasons.extend(
                f"shard {entry.index} ({entry.filename}): {reason}"
                for reason in boot.fallback_reasons
            )
        shards.append(
            ShardSpec(
                index=entry.index,
                core=TimeInterval(*entry.core),
                extent=TimeInterval(*entry.extent),
                num_edges=graph.num_edges,
                num_vertices=graph.num_vertices,
            )
        )
        services.append(TspgService(graph, **service_kwargs))
        if policy is not None:
            # Index warm-up (service construction) is the sequential
            # scan; from here on access is query-driven.
            policy.advise_serve()
            policies.append(policy)
    return shards, services, policies, mmap_active, mmap_reasons


class ShardedTspgService:
    """Route ``tspG`` queries across N time-range shards of one graph.

    Parameters
    ----------
    graph:
        The source graph.  Shard subgraphs are projections of it; the
        fallback service queries it directly.
    num_shards:
        Number of time-range partitions (``1`` degenerates to a single shard
        covering everything plus the fallback).
    overlap:
        Widening (in timestamps) applied to each shard's extent on both
        sides so boundary-straddling intervals stay on one shard.
    max_workers:
        Default fan-out width for :meth:`run_batch` (shard groups run
        concurrently, each group serially inside its shard service).
    executor:
        Default batch backend for :meth:`run_batch`: ``"threads"`` or
        ``"processes"`` (the latter needs per-shard snapshots — see
        :meth:`save_shards` / :meth:`from_shard_snapshots` — and degrades
        to threads otherwise).

    Examples
    --------
    >>> from repro import TemporalGraph
    >>> from repro.service import ShardedTspgService
    >>> from repro.queries.query import TspgQuery
    >>> graph = TemporalGraph(edges=[("s", "b", 2), ("b", "t", 6),
    ...                              ("b", "c", 3), ("c", "t", 7)])
    >>> router = ShardedTspgService(graph, num_shards=2, overlap=2)
    >>> outcome = router.submit(TspgQuery("s", "c", (2, 3)))
    >>> sorted(outcome.result.vertices)
    ['b', 'c', 's']
    """

    def __init__(
        self,
        graph: TemporalGraph,
        num_shards: int,
        *,
        overlap: int = 0,
        default_algorithm: str = "VUG",
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_workers: int = 1,
        executor: str = "threads",
        pool: Optional[WorkerPool] = None,
        algorithm_options: Optional[Dict[str, Dict[str, object]]] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if overlap < 0:
            raise ValueError("overlap must be non-negative")
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._init_runtime(
            graph=graph,
            num_shards=num_shards,
            overlap=overlap,
            default_algorithm=default_algorithm,
            cache_size=cache_size,
            max_workers=max_workers,
            executor=executor,
            pool=pool,
            algorithm_options=algorithm_options,
            kernel_backend=kernel_backend,
        )
        self._topology = self._build_topology()

    def _init_runtime(
        self,
        *,
        graph: Optional[TemporalGraph],
        num_shards: int,
        overlap: int,
        default_algorithm: str,
        cache_size: int,
        max_workers: int,
        executor: str,
        pool: Optional[WorkerPool],
        algorithm_options: Optional[Dict[str, Dict[str, object]]],
        kernel_backend: Optional[str] = None,
    ) -> None:
        """State shared by ``__init__`` and :meth:`from_shard_snapshots`."""
        self._graph = graph
        self._num_shards = num_shards
        self._overlap = overlap
        self._max_workers = max_workers
        self._default_executor = _validate_executor(executor)
        self._pool = pool
        self._service_kwargs: Dict[str, object] = {
            "default_algorithm": default_algorithm,
            "cache_size": cache_size,
            # The kernel-backend knob is baked into the options dict here so
            # every consumer — per-shard services, the lazy fallback, and
            # the process workers that receive this dict verbatim — runs
            # the same backend.
            "algorithm_options": merge_kernel_backend(
                algorithm_options, kernel_backend
            ),
        }
        self._rebuild_lock = threading.Lock()
        self._fallback_lock = threading.Lock()
        # Guards the one-time union-graph materialisation of a
        # snapshot-booted router (separate from _fallback_lock: building
        # the fallback service reads the graph property while holding it).
        self._union_lock = threading.Lock()
        # The full-graph fallback service is built lazily on first use (it
        # would otherwise double the warm-up cost even when every query is
        # shard-local) and survives repartitions: its own epoch tracking
        # rewarm-on-mutation makes it always current.
        self._fallback_service: Optional[TspgService] = None
        # Where each shard's snapshot file lives (set by save_shards /
        # from_shard_snapshots) and the topology epoch those files describe;
        # the process batch backend boots its workers from them.
        self._shard_snapshot_paths: Optional[Tuple[str, ...]] = None
        self._shard_snapshot_epoch: Optional[int] = None
        # Whether the shard boots requested / all actually used the mmap
        # path, plus the per-shard degradation reasons when they did not.
        self._shard_snapshot_mmap_requested: bool = False
        self._shard_snapshot_mmap: bool = False
        self._shard_snapshot_mmap_reasons: List[str] = []
        # One page-advice policy per shard when the boot requested
        # residency tracking (empty otherwise).
        self._shard_residency: Tuple[object, ...] = ()
        # Edge-less source vertices a snapshot boot carries outside the
        # shard projections; folded back in when the union materialises.
        self._extra_vertices: Tuple[Vertex, ...] = ()
        # Live-ingest state.  The shard-set directory (when booted from /
        # saved to one) carries the set-level ``ingest.tspgjournal``;
        # ``_overflow_rows`` holds ingested rows outside every shard extent
        # of a snapshot-booted router (answerable via the fallback; folded
        # into the next generation by :meth:`rewarm_shards`).
        self._ingest_lock = threading.Lock()
        self._shard_set_path: Optional[str] = None
        self._shard_residency_requested: bool = False
        self._overflow_rows: List[Tuple[Vertex, Vertex, int]] = []
        # Mappings retired from superseded generations (survives the
        # per-generation policies being swapped out).
        self._residency_retired: int = 0

    # ------------------------------------------------------------------
    # per-shard snapshot persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_shard_snapshots(
        cls,
        path,
        *,
        mmap: bool = False,
        residency: bool = False,
        default_algorithm: str = "VUG",
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_workers: int = 1,
        executor: str = "threads",
        pool: Optional[WorkerPool] = None,
        algorithm_options: Optional[Dict[str, Dict[str, object]]] = None,
        kernel_backend: Optional[str] = None,
    ) -> "ShardedTspgService":
        """Boot a router from a :class:`~repro.store.ShardSnapshotSet` directory.

        Each shard service loads its own (already view-servable) snapshot in
        O(read); the full graph is **never** read or reconstructed up front.
        The full-graph fallback stays lazy: only a query wider than every
        shard extent materialises it, as the union of the shard graphs
        (shard extents cover the whole span, so the union is exactly the
        edge set the snapshots were cut from).

        ``mmap=True`` boots every shard through the v4 zero-copy columnar
        path (see :meth:`TspgService.from_snapshot`): each shard's view
        columns are mapped straight out of its file, so router boot cost
        and resident memory scale with the pages queries touch.  Shards
        whose file predates v4 degrade to the eager boot individually;
        :meth:`mmap_fallback_reasons` lists each degradation labelled with
        its shard.

        Shard boots are *extent-local*: each shard maps only the rows of
        its manifest time extent (a no-op for well-formed shard files,
        whose rows are exactly the extent — see
        :meth:`~repro.store.ShardSnapshotSet.boot_shard`).
        ``residency=True`` attaches one page-advice policy per shard;
        :meth:`residency_stats` aggregates their counters and
        :meth:`evict_cold_pages` drives periodic eviction across all of
        them.

        Raises :class:`~repro.store.SnapshotError` on a missing/malformed
        manifest or any per-shard checksum or count mismatch.
        """
        shard_set = ShardSnapshotSet(path)
        manifest = shard_set.manifest()
        router = cls.__new__(cls)
        router._init_runtime(
            graph=None,
            num_shards=max(1, manifest.num_shards),
            overlap=manifest.overlap,
            default_algorithm=default_algorithm,
            cache_size=cache_size,
            max_workers=max_workers,
            executor=executor,
            pool=pool,
            algorithm_options=algorithm_options,
            kernel_backend=kernel_backend,
        )
        shards, services, policies, mmap_active, mmap_reasons = (
            _boot_shard_generation(
                shard_set,
                manifest,
                mmap=mmap,
                residency=residency,
                service_kwargs=router._service_kwargs,
            )
        )
        router._shard_residency = tuple(policies)
        router._shard_snapshot_mmap_requested = bool(mmap)
        router._shard_snapshot_mmap = mmap_active
        router._shard_snapshot_mmap_reasons = mmap_reasons
        router._topology = _Topology(
            shards=tuple(shards),
            services=tuple(services),
            span=None if manifest.span is None else TimeInterval(*manifest.span),
            epoch=manifest.epoch,
        )
        router._shard_snapshot_paths = tuple(
            shard_set.file_path(entry.filename) for entry in manifest.shards
        )
        router._shard_snapshot_epoch = manifest.epoch
        router._shard_set_path = os.fspath(path)
        router._shard_residency_requested = bool(residency)
        router._extra_vertices = tuple(shard_set.load_isolated(manifest))
        router._replay_set_journal(manifest)
        return router

    def save_shards(self, path) -> ShardSetManifest:
        """Persist one snapshot per shard extent plus the manifest to ``path``.

        The written :class:`~repro.store.ShardSnapshotSet` lets
        :meth:`from_shard_snapshots` boot an identical router in O(read) and
        is immediately attached to *this* router too, enabling the
        ``executor="processes"`` batch backend without a reload.  Returns
        the manifest that was written.
        """
        topology = self._current_topology()
        shard_set = ShardSnapshotSet(path)
        # Shard projections only keep edge-incident vertices; whatever the
        # source graph holds beyond their union (edge-less vertices) rides
        # along in a separate snapshot so a booted union loses nothing.
        covered = set()
        for service in topology.services:
            covered.update(service.graph.vertices())
        covered.update(self._extra_vertices)
        source = self._graph
        stranded = (
            [v for v in source.vertices() if v not in covered]
            if source is not None
            else []
        )
        isolated = list(self._extra_vertices) + stranded
        manifest = shard_set.save(
            [
                (
                    spec.core.as_tuple(),
                    spec.extent.as_tuple(),
                    service.graph,
                )
                for spec, service in zip(topology.shards, topology.services)
            ],
            span=None if topology.span is None else topology.span.as_tuple(),
            overlap=self._overlap,
            epoch=topology.epoch,
            isolated=TemporalGraph(vertices=isolated) if isolated else None,
        )
        self._shard_snapshot_paths = tuple(
            shard_set.file_path(entry.filename) for entry in manifest.shards
        )
        self._shard_snapshot_epoch = topology.epoch
        self._shard_set_path = os.fspath(path)
        return manifest

    # ------------------------------------------------------------------
    # live ingest and generation re-warm
    # ------------------------------------------------------------------
    def _set_journal_base(self) -> Optional[str]:
        """Base path of the set-level ingest journal (``<dir>/ingest``).

        The journal module appends its suffix, yielding
        ``<dir>/ingest.tspgjournal`` — a name
        :meth:`~repro.store.ShardSnapshotSet.save`'s generation pruning
        never touches (it only deletes ``*.tspgsnap`` files).
        """
        if self._shard_set_path is None:
            return None
        return os.path.join(self._shard_set_path, "ingest")

    def _replay_set_journal(self, manifest: ShardSetManifest) -> int:
        """Replay the set-level ingest journal onto a freshly booted topology.

        Called at the end of :meth:`from_shard_snapshots`.  Mirrors the
        flat snapshot rules: a journal whose base epoch matches the
        manifest epoch is replayed record by record (each record routed to
        the shard extents exactly like a live :meth:`ingest`); a *stale*
        journal (base epoch below the manifest's — a re-warm crashed after
        the manifest commit but before the journal unlink) is skipped; a
        journal *ahead* of the manifest raises.  Returns records applied.
        """
        from ..store.journal import journal_path, read_journal
        from ..store.snapshot import SnapshotError

        base = self._set_journal_base()
        if base is None:
            return 0
        sidecar = journal_path(base)
        if not os.path.exists(sidecar):
            return 0
        info, records = read_journal(sidecar)
        if info.base_epoch > manifest.epoch:
            raise SnapshotError(
                f"{sidecar}: ingest journal base epoch {info.base_epoch} is "
                f"ahead of manifest epoch {manifest.epoch}: the shard set "
                "regressed underneath its journal"
            )
        if info.base_epoch < manifest.epoch:
            return 0  # already folded into this generation by a re-warm
        topology = self._topology
        for record in records:
            topology = self._apply_ingest_rows(
                topology, list(record.rows), record.epoch_after
            )
        self._topology = topology
        return len(records)

    def _apply_ingest_rows(
        self,
        topology: "_Topology",
        rows: List[Tuple[Vertex, Vertex, int]],
        new_epoch: int,
    ) -> "_Topology":
        """Route ``rows`` into the shard services; return the next topology.

        Every shard whose *extent* covers a row's timestamp receives it
        (overlap regions duplicate rows across neighbours, exactly like the
        original projection; per-shard ``append_edges`` dedups).  Rows no
        extent covers go to the overflow list — they are answerable through
        the fallback because the published span is widened to cover them,
        so :meth:`_route_in` stops clipping their windows into a shard.
        The shard *services* are reused as-is: their own epoch tracking
        runs the delta-aware cache invalidation on next query.
        """
        new_shards = list(topology.shards)
        for position, (spec, service) in enumerate(
            zip(topology.shards, topology.services)
        ):
            extent = spec.extent
            mine = [row for row in rows if extent.begin <= row[2] <= extent.end]
            if not mine:
                continue
            graph = service.graph
            graph.append_edges(mine)
            new_shards[position] = ShardSpec(
                index=spec.index,
                core=spec.core,
                extent=extent,
                num_edges=graph.num_edges,
                num_vertices=graph.num_vertices,
            )
        if self._graph is None:
            known = set(self._overflow_rows)
            for row in rows:
                if any(
                    spec.extent.begin <= row[2] <= spec.extent.end
                    for spec in topology.shards
                ):
                    continue
                if row not in known:
                    known.add(row)
                    self._overflow_rows.append(row)
        span = topology.span
        if rows:
            lo = min(row[2] for row in rows)
            hi = max(row[2] for row in rows)
            if span is None:
                span = TimeInterval(lo, hi)
            elif lo < span.begin or hi > span.end:
                span = TimeInterval(min(span.begin, lo), max(span.end, hi))
        return _Topology(
            shards=tuple(new_shards),
            services=topology.services,
            span=span,
            epoch=new_epoch,
        )

    def ingest(self, edges) -> EdgeDelta:
        """Append edges to the live sharded deployment; serve on.

        The router counterpart of :meth:`TspgService.ingest`: each edge is
        applied to every shard whose extent covers its timestamp (shard
        caches invalidate delta-aware, untouched shards keep serving warm),
        the source/union graph — when one exists — is appended through the
        same structured-delta path, and the whole batch is recorded in the
        shard set's ``ingest.tspgjournal`` so a crash or re-boot replays
        it on top of the current generation.  Edges beyond every shard
        extent stay answerable via the fallback until the next
        :meth:`rewarm_shards` folds them into generation N+1.

        Returns the applied :class:`~repro.graph.temporal_graph.EdgeDelta`.
        """
        with self._ingest_lock:
            if self._graph is not None:
                topology = self._current_topology()
                delta = self._graph.append_edges(edges)
                rows = list(delta.rows)
                new_epoch = self._graph.epoch
            else:
                topology = self._topology
                rows = _stage_ingest_rows(edges)
                old_total = sum(spec.num_edges for spec in topology.shards)
                new_vertices = []
                seen: set = set()
                for source, target, _ in rows:
                    for vertex in (source, target):
                        if vertex not in seen and not self.has_vertex(vertex):
                            seen.add(vertex)
                            new_vertices.append(vertex)
                new_epoch = topology.epoch + (1 if rows else 0)
                delta = EdgeDelta(
                    rows=tuple(rows),
                    old_epoch=topology.epoch,
                    new_epoch=new_epoch,
                    old_num_edges=old_total,
                    new_num_edges=old_total + len(rows),
                    append_only=(
                        topology.span is None
                        or (bool(rows) and rows[0][2] > topology.span.end)
                    ),
                    min_timestamp=rows[0][2] if rows else None,
                    max_timestamp=max(r[2] for r in rows) if rows else None,
                    new_vertices=tuple(new_vertices),
                )
            if not rows:
                return delta
            new_topology = self._apply_ingest_rows(topology, rows, new_epoch)
            if (
                self._shard_set_path is not None
                and delta.old_epoch == topology.epoch
            ):
                # Journal only while generation + journal still reproduce
                # the live deployment (a legacy mutation of the source
                # graph breaks that chain and skips journaling).
                from ..store.journal import append_journal_delta  # deferred

                append_journal_delta(self._set_journal_base(), delta)
            with self._rebuild_lock:
                self._topology = new_topology
        return delta

    def rewarm_shards(
        self, *, num_shards: Optional[int] = None, background: bool = False
    ):
        """Fold journaled ingests into shard generation N+1 and swap to it.

        Re-partitions the current (post-ingest) graph over its widened
        span, writes one snapshot per new shard plus the manifest as a
        fresh generation of the attached
        :class:`~repro.store.ShardSnapshotSet` (the crash-safe scheme:
        generation files first, manifest committed atomically last), clears
        the set-level ingest journal, then boots the new generation and
        swaps the serving topology in one assignment.  Queries keep
        answering from generation N throughout the build; page-advice
        policies of the old generation are retired
        (:meth:`~repro.store.ResidencyPolicy.retire_all`) as part of the
        swap.

        A crash before the manifest commit leaves generation N plus the
        journal fully serveable (the next boot replays the journal); a
        crash after it leaves generation N+1 with, at worst, a stale
        journal the next boot skips.

        With ``background=True`` the build runs on a daemon thread and the
        started :class:`threading.Thread` is returned (join it to observe
        completion); otherwise the new manifest is returned.
        """
        if self._shard_set_path is None:
            raise RuntimeError(
                "rewarm_shards needs an attached shard snapshot set "
                "(save_shards or from_shard_snapshots)"
            )
        if num_shards is not None and num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if background:
            thread = threading.Thread(
                target=self._rewarm_generation,
                kwargs={"num_shards": num_shards},
                name="tspg-shard-rewarm",
                daemon=True,
            )
            thread.start()
            return thread
        return self._rewarm_generation(num_shards=num_shards)

    def _rewarm_generation(
        self, *, num_shards: Optional[int] = None
    ) -> ShardSetManifest:
        from ..store.journal import clear_journal  # deferred: cycle

        with self._ingest_lock:
            shard_set = ShardSnapshotSet(self._shard_set_path)
            if num_shards is not None:
                self._num_shards = num_shards
            union = self.graph  # materialises ingested + overflow rows
            span = union.time_interval()
            members = []
            covered: set = set()
            if span is not None:
                for core, extent in partition_time_range(
                    span, self._num_shards, self._overlap
                ):
                    subgraph = union.project(extent)
                    covered.update(subgraph.vertices())
                    members.append(
                        (core.as_tuple(), extent.as_tuple(), subgraph)
                    )
            isolated = [v for v in union.vertices() if v not in covered]
            manifest = shard_set.save(
                members,
                span=None if span is None else span.as_tuple(),
                overlap=self._overlap,
                epoch=union.epoch,
                isolated=TemporalGraph(vertices=isolated) if isolated else None,
            )
            # The manifest commit is the generation swap's atomic point;
            # the journal's deltas are folded into it, so the sidecar goes.
            # (A crash between the two leaves a stale journal the next
            # boot recognises by its base epoch and skips.)
            clear_journal(self._set_journal_base())
            shards, services, policies, mmap_active, mmap_reasons = (
                _boot_shard_generation(
                    shard_set,
                    manifest,
                    mmap=self._shard_snapshot_mmap_requested,
                    residency=self._shard_residency_requested,
                    service_kwargs=self._service_kwargs,
                )
            )
            for policy in self._shard_residency:
                self._residency_retired += policy.retire_all()
            with self._rebuild_lock:
                self._topology = _Topology(
                    shards=tuple(shards),
                    services=tuple(services),
                    span=(
                        None
                        if manifest.span is None
                        else TimeInterval(*manifest.span)
                    ),
                    epoch=manifest.epoch,
                )
                self._shard_residency = tuple(policies)
                self._shard_snapshot_mmap = mmap_active
                self._shard_snapshot_mmap_reasons = mmap_reasons
                self._shard_snapshot_paths = tuple(
                    shard_set.file_path(entry.filename)
                    for entry in manifest.shards
                )
                self._shard_snapshot_epoch = manifest.epoch
                self._extra_vertices = tuple(shard_set.load_isolated(manifest))
                self._overflow_rows = []
        return manifest

    # ------------------------------------------------------------------
    # shard construction
    # ------------------------------------------------------------------
    def _build_topology(self) -> "_Topology":
        """Build the shard partitions and services for the current epoch.

        The result is published as ONE immutable tuple assignment
        (``self._topology``), so a reader racing a mutation-triggered
        rebuild always sees a matched (shards, services, span, epoch) set —
        never new specs over old services.
        """
        shards: List[ShardSpec] = []
        services: List[TspgService] = []
        span = self._graph.time_interval()
        epoch = self._graph.epoch
        if span is not None:
            for index, (core, extent) in enumerate(
                partition_time_range(span, self._num_shards, self._overlap)
            ):
                subgraph = self._graph.project(extent)
                shards.append(
                    ShardSpec(
                        index=index,
                        core=core,
                        extent=extent,
                        num_edges=subgraph.num_edges,
                        num_vertices=subgraph.num_vertices,
                    )
                )
                services.append(TspgService(subgraph, **self._service_kwargs))
        return _Topology(tuple(shards), tuple(services), span, epoch)

    def _current_topology(self) -> "_Topology":
        """Return a self-consistent topology, repartitioning after mutations.

        A snapshot-booted router has no source graph until someone asks for
        it (``self._graph is None``); its topology is frozen at the manifest
        epoch, so there is nothing to compare against until the union graph
        is materialised (after which mutations of *that* graph repartition
        as usual).
        """
        topology = self._topology
        if self._graph is None or self._graph.epoch == topology.epoch:
            return topology
        with self._rebuild_lock:
            topology = self._topology
            if self._graph.epoch != topology.epoch:
                topology = self._build_topology()
                self._topology = topology
            return topology

    def _fallback_for(self) -> TspgService:
        """The lazily built full-graph service (epoch-safe by itself)."""
        service = self._fallback_service
        if service is None:
            with self._fallback_lock:
                service = self._fallback_service
                if service is None:
                    service = TspgService(self.graph, **self._service_kwargs)
                    self._fallback_service = service
        return service

    def _materialize_union(self) -> TemporalGraph:
        """Reconstruct the full graph as the union of the shard graphs.

        Only reached on a snapshot-booted router, and only when something
        actually needs the full graph (a fallback-routed query, or the
        :attr:`graph` accessor).  Shard extents cover the entire span, so
        the union holds exactly the edges the snapshots were cut from;
        overlap duplicates collapse in the edge set.
        """
        topology = self._topology
        union = TemporalGraph()
        for service in topology.services:
            union.add_edges(service.graph.edge_tuples())
        if self._overflow_rows:
            # Ingested rows outside every shard extent live only here (and
            # in the set journal) until the next generation re-warm.
            union.add_edges(self._overflow_rows)
        for vertex in self._extra_vertices:
            union.add_vertex(vertex)
        # Pin the union to the manifest epoch the topology carries:
        # building it is a reconstruction, not a mutation, and must not
        # trigger a repartition.  (Private access is deliberate — the graph
        # API has no way to "set" an epoch, by design.)
        union._epoch = topology.epoch
        return union

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> TemporalGraph:
        """The full source graph (what the fallback service answers over).

        On a router booted by :meth:`from_shard_snapshots` the full graph
        does not exist until first asked for; this accessor materialises it
        as the union of the shard graphs.
        """
        if self._graph is None:
            with self._union_lock:
                if self._graph is None:
                    self._graph = self._materialize_union()
        return self._graph

    def has_vertex(self, vertex: Vertex) -> bool:
        """Whether ``vertex`` exists in the served graph — union-free.

        On a snapshot-booted router the full graph is expensive (the
        :attr:`graph` accessor materialises the union of the shard
        graphs); membership is answerable from what is already in memory:
        the shard graphs cover every edge-incident vertex and
        ``_extra_vertices`` carries the edge-less ones.
        """
        if self._graph is not None:
            return self._graph.has_vertex(vertex)
        if vertex in self._extra_vertices:
            return True
        if any(vertex in row[:2] for row in self._overflow_rows):
            return True
        return any(
            service.graph.has_vertex(vertex)
            for service in self._current_topology().services
        )

    @property
    def epoch(self) -> int:
        """Mutation epoch of the routed graph (union-free).

        Mirrors :attr:`TspgService.epoch` so the serving tier can stamp
        ``epoch_before`` / ``epoch_after`` onto responses without
        materialising a snapshot-booted router's full-graph union — the
        topology already carries the epoch its shards were built at.
        """
        if self._graph is not None:
            return self._graph.epoch
        return self._current_topology().epoch

    @property
    def num_shards(self) -> int:
        """Number of shard partitions currently built."""
        return len(self._current_topology().shards)

    @property
    def shards(self) -> List[ShardSpec]:
        """The current shard specs (copy; order matches shard indices)."""
        return list(self._current_topology().shards)

    @property
    def overlap(self) -> int:
        """Extent widening applied on both sides of every shard core."""
        return self._overlap

    @property
    def default_algorithm(self) -> str:
        """Name of the algorithm used when none is given."""
        return str(self._service_kwargs["default_algorithm"])

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The attached persistent worker pool, if any."""
        return self._pool

    def attach_pool(self, pool: Optional[WorkerPool]) -> None:
        """Attach (or with ``None`` detach) a persistent worker pool.

        Shard-group chunks of ``executor="processes"`` batches are then
        submitted to the pool's long-lived workers (each keeps its booted
        per-shard services across batches) instead of a per-batch executor.
        The pool's lifecycle stays the caller's.
        """
        self._pool = pool

    def _active_pool(self) -> Optional[WorkerPool]:
        """The attached persistent pool, if it can still serve."""
        return _usable_pool(self._pool)

    def process_fallback_reasons(
        self,
        algorithm: Optional[AlgorithmSpec] = None,
        max_workers: Optional[int] = None,
    ) -> List[str]:
        """Why a ``processes`` batch request would degrade to threads.

        The sharded counterpart of
        :meth:`TspgService.process_fallback_reasons`; empty when the
        process backend would engage for shard-routed groups (fallback
        groups always stay on the parent's threads).
        """
        workers = max_workers if max_workers is not None else self._max_workers
        reasons = _common_fallback_reasons(workers, algorithm)
        topology = self._current_topology()
        if self._shard_snapshot_paths is None:
            reasons.append(
                "no per-shard snapshots are attached (use save_shards / "
                "from_shard_snapshots or 'tspg warm --shards') so workers "
                "have nothing to boot from"
            )
        elif (
            self._shard_snapshot_epoch != topology.epoch
            or len(self._shard_snapshot_paths) != len(topology.shards)
        ):
            reasons.append(
                "the graph mutated after the shard snapshots were written "
                "(stale epoch); re-run save_shards to re-attach"
            )
        return reasons

    @property
    def snapshot_mmap_active(self) -> bool:
        """Whether every shard booted over an mmap-backed snapshot."""
        return self._shard_snapshot_mmap

    def mmap_fallback_reasons(self) -> List[str]:
        """Why the shard boots are not mmap-backed (empty when all are).

        The sharded counterpart of
        :meth:`TspgService.mmap_fallback_reasons`: one reason per shard
        that degraded to the eager boot, labelled with its shard index and
        filename.  When mmap was never requested the single reason says
        so.
        """
        if not self._shard_snapshot_mmap_requested:
            return ["mmap boot was not requested (pass mmap=True / --mmap)"]
        return list(self._shard_snapshot_mmap_reasons)

    @property
    def residency(self) -> Tuple[object, ...]:
        """Per-shard page-advice policies (empty without ``residency=True``)."""
        return self._shard_residency

    def residency_stats(self) -> Optional[Dict[str, object]]:
        """Aggregated page-advice counters across every shard policy.

        The sharded counterpart of :meth:`TspgService.residency_stats`:
        one merged dict (see
        :meth:`~repro.store.ResidencyPolicy.merged_with`) over all shard
        policies, or ``None`` when the boot did not request residency
        tracking.
        """
        if not self._shard_residency:
            return None
        first = self._shard_residency[0]
        merged = first.merged_with(self._shard_residency[1:])
        # Fold in mappings retired from generations already swapped out —
        # their policies are gone from _shard_residency.
        merged["retirements"] = (
            int(merged.get("retirements", 0)) + self._residency_retired
        )
        return merged

    def evict_cold_pages(self) -> int:
        """Drop cold mapped pages on every shard (``MADV_DONTNEED``).

        Returns the total bytes advised; 0 when residency tracking is off
        or ``madvise`` is unavailable.  Safe to call from a serve loop —
        evicted pages re-fault from the shard files on the next access.
        """
        return sum(policy.evict_cold() for policy in self._shard_residency)

    def _all_services(self) -> List[TspgService]:
        services = list(self._current_topology().services)
        if self._fallback_service is not None:
            services.append(self._fallback_service)
        return services

    @property
    def index_stats(self) -> Dict[str, int]:
        """Summed warmed-index sizes across the built services."""
        totals: Dict[str, int] = {}
        for service in self._all_services():
            for key, value in service.index_stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def cache_stats(self) -> CacheStats:
        """Aggregated result-cache counters across every built service."""
        totals = CacheStats()
        for service in self._all_services():
            stats = service.cache_stats()
            totals.hits += stats.hits
            totals.misses += stats.misses
            totals.evictions += stats.evictions
            totals.size += stats.size
            totals.max_size += stats.max_size
        return totals

    def describe(self) -> List[Dict[str, object]]:
        """One row per shard plus the fallback (for the CLI and reports).

        The fallback row reports the warmed state faithfully: until the
        lazy full-graph service is actually built its ``built`` flag is
        ``False`` and its counts are 0 — consistent with
        :attr:`index_stats` / :meth:`cache_stats`, which only aggregate
        over built services.  (It previously advertised full-graph counts
        even when nothing had been warmed, misrepresenting a freshly
        booted router.)
        """
        rows = [dict(shard.as_row(), built=True) for shard in self._current_topology().shards]
        fallback = self._fallback_service
        rows.append(
            {
                "shard": FALLBACK_SHARD,
                "core": None,
                "extent": None,
                "vertices": fallback.graph.num_vertices if fallback else 0,
                "edges": fallback.graph.num_edges if fallback else 0,
                "built": fallback is not None,
            }
        )
        return rows

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @staticmethod
    def _route_in(topology: "_Topology", interval) -> int:
        """Routing against one topology snapshot (see :meth:`route`)."""
        window = as_interval(interval)
        if topology.span is not None:
            clipped = window.intersect(topology.span)
            if clipped is not None:
                window = clipped
            # A window fully outside the span sees no edges at all; any
            # service answers it identically, so keep it on the fallback.
        best_index = FALLBACK_SHARD
        best_span: Optional[int] = None
        for shard in topology.shards:
            if not shard.covers(window):
                continue
            span = shard.extent.span
            if best_span is None or span < best_span:
                best_index = shard.index
                best_span = span
        return best_index

    def route(self, interval) -> int:
        """Shard index that will answer a query over ``interval``.

        Returns :data:`FALLBACK_SHARD` when no single shard extent covers the
        interval.  Among covering shards the *narrowest* extent wins (its
        projected subgraph is the smallest), ties breaking towards the
        earlier shard.  Coverage is tested on the interval clipped to the
        graph's timestamp span — no edge exists outside the span, so the
        clipped query sees exactly the same edges.
        """
        return self._route_in(self._current_topology(), interval)

    def _service_in(self, topology: "_Topology", index: int) -> TspgService:
        if index == FALLBACK_SHARD:
            return self._fallback_for()
        return topology.services[index]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def submit(
        self,
        query: TspgQuery,
        algorithm: Optional[AlgorithmSpec] = None,
        *,
        use_cache: bool = True,
        deadline: Optional[Deadline] = None,
    ) -> AlgorithmResult:
        """Answer one query on its covering shard (or the fallback).

        ``deadline`` is forwarded to the shard service unchanged — routing
        costs microseconds, so the covering shard sees effectively the
        whole per-query budget.
        """
        topology = self._current_topology()
        service = self._service_in(topology, self._route_in(topology, query.interval))
        return service.submit(
            query, algorithm, use_cache=use_cache, deadline=deadline
        )

    def query(
        self,
        source: Vertex,
        target: Vertex,
        interval,
        algorithm: Optional[AlgorithmSpec] = None,
        *,
        use_cache: bool = True,
        deadline: Optional[Deadline] = None,
    ) -> AlgorithmResult:
        """Convenience wrapper building the :class:`TspgQuery` for the caller."""
        return self.submit(
            TspgQuery(source=source, target=target, interval=interval),
            algorithm,
            use_cache=use_cache,
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: Union[Sequence[TspgQuery], QueryWorkload],
        algorithm: Optional[AlgorithmSpec] = None,
        *,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
        time_budget_seconds: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        executor: Optional[str] = None,
    ) -> ShardedBatchReport:
        """Fan a batch out across the shards and merge the reports.

        The batch is grouped by routed shard; the groups execute concurrently
        (bounded by ``max_workers``), each inside its shard's
        :class:`TspgService`, and the per-shard reports are merged into one
        :class:`ShardedBatchReport` whose items sit in the original
        submission order.  ``time_budget_seconds`` bounds the *whole* batch
        as one absolute :class:`~repro.core.deadline.Deadline` shared by
        every shard group, worker process and query — an in-flight query
        past the budget cuts itself off cooperatively, so the merged report
        lands no later than the budget plus the per-query cut-off slack.
        ``deadline`` passes an explicit absolute cut-off instead (the
        stricter of the two wins when both are given).

        ``executor="processes"`` runs each shard group in a worker *process*
        that boots from the shard's snapshot file — true multi-core
        parallelism for the GIL-bound hot path.  It needs current per-shard
        snapshots (:meth:`save_shards` or :meth:`from_shard_snapshots`) and
        a registry-name algorithm; otherwise the group silently runs on the
        thread backend (fallback-routed queries always do — the full graph
        has no per-shard file).  :attr:`BatchReport.executor` records the
        backend actually used.
        """
        topology = self._current_topology()
        query_list = list(queries)
        workers = max_workers if max_workers is not None else self._max_workers
        if workers < 1:
            raise ValueError("max_workers must be at least 1")
        executor_kind = _validate_executor(
            executor if executor is not None else self._default_executor
        )
        budget_deadline = Deadline.from_budget(time_budget_seconds)
        if budget_deadline is not None:
            deadline = budget_deadline.earlier(deadline)

        groups: Dict[int, List[int]] = {}
        for position, query in enumerate(query_list):
            groups.setdefault(
                self._route_in(topology, query.interval), []
            ).append(position)

        report = ShardedBatchReport(
            algorithm="",
            items=[BatchItem(query=query) for query in query_list],
            num_workers=workers,
            routed={index: len(positions) for index, positions in groups.items()},
        )
        started = time.perf_counter()

        ordered = sorted(groups.items())
        # Split the worker budget across groups proportionally to their size
        # (one worker minimum each): the outer threads only block on their
        # group's inner pool, so total live workers stay ≈ the requested
        # width while a dominant group keeps its share of the parallelism.
        inner_workers = {
            index: max(1, (workers * len(positions)) // len(query_list))
            for index, positions in ordered
        }

        use_processes = (
            executor_kind == "processes"
            and workers > 1  # workers=1 means serial, as on the flat service
            and self._shard_snapshot_paths is not None
            and self._shard_snapshot_epoch == topology.epoch
            and len(self._shard_snapshot_paths) == len(topology.shards)
            and not isinstance(algorithm, TspgAlgorithm)
        )
        # Shard groups are handed to the process pool from *this* thread,
        # before any fan-out thread exists (workers fork at first submit;
        # forking a process that is already running threads is fragile).
        # Only the fallback group — the full graph has no per-shard file —
        # stays on the thread path below.
        thread_groups = ordered
        process_pool: Optional[ProcessPoolExecutor] = None
        process_tasks: List[Tuple[int, List[int], Future]] = []
        persistent: Optional[WorkerPool] = None
        harvest = Future.result
        if use_processes:
            shard_groups = [g for g in ordered if g[0] != FALLBACK_SHARD]
            if shard_groups:
                thread_groups = [g for g in ordered if g[0] == FALLBACK_SHARD]
                # A skewed routing distribution must not degenerate to one
                # serial worker: each group is split into its proportional
                # share of the worker budget (inner_workers), every chunk
                # its own pool task — chunks of one shard share the worker
                # side's per-path booted service.  The parent shard
                # service's result cache stays authoritative: hits are
                # answered here, worker outcomes stored back on merge.
                chunks: List[Tuple[int, List[int]]] = []
                for index, positions in shard_groups:
                    service = topology.services[index]
                    resolved = service._resolve(algorithm)
                    report.algorithm = resolved.name
                    # Same admission contract as the flat service: no
                    # cache hit is served past the deadline.
                    if use_cache and not (
                        deadline is not None and deadline.expired()
                    ):
                        positions = [
                            position
                            for position in positions
                            if not service._cache_lookup(
                                report.items[position], resolved
                            )
                        ]
                    for chunk in _chunk_positions(
                        len(positions), inner_workers[index]
                    ):
                        if chunk:
                            chunks.append(
                                (index, [positions[offset] for offset in chunk])
                            )
                if chunks:
                    report.executor = "processes"
                    # The budget crosses as an absolute deadline: chunks
                    # beyond the pool width sit queued, and a duration
                    # captured now would let them overshoot the batch
                    # budget once they finally start.
                    deadline_at: Optional[float] = None
                    if deadline is not None:
                        deadline_at = deadline.at_monotonic
                    persistent = self._active_pool()
                    if persistent is None:
                        process_pool = ProcessPoolExecutor(
                            max_workers=min(workers, len(chunks))
                        )
                        submit = process_pool.submit
                    else:
                        submit = persistent.submit
                        harvest = persistent.harvest
                    for index, chunk in chunks:
                        process_tasks.append(
                            (
                                index,
                                chunk,
                                submit(
                                    _snapshot_worker_run_batch,
                                    self._shard_snapshot_paths[index],
                                    [query_list[position] for position in chunk],
                                    algorithm,
                                    default_algorithm=self.default_algorithm,
                                    algorithm_options=self._service_kwargs[
                                        "algorithm_options"
                                    ],
                                    use_cache=use_cache,
                                    deadline_at=deadline_at,
                                    # The *projection's* epoch — what the
                                    # shard file's header records — not
                                    # the manifest's source-graph epoch.
                                    snapshot_epoch=topology.services[
                                        index
                                    ].graph.epoch,
                                    snapshot_mmap=self._shard_snapshot_mmap,
                                    # Workers mirror the parent's
                                    # extent-local mapping so each maps
                                    # only its shard's rows (a no-op for
                                    # well-formed shard files, but it
                                    # bounds resident bytes either way).
                                    snapshot_interval=(
                                        topology.shards[index].extent.as_tuple()
                                        if self._shard_snapshot_mmap
                                        else None
                                    ),
                                    snapshot_residency=bool(
                                        self._shard_residency
                                    ),
                                ),
                            )
                        )

        def run_group(index: int, positions: List[int]) -> BatchReport:
            # The group shares the batch-wide absolute deadline; a group
            # that starts late (serial execution, or more groups than
            # workers) simply finds less of it remaining, and one starting
            # past the deadline skips outright.
            service = self._service_in(topology, index)
            return service.run_batch(
                [query_list[position] for position in positions],
                algorithm,
                max_workers=inner_workers[index],
                use_cache=use_cache,
                deadline=deadline,
            )

        try:
            if len(thread_groups) <= 1 or workers == 1:
                sub_reports = [
                    run_group(index, positions) for index, positions in thread_groups
                ]
            else:
                with ThreadPoolExecutor(
                    max_workers=min(workers, len(thread_groups)),
                    thread_name_prefix="tspg-shard",
                ) as thread_pool:
                    futures = [
                        thread_pool.submit(run_group, index, positions)
                        for index, positions in thread_groups
                    ]
                    sub_reports = [future.result() for future in futures]

            for (index, positions), sub_report in zip(thread_groups, sub_reports):
                report.algorithm = sub_report.algorithm
                report.timed_out = report.timed_out or sub_report.timed_out
                for position, item in zip(positions, sub_report.items):
                    report.items[position] = item
            for index, chunk, future in process_tasks:
                sub_report = harvest(future)  # re-raises worker exceptions
                report.algorithm = sub_report.algorithm
                report.timed_out = report.timed_out or sub_report.timed_out
                service = topology.services[index]
                resolved = service._resolve(algorithm)
                for position, item in zip(chunk, sub_report.items):
                    report.items[position] = item
                    if use_cache:
                        service._cache_store(item, resolved)
        finally:
            if process_pool is not None:
                # cancel_futures is a no-op on the success path (every
                # future already resolved); on an exception it stops queued
                # chunks from running to completion just to be discarded.
                # A persistent pool is never shut down here — its workers
                # (and their booted per-shard services) outlive the batch.
                process_pool.shutdown(cancel_futures=True)
            elif persistent is not None and process_tasks:
                # Persistent-pool analogue of cancel_futures: an aborted
                # merge must not leave this batch's queued chunks hogging
                # the shared workers (no-op for resolved futures).
                for _index, _chunk, future in process_tasks:
                    future.cancel()
                persistent.note_batch()

        if not report.algorithm:
            # Nothing ran (empty batch, or every query answered from the
            # parent-side caches) — resolve the name through the registry
            # anyway, so an unknown name raises the same KeyError the flat
            # service produces instead of silently succeeding, without
            # warming any service (building the fallback here would defeat
            # its laziness).
            if isinstance(algorithm, TspgAlgorithm):
                report.algorithm = algorithm.name
            else:
                name = algorithm or self.default_algorithm
                options = self._service_kwargs["algorithm_options"] or {}
                report.algorithm = get_algorithm(name, **options.get(name, {})).name
        report.wall_seconds = time.perf_counter() - started
        return report
