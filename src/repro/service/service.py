"""The batch query service: one graph, many queries, reusable work.

:class:`TspgService` is the serving layer over the VUG pipeline.  It owns one
:class:`~repro.graph.temporal_graph.TemporalGraph`, warms the per-graph
indices exactly once per epoch (sorted edge list, distinct timestamps,
per-vertex ``T_out``/``T_in`` views, and the frozen columnar
:class:`~repro.graph.views.GraphView` the zero-materialization query pipeline
runs on — previously rebuilt lazily on first use per query), memoizes
results in a bounded LRU keyed by
``(source, target, interval, algorithm)``, and executes batches either
serially or on a ``concurrent.futures`` thread pool with a per-batch
wall-clock budget (the paper's "INF" cut-off, applied to a batch instead of a
workload).

Every algorithm registered in :mod:`repro.algorithms` is available by name;
instances are created once per service and shared across worker threads —
legal because every :meth:`~repro.baselines.interface.TspgAlgorithm.compute`
implementation in the library keeps its state on the stack.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import FIRST_EXCEPTION, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from ..algorithms import get_algorithm
from ..baselines.interface import AlgorithmResult, TspgAlgorithm
from ..graph.edge import Vertex
from ..graph.temporal_graph import TemporalGraph
from ..queries.query import QueryWorkload, TspgQuery
from .cache import CacheKey, CacheStats, ResultCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..store.graph_store import GraphStore

AlgorithmSpec = Union[str, TspgAlgorithm]

#: Default capacity of the per-service result cache.
DEFAULT_CACHE_SIZE = 1024


@dataclass
class BatchItem:
    """Outcome of one query inside a batch."""

    query: TspgQuery
    outcome: Optional[AlgorithmResult] = None
    cache_hit: bool = False
    skipped: bool = False
    elapsed_seconds: float = 0.0

    @property
    def completed(self) -> bool:
        """``True`` when the query produced a result within the batch budget.

        An in-flight query that the budget cut off may still populate
        :attr:`outcome` when its thread finishes (threads cannot be
        interrupted), but it stays ``skipped`` — and not completed — so the
        report reflects what the batch delivered on time.
        """
        return self.outcome is not None and not self.skipped


@dataclass
class BatchReport:
    """Aggregated outcome of one :meth:`TspgService.run_batch` call."""

    algorithm: str
    items: List[BatchItem] = field(default_factory=list)
    wall_seconds: float = 0.0
    num_workers: int = 1
    timed_out: bool = False

    @property
    def num_queries(self) -> int:
        return len(self.items)

    @property
    def num_completed(self) -> int:
        return sum(1 for item in self.items if item.completed)

    @property
    def num_cache_hits(self) -> int:
        return sum(1 for item in self.items if item.cache_hit)

    @property
    def queries_per_second(self) -> float:
        """Completed-query throughput over the batch's wall-clock time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.num_completed / self.wall_seconds

    def results(self) -> List[Optional[AlgorithmResult]]:
        """Per-query outcomes aligned with the submitted order (``None`` = skipped)."""
        return [item.outcome if item.completed else None for item in self.items]

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "algorithm": self.algorithm,
            "workers": self.num_workers,
            "queries": f"{self.num_completed}/{self.num_queries}",
            "wall_s": round(self.wall_seconds, 4),
            "qps": round(self.queries_per_second, 1),
            "cache_hits": self.num_cache_hits,
            "timed_out": self.timed_out,
        }


class TspgService:
    """Serve many ``tspG`` queries over one temporal graph.

    Parameters
    ----------
    graph:
        The temporal graph every query runs against.  The service warms the
        graph's lazy indices on construction, so the first query (and every
        concurrent query) starts from fully-built sorted views.
    default_algorithm:
        Algorithm name used when a call does not specify one.
    cache_size:
        Capacity of the LRU result cache (``0`` disables memoization).
    max_workers:
        Default worker count for :meth:`run_batch`; ``1`` means serial.

    Examples
    --------
    >>> from repro import TemporalGraph
    >>> from repro.service import TspgService
    >>> from repro.queries.query import TspgQuery
    >>> graph = TemporalGraph(edges=[("s", "b", 2), ("b", "t", 6),
    ...                              ("b", "c", 3), ("c", "t", 7)])
    >>> service = TspgService(graph)
    >>> outcome = service.submit(TspgQuery("s", "t", (2, 7)))
    >>> sorted(outcome.result.vertices)
    ['b', 'c', 's', 't']
    """

    def __init__(
        self,
        graph: TemporalGraph,
        *,
        default_algorithm: str = "VUG",
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_workers: int = 1,
        algorithm_options: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._graph = graph
        self._default_algorithm = default_algorithm
        self._cache: ResultCache[AlgorithmResult] = ResultCache(cache_size)
        self._max_workers = max_workers
        self._algorithm_options = dict(algorithm_options or {})
        self._algorithms: Dict[str, TspgAlgorithm] = {}
        self._algorithms_lock = threading.Lock()
        # Instances that took part in cache keys, pinned by id().  Keys embed
        # id(instance) so same-named but differently-configured algorithms
        # never share entries; pinning prevents id reuse after garbage
        # collection from aliasing a dead instance's entries.
        self._pinned_algorithms: Dict[int, TspgAlgorithm] = {}
        # Guards the rewarm transition so concurrent queries observing a
        # stale epoch rewarm exactly once.
        self._rewarm_lock = threading.Lock()
        #: Sizes of the indices warmed at construction time (see
        #: :meth:`TemporalGraph.warm_indices`).
        self.index_stats: Dict[str, int] = graph.warm_indices()
        # The graph epoch the warmed indices (and cache entries) describe.
        self._warmed_epoch: int = graph.epoch

    # ------------------------------------------------------------------
    # alternate constructors (the GraphStore layer)
    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store: "GraphStore", **kwargs) -> "TspgService":
        """Build a service over the warmed graph a :class:`GraphStore` loads."""
        return cls(store.load(), **kwargs)

    @classmethod
    def from_snapshot(cls, path, **kwargs) -> "TspgService":
        """Boot a service from a binary index snapshot in O(read).

        The snapshot (written by :func:`repro.store.save_snapshot` or the
        ``tspg warm`` command) already contains every warmed index, so no
        edge is re-inserted or re-sorted; construction cost is dominated by
        reading and decoding the file.  Raises
        :class:`~repro.store.SnapshotError` on a corrupt or incompatible
        file.
        """
        from ..store.graph_store import SnapshotGraphStore  # deferred: cycle

        return cls.from_store(SnapshotGraphStore(path), **kwargs)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> TemporalGraph:
        """The graph this service answers queries about."""
        return self._graph

    @property
    def default_algorithm(self) -> str:
        """Name of the algorithm used when none is given."""
        return self._default_algorithm

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the result cache."""
        return self._cache.stats()

    @property
    def warmed_epoch(self) -> int:
        """Graph epoch the currently warmed indices describe."""
        return self._warmed_epoch

    def clear_cache(self) -> None:
        """Drop all memoized results (e.g. after mutating the graph)."""
        self._cache.clear()
        with self._algorithms_lock:
            self._pinned_algorithms.clear()

    def _ensure_current(self) -> None:
        """Rewarm indices and drop stale results when the graph has mutated.

        Every query entry point calls this: the graph's mutation
        :attr:`~TemporalGraph.epoch` is compared against the epoch stamped at
        warm time, so a cached result computed over the old edge set can
        never be served.  (Cache keys embed the epoch too, which also
        protects against a mutation racing a query already in flight.)
        """
        if self._graph.epoch == self._warmed_epoch:
            return
        with self._rewarm_lock:
            if self._graph.epoch == self._warmed_epoch:
                return  # another thread already rewarmed
            self.clear_cache()
            self.index_stats = self._graph.warm_indices()
            self._warmed_epoch = self._graph.epoch

    def refresh_indices(self) -> Dict[str, int]:
        """Deprecated: staleness is now detected automatically via the epoch.

        Kept as an alias so pre-epoch callers keep working; it forces an
        immediate rewarm (harmless — the next query would have done the same)
        and returns the fresh index stats.

        .. deprecated:: 1.1
           Mutations bump :attr:`TemporalGraph.epoch` and the service rewarms
           transparently; there is nothing to call any more.
        """
        warnings.warn(
            "TspgService.refresh_indices() is deprecated: graph mutations are "
            "detected automatically via TemporalGraph.epoch",
            DeprecationWarning,
            stacklevel=2,
        )
        with self._rewarm_lock:
            self.clear_cache()
            self.index_stats = self._graph.warm_indices()
            self._warmed_epoch = self._graph.epoch
        return self.index_stats

    def _resolve(self, algorithm: Optional[AlgorithmSpec]) -> TspgAlgorithm:
        """Return a shared algorithm instance for a name (or pass one through)."""
        if isinstance(algorithm, TspgAlgorithm):
            return algorithm
        name = algorithm or self._default_algorithm
        with self._algorithms_lock:
            instance = self._algorithms.get(name)
            if instance is None:
                options = self._algorithm_options.get(name, {})
                instance = get_algorithm(name, **options)
                self._algorithms[name] = instance
        return instance

    def _cache_key(self, query: TspgQuery, algorithm: TspgAlgorithm) -> CacheKey:
        with self._algorithms_lock:
            self._pinned_algorithms.setdefault(id(algorithm), algorithm)
        # The warmed epoch is part of the key: entries written for an older
        # edge set can never satisfy a lookup issued after a mutation, even
        # if the write lands after the rewarm cleared the cache.
        return (
            query.source,
            query.target,
            query.interval.as_tuple(),
            f"{algorithm.name}@{id(algorithm)}",
            self._warmed_epoch,
        )

    # ------------------------------------------------------------------
    # single queries
    # ------------------------------------------------------------------
    def submit(
        self,
        query: TspgQuery,
        algorithm: Optional[AlgorithmSpec] = None,
        *,
        use_cache: bool = True,
    ) -> AlgorithmResult:
        """Answer one query, consulting and populating the result cache.

        On a cache hit the returned :class:`AlgorithmResult` shares the
        (immutable) ``result`` and ``space_cost`` of the original run but
        reports the *lookup* time as ``elapsed_seconds`` and carries
        ``extras["cache_hit"] = True``.  If the graph was mutated since the
        last query, the indices are transparently rewarmed and stale cached
        results dropped first.
        """
        self._ensure_current()
        resolved = self._resolve(algorithm)
        key: Optional[CacheKey] = None
        if use_cache:
            key = self._cache_key(query, resolved)
            started = time.perf_counter()
            cached = self._cache.get(key)
            if cached is not None:
                return AlgorithmResult(
                    algorithm=cached.algorithm,
                    result=cached.result,
                    elapsed_seconds=time.perf_counter() - started,
                    space_cost=cached.space_cost,
                    timed_out=cached.timed_out,
                    extras={**cached.extras, "cache_hit": True},
                )
        outcome = resolved.run(self._graph, query.source, query.target, query.interval)
        # Never memoize a cut-off run: a timed-out (possibly partial) result
        # would be served for every future repeat of the query.
        if use_cache and not outcome.timed_out:
            self._cache.put(key, outcome)
        return outcome

    def query(
        self,
        source: Vertex,
        target: Vertex,
        interval,
        algorithm: Optional[AlgorithmSpec] = None,
        *,
        use_cache: bool = True,
    ) -> AlgorithmResult:
        """Convenience wrapper building the :class:`TspgQuery` for the caller."""
        return self.submit(
            TspgQuery(source=source, target=target, interval=interval),
            algorithm,
            use_cache=use_cache,
        )

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: Union[Sequence[TspgQuery], QueryWorkload],
        algorithm: Optional[AlgorithmSpec] = None,
        *,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
        time_budget_seconds: Optional[float] = None,
    ) -> BatchReport:
        """Answer a batch of queries, optionally in parallel.

        Parameters
        ----------
        queries:
            The batch; a :class:`QueryWorkload` is accepted directly.
        max_workers:
            Thread-pool width; ``1`` (the default from the constructor)
            executes serially in submission order.
        time_budget_seconds:
            Wall-clock budget for the whole batch.  Queries that have not
            *finished* when the budget expires are reported as skipped
            (``BatchItem.skipped``) and the report is flagged ``timed_out`` —
            the batch analogue of the paper's 12-hour "INF" cut-off.

        Returns
        -------
        BatchReport
            Per-query outcomes aligned with the input order plus wall-clock
            and throughput aggregates.  Results are identical regardless of
            worker count: every query runs against the same immutable warmed
            graph, and result objects are frozen.
        """
        query_list = list(queries)
        self._ensure_current()
        resolved = self._resolve(algorithm)
        workers = max_workers if max_workers is not None else self._max_workers
        if workers < 1:
            raise ValueError("max_workers must be at least 1")
        report = BatchReport(
            algorithm=resolved.name,
            items=[BatchItem(query=query) for query in query_list],
            num_workers=workers,
        )
        started = time.perf_counter()
        if workers == 1 or len(query_list) <= 1:
            self._run_batch_serial(report, resolved, use_cache, time_budget_seconds, started)
        else:
            self._run_batch_parallel(
                report, resolved, workers, use_cache, time_budget_seconds, started
            )
        report.wall_seconds = time.perf_counter() - started
        return report

    def _run_one(
        self, item: BatchItem, algorithm: TspgAlgorithm, use_cache: bool
    ) -> None:
        """Execute one batch item in place (runs on a worker thread)."""
        started = time.perf_counter()
        outcome = self.submit(item.query, algorithm, use_cache=use_cache)
        item.outcome = outcome
        item.cache_hit = bool(outcome.extras.get("cache_hit"))
        item.elapsed_seconds = time.perf_counter() - started

    def _run_batch_serial(
        self,
        report: BatchReport,
        algorithm: TspgAlgorithm,
        use_cache: bool,
        time_budget_seconds: Optional[float],
        started: float,
    ) -> None:
        for item in report.items:
            if (
                time_budget_seconds is not None
                and time.perf_counter() - started > time_budget_seconds
            ):
                item.skipped = True
                report.timed_out = True
                continue
            self._run_one(item, algorithm, use_cache)

    def _run_batch_parallel(
        self,
        report: BatchReport,
        algorithm: TspgAlgorithm,
        workers: int,
        use_cache: bool,
        time_budget_seconds: Optional[float],
        started: float,
    ) -> None:
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="tspg-batch"
        ) as executor:
            futures: Dict[Future, BatchItem] = {
                executor.submit(self._run_one, item, algorithm, use_cache): item
                for item in report.items
            }
            remaining: Optional[float] = None
            if time_budget_seconds is not None:
                remaining = max(0.0, time_budget_seconds - (time.perf_counter() - started))
            _, not_done = wait(futures, timeout=remaining, return_when=FIRST_EXCEPTION)
            for future in not_done:
                # Queries that never started are dropped; in-flight ones
                # finish (threads cannot be interrupted) but stay skipped so
                # the report reflects the budget faithfully.
                future.cancel()
                futures[future].skipped = True
                report.timed_out = True
        # The pool has joined: every non-cancelled future — including ones
        # that were in flight at the budget cut-off — is finished, so worker
        # exceptions surface instead of masquerading as budget skips.
        for future in futures:
            if future.cancelled():
                continue
            exc = future.exception()
            if exc is not None:
                raise exc
