"""The batch query service: one graph, many queries, reusable work.

:class:`TspgService` is the serving layer over the VUG pipeline.  It owns one
:class:`~repro.graph.temporal_graph.TemporalGraph`, warms the per-graph
indices exactly once per epoch (sorted edge list, distinct timestamps,
per-vertex ``T_out``/``T_in`` views, and the frozen columnar
:class:`~repro.graph.views.GraphView` the zero-materialization query pipeline
runs on — previously rebuilt lazily on first use per query), memoizes
results in a bounded LRU keyed by
``(source, target, interval, algorithm)``, and executes batches either
serially or on a ``concurrent.futures`` worker pool with a per-batch
wall-clock budget (the paper's "INF" cut-off, applied to a batch instead of a
workload).

Two batch execution backends exist (``run_batch(executor=...)``):

* ``"threads"`` — a ``ThreadPoolExecutor`` sharing this process's warmed
  graph.  Zero start-up cost, but the pure-Python VUG hot path is GIL-bound,
  so threads only overlap the small C-level portions.
* ``"processes"`` — a ``ProcessPoolExecutor`` whose workers boot their own
  service from the binary index snapshot this service was started from
  (:meth:`TspgService.from_snapshot`), run a contiguous chunk of the batch
  serially, and return their pickled :class:`BatchReport`.  True multi-core
  parallelism for the GIL-bound hot path; falls back to threads
  automatically when no snapshot is attached (nothing for a worker to boot
  from), when the graph has mutated since the snapshot was taken, or when
  the algorithm was passed as an instance instead of a registry name.

The process backend's executor is per-batch by default (created and torn
down inside ``run_batch``); attaching a persistent
:class:`~repro.service.pool.WorkerPool` (the ``pool=`` constructor argument
or :meth:`TspgService.attach_pool`) makes repeated batches reuse the same
long-lived worker processes — and therefore their snapshot-booted services,
warmed views and worker-side caches — amortising the fork + boot cost to
zero after the first batch.  Batch budgets and per-query cut-offs travel as
cooperative :class:`~repro.core.deadline.Deadline` objects all the way into
the algorithms, so an expired query yields a ``timed_out`` row promptly
instead of squatting on a worker past the budget.

Every algorithm registered in :mod:`repro.algorithms` is available by name;
instances are created once per service and shared across worker threads —
legal because every :meth:`~repro.baselines.interface.TspgAlgorithm.compute`
implementation in the library keeps its state on the stack.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import (
    FIRST_EXCEPTION,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..algorithms import get_algorithm, merge_kernel_backend
from ..baselines.interface import AlgorithmResult, TspgAlgorithm
from ..core.deadline import Deadline
from ..graph.edge import Vertex
from ..graph.temporal_graph import TemporalGraph
from ..queries.query import QueryWorkload, TspgQuery
from .cache import CacheKey, CacheStats, ResultCache
from .pool import WorkerPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..store.graph_store import GraphStore

AlgorithmSpec = Union[str, TspgAlgorithm]

#: Default capacity of the per-service result cache.
DEFAULT_CACHE_SIZE = 1024

#: Batch execution backends accepted by ``run_batch(executor=...)``.
EXECUTOR_BACKENDS = ("threads", "processes")


def _validate_executor(executor: str) -> str:
    if executor not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of "
            f"{', '.join(EXECUTOR_BACKENDS)}"
        )
    return executor


def _usable_pool(pool: Optional[WorkerPool]) -> Optional[WorkerPool]:
    """``pool`` if it is attached and can still serve, else ``None``."""
    if pool is not None and not pool.closed:
        return pool
    return None


def _common_fallback_reasons(
    workers: int, algorithm: Optional[AlgorithmSpec]
) -> List[str]:
    """Degrade-to-threads reasons shared by the flat and sharded services.

    The snapshot-specific reasons differ per service and are appended by
    each ``process_fallback_reasons`` implementation; keeping the common
    wording here stops the two CLI notes from drifting apart.
    """
    reasons: List[str] = []
    if workers == 1:
        reasons.append("max_workers=1 requests a serial run")
    if isinstance(algorithm, TspgAlgorithm):
        reasons.append(
            "the algorithm is a configured instance, not a registry "
            "name, and cannot be shipped to worker processes"
        )
    return reasons


def _chunk_positions(count: int, chunks: int) -> List[List[int]]:
    """Split ``range(count)`` into ≤``chunks`` contiguous near-equal runs."""
    chunks = max(1, min(chunks, count))
    size, remainder = divmod(count, chunks)
    out: List[List[int]] = []
    begin = 0
    for index in range(chunks):
        end = begin + size + (1 if index < remainder else 0)
        out.append(list(range(begin, end)))
        begin = end
    return out


#: Per-worker-process cache of snapshot-booted services, keyed by
#: ``(snapshot path, expected epoch, algorithm options)``.  Lives only
#: inside pool workers (the parent never calls the worker function), so a
#: worker that receives several chunks of the same batch — or several
#: batches from the same pool — boots its service exactly once.  The epoch
#: and options are part of the key because a *persistent* pool outlives
#: service generations: re-warming a different graph over the same path
#: (or booting a same-path service with different options) must re-boot
#: here instead of silently serving the stale cached service.  Older
#: entries for the same path are evicted on insert, so the cache holds at
#: most one generation per file (differently-configured services sharing
#: one file coexist).  Each entry also carries the file's stat signature
#: from boot time, re-validated on every call: epochs are per-graph
#: counters and *can* coincide across different graphs, but a rewritten
#: file cannot keep its ``(mtime_ns, inode, size)``.
_WORKER_SERVICES: Dict[
    Tuple[str, Optional[int], str, str, bool, str, bool],
    Tuple["TspgService", Optional[Tuple[int, int, int]]],
] = {}


def _snapshot_file_signature(path: str):
    """Cheap identity of the snapshot's current bytes (None if gone).

    Covers the epoch-delta journal sidecar too: a journaled append changes
    what a boot of ``path`` produces without touching the snapshot file
    itself, so worker-side service caching must see the journal grow.
    """
    try:
        stat = os.stat(path)
    except OSError:
        return None
    signature = (stat.st_mtime_ns, stat.st_ino, stat.st_size)
    try:
        journal_stat = os.stat(path + ".tspgjournal")
    except OSError:
        return signature
    return signature + (
        journal_stat.st_mtime_ns,
        journal_stat.st_ino,
        journal_stat.st_size,
    )


def _snapshot_worker_run_batch(
    snapshot_path: str,
    queries: List[TspgQuery],
    algorithm: Optional[str],
    *,
    default_algorithm: str = "VUG",
    algorithm_options: Optional[Dict[str, Dict[str, object]]] = None,
    use_cache: bool = True,
    deadline_at: Optional[float] = None,
    snapshot_epoch: Optional[int] = None,
    snapshot_mmap: bool = False,
    snapshot_interval=None,
    snapshot_residency: bool = False,
    max_workers: int = 1,
) -> BatchReport:
    """Process-pool worker: boot from a snapshot, answer a sub-batch.

    Runs inside a ``ProcessPoolExecutor`` worker.  Everything crossing the
    process boundary is picklable by construction: the snapshot *path* in,
    frozen :class:`~repro.queries.query.TspgQuery` dataclasses in, and a
    plain :class:`BatchReport` of frozen results out.

    The batch budget crosses as an absolute ``deadline_at`` instant on the
    monotonic clock rather than a duration: a chunk may sit queued behind
    a full pool, and a duration captured at submit time would silently
    extend the whole batch past its budget.  ``time.monotonic()`` is
    system-wide per boot, so the reconstructed :class:`Deadline` marks the
    same instant in a (local) worker — and travels on into the
    algorithms, so a query the budget has expired on cuts itself off
    inside this worker too.

    In a persistent :class:`~repro.service.pool.WorkerPool` the module-level
    service cache outlives the batch: the second batch served by this
    worker finds its booted service (warmed view, result cache and all)
    already here.

    ``snapshot_mmap`` propagates the parent's active mmap boot: each
    worker then maps the same snapshot file instead of unpickling a
    private copy, so the column payload lives once in the page cache no
    matter how many workers serve from it.  ``snapshot_interval`` narrows
    the worker's boot to its time extent (extent-local mapping: the
    worker's address space holds its extent's rows, not the file), and
    ``snapshot_residency`` attaches a per-worker page-advice policy.
    """
    cache_key = (
        snapshot_path,
        snapshot_epoch,
        default_algorithm,
        repr(algorithm_options),
        bool(snapshot_mmap),
        repr(snapshot_interval),
        bool(snapshot_residency),
    )
    file_sig = _snapshot_file_signature(snapshot_path)
    cached = _WORKER_SERVICES.get(cache_key)
    if cached is not None and cached[1] == file_sig:
        service = cached[0]
    else:
        service = TspgService.from_snapshot(
            snapshot_path,
            mmap=snapshot_mmap,
            interval=snapshot_interval,
            residency=snapshot_residency,
            default_algorithm=default_algorithm,
            algorithm_options=algorithm_options,
        )
        if snapshot_epoch is not None and service.graph.epoch != snapshot_epoch:
            # The file was rewritten (by another writer) between the
            # parent attaching it and this worker booting: serving from
            # it would silently answer over a *different* graph than the
            # parent's.  Fail loudly instead — backends must stay
            # bit-identical.
            from ..store import SnapshotError  # deferred: cycle

            raise SnapshotError(
                f"{snapshot_path}: snapshot was rewritten since the "
                f"serving side attached it (worker booted epoch "
                f"{service.graph.epoch}, expected {snapshot_epoch}); "
                f"re-warm and re-attach before using the process backend"
            )
        # One generation per file: drop services booted from an *older
        # write* of this path.  Entries whose signature still matches the
        # file stay — two differently-configured services sharing a pool
        # (and a snapshot) must not evict each other's boots every batch.
        for key, entry in list(_WORKER_SERVICES.items()):
            if key[0] == snapshot_path and entry[1] != file_sig:
                del _WORKER_SERVICES[key]
        # Bound the same-signature variants too: repr() of exotic option
        # values (default object reprs embed addresses) changes per
        # pickle round-trip, which would otherwise grow one dead entry —
        # each holding a fully booted service — per batch, forever.
        same_path = [
            key
            for key, entry in _WORKER_SERVICES.items()
            if key[0] == snapshot_path
        ]
        while len(same_path) >= 4:  # insertion order ⇒ oldest first
            del _WORKER_SERVICES[same_path.pop(0)]
        _WORKER_SERVICES[cache_key] = (service, file_sig)
    deadline: Optional[Deadline] = None
    if deadline_at is not None:
        deadline = Deadline(at_monotonic=deadline_at)
    return service.run_batch(
        queries,
        algorithm,
        max_workers=max_workers,
        use_cache=use_cache,
        deadline=deadline,
    )


@dataclass
class BatchItem:
    """Outcome of one query inside a batch."""

    query: TspgQuery
    outcome: Optional[AlgorithmResult] = None
    cache_hit: bool = False
    skipped: bool = False
    elapsed_seconds: float = 0.0

    @property
    def completed(self) -> bool:
        """``True`` when the query produced a result within the batch budget.

        An in-flight query that the budget cut off may still populate
        :attr:`outcome` when its thread finishes (threads cannot be
        interrupted), but it stays ``skipped`` — and not completed — so the
        report reflects what the batch delivered on time.
        """
        return self.outcome is not None and not self.skipped


@dataclass
class BatchReport:
    """Aggregated outcome of one :meth:`TspgService.run_batch` call."""

    algorithm: str
    items: List[BatchItem] = field(default_factory=list)
    wall_seconds: float = 0.0
    num_workers: int = 1
    timed_out: bool = False
    #: Backend that actually executed the computed queries: ``"threads"``
    #: (also used for serial runs) or ``"processes"``.  Records the
    #: *effective* backend, which is ``"threads"`` for a ``processes``
    #: request whenever any of the degrade conditions held:
    #:
    #: * **no snapshot** — the service was not booted via
    #:   :meth:`TspgService.from_snapshot` (flat) /
    #:   ``save_shards``/``from_shard_snapshots`` (sharded), so workers
    #:   have no file to boot from;
    #: * **stale snapshot** — the graph mutated since the snapshot was
    #:   taken (the epoch guard), so workers would boot an old edge set;
    #: * **instance algorithm** — the algorithm was passed as a configured
    #:   instance rather than a registry name and cannot be shipped across
    #:   the process boundary;
    #: * **serial request** — ``max_workers=1`` (or a ≤1-query batch)
    #:   always runs serially, on no backend at all;
    #: * **all cache hits** — every query was answered from the
    #:   parent-side result cache, so no worker ever ran.
    #:
    #: :meth:`TspgService.process_fallback_reasons` reports which of these
    #: applied (the CLI's explanatory note is built from it); ``as_row()``
    #: exposes this field as the ``executor`` column.
    executor: str = "threads"

    @property
    def num_queries(self) -> int:
        return len(self.items)

    @property
    def num_completed(self) -> int:
        return sum(1 for item in self.items if item.completed)

    @property
    def num_cache_hits(self) -> int:
        return sum(1 for item in self.items if item.cache_hit)

    @property
    def num_timed_out(self) -> int:
        """Queries whose own run was cut off (deadline or algorithm budget).

        Distinct from ``skipped`` (never started because the batch budget
        was already gone): these ran, hit their cooperative deadline — or
        an algorithm-internal budget such as the enumeration baselines'
        ``max_paths`` — and reported a ``timed_out`` outcome.
        """
        return sum(
            1
            for item in self.items
            if item.outcome is not None
            and item.outcome.timed_out
            and not item.skipped
        )

    @property
    def queries_per_second(self) -> float:
        """Completed-query throughput over the batch's wall-clock time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.num_completed / self.wall_seconds

    def results(self) -> List[Optional[AlgorithmResult]]:
        """Per-query outcomes aligned with the submitted order (``None`` = skipped)."""
        return [item.outcome if item.completed else None for item in self.items]

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "algorithm": self.algorithm,
            "workers": self.num_workers,
            "executor": self.executor,
            "queries": f"{self.num_completed}/{self.num_queries}",
            "wall_s": round(self.wall_seconds, 4),
            "qps": round(self.queries_per_second, 1),
            "cache_hits": self.num_cache_hits,
            "timed_out": self.timed_out,
        }


class TspgService:
    """Serve many ``tspG`` queries over one temporal graph.

    Parameters
    ----------
    graph:
        The temporal graph every query runs against.  The service warms the
        graph's lazy indices on construction, so the first query (and every
        concurrent query) starts from fully-built sorted views.
    default_algorithm:
        Algorithm name used when a call does not specify one.
    cache_size:
        Capacity of the LRU result cache (``0`` disables memoization).
    max_workers:
        Default worker count for :meth:`run_batch`; ``1`` means serial.
    executor:
        Default batch backend for :meth:`run_batch`: ``"threads"`` or
        ``"processes"`` (the latter needs a snapshot to boot workers from —
        see :meth:`from_snapshot` — and silently degrades to threads
        otherwise).
    pool:
        Optional persistent :class:`~repro.service.pool.WorkerPool`.  When
        attached (and open), ``processes`` batches fan out over the pool's
        long-lived workers instead of building a per-batch
        ``ProcessPoolExecutor`` — repeat batches skip the fork + snapshot
        boot entirely.  A closed pool degrades back to the per-batch
        executor.
    algorithm_options:
        Per-algorithm constructor options, keyed by registry name.
    kernel_backend:
        ``"python"`` or ``"numpy"``: the hot-path kernel implementation for
        every VUG-family algorithm this service instantiates (merged into
        ``algorithm_options``; explicit per-algorithm settings win).
        ``"numpy"`` silently degrades to the Python kernels when numpy is
        not installed, and both backends are bit-identical by the
        randomized oracle — so this knob changes speed, never answers.

    Examples
    --------
    >>> from repro import TemporalGraph
    >>> from repro.service import TspgService
    >>> from repro.queries.query import TspgQuery
    >>> graph = TemporalGraph(edges=[("s", "b", 2), ("b", "t", 6),
    ...                              ("b", "c", 3), ("c", "t", 7)])
    >>> service = TspgService(graph)
    >>> outcome = service.submit(TspgQuery("s", "t", (2, 7)))
    >>> sorted(outcome.result.vertices)
    ['b', 'c', 's', 't']
    """

    def __init__(
        self,
        graph: TemporalGraph,
        *,
        default_algorithm: str = "VUG",
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_workers: int = 1,
        executor: str = "threads",
        pool: Optional[WorkerPool] = None,
        algorithm_options: Optional[Dict[str, Dict[str, object]]] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._graph = graph
        self._default_algorithm = default_algorithm
        self._cache: ResultCache[AlgorithmResult] = ResultCache(cache_size)
        self._max_workers = max_workers
        self._default_executor = _validate_executor(executor)
        self._pool = pool
        # Set by from_snapshot: where process-pool workers can boot an
        # identical service from, and the graph epoch that file describes.
        self._snapshot_path: Optional[str] = None
        self._snapshot_epoch: Optional[int] = None
        # Whether the boot requested / actually used the mmap-backed
        # columnar path (snapshot format v4), plus why it degraded if not.
        self._snapshot_mmap_requested: bool = False
        self._snapshot_mmap: bool = False
        self._snapshot_mmap_reasons: List[str] = []
        # Page-advice policy over the boot's mappings (set by
        # from_snapshot when residency management was requested).
        self._residency = None
        self._snapshot_interval = None
        self._snapshot_boot = None
        # ``kernel_backend`` is baked into the per-algorithm options here,
        # once: the merged dict then crosses every existing boundary
        # (process workers, snapshot boots, cache keys) unchanged.
        self._algorithm_options = merge_kernel_backend(
            algorithm_options, kernel_backend
        )
        self._algorithms: Dict[str, TspgAlgorithm] = {}
        self._algorithms_lock = threading.Lock()
        # Instances that took part in cache keys, pinned by id().  Keys embed
        # id(instance) so same-named but differently-configured algorithms
        # never share entries; pinning prevents id reuse after garbage
        # collection from aliasing a dead instance's entries.
        self._pinned_algorithms: Dict[int, TspgAlgorithm] = {}
        # Guards the rewarm transition so concurrent queries observing a
        # stale epoch rewarm exactly once.
        self._rewarm_lock = threading.Lock()
        #: Sizes of the indices warmed at construction time (see
        #: :meth:`TemporalGraph.warm_indices`).
        self.index_stats: Dict[str, int] = graph.warm_indices()
        # The graph epoch the warmed indices (and cache entries) describe.
        self._warmed_epoch: int = graph.epoch

    # ------------------------------------------------------------------
    # alternate constructors (the GraphStore layer)
    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store: "GraphStore", **kwargs) -> "TspgService":
        """Build a service over the warmed graph a :class:`GraphStore` loads."""
        return cls(store.load(), **kwargs)

    @classmethod
    def from_snapshot(
        cls,
        path,
        *,
        mmap: bool = False,
        interval=None,
        residency=False,
        **kwargs,
    ) -> "TspgService":
        """Boot a service from a binary index snapshot in O(read).

        The snapshot (written by :func:`repro.store.save_snapshot` or the
        ``tspg warm`` command) already contains every warmed index, so no
        edge is re-inserted or re-sorted; construction cost is dominated by
        reading and decoding the file.  Raises
        :class:`~repro.store.SnapshotError` on a corrupt or incompatible
        file.

        ``mmap=True`` requests the zero-copy columnar boot (snapshot
        format v4): the file is mapped instead of decompressed and the
        view columns serve straight out of the page cache, so boot cost
        and resident memory scale with the pages queries actually touch.
        Pre-v4 snapshots degrade to the eager boot with the reasons
        recorded on :meth:`mmap_fallback_reasons` — a readable snapshot
        always boots.

        The snapshot path is remembered: it is what the
        ``executor="processes"`` batch backend hands to its pool workers so
        each can boot an identical service in O(read) — with ``mmap``
        active, workers map the very same file, sharing its page-cache
        pages instead of re-unpickling a private copy per process.  The
        association is epoch-guarded — mutating the graph afterwards
        disables the process backend (workers would boot a stale graph)
        until a fresh snapshot is attached.

        ``interval`` restricts the boot to that (inclusive) time range's
        edges — combined with ``mmap`` this is the extent-local boot that
        maps only the range's rows (see :func:`repro.store.boot_snapshot`).
        Queries whose window lies inside the interval answer bit-identically
        to an unrestricted boot.

        ``residency=True`` attaches a :class:`~repro.store.ResidencyPolicy`
        driving ``madvise`` page advice over the boot's mappings:
        ``MADV_SEQUENTIAL`` for the warm scan, ``MADV_RANDOM`` once
        serving starts, and :meth:`evict_cold_pages` for the serve loop's
        periodic ``MADV_DONTNEED``.  A pre-built policy may be passed
        instead of ``True``.  Advice degrades to a recorded no-op where
        unsupported — it never changes results, only paging behaviour.
        """
        from ..store.graph_store import SnapshotGraphStore  # deferred: cycle
        from ..store.residency import ResidencyPolicy  # deferred: cycle

        policy = None
        if residency:
            policy = (
                residency
                if isinstance(residency, ResidencyPolicy)
                else ResidencyPolicy()
            )
        store = SnapshotGraphStore(
            path, mmap=mmap, interval=interval, residency=policy
        )
        graph = store.load()
        if policy is not None:
            policy.advise_warm()  # sequential read-ahead for the warm scan
        service = cls(graph, **kwargs)
        if policy is not None:
            policy.advise_serve()  # point queries from here on
        service._snapshot_path = store.path
        service._snapshot_epoch = service.graph.epoch
        service._snapshot_mmap_requested = store.mmap_requested
        service._snapshot_mmap = store.mmap_active
        service._snapshot_mmap_reasons = (
            store.mmap_fallback_reasons() if mmap else []
        )
        service._residency = policy
        service._snapshot_interval = interval
        service._snapshot_boot = store.last_boot
        return service

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> TemporalGraph:
        """The graph this service answers queries about."""
        return self._graph

    def has_vertex(self, vertex: Vertex) -> bool:
        """Whether ``vertex`` exists in the served graph.

        Exists so callers that only need a membership probe (the CLI's
        vertex-label coercion) can treat flat and sharded services
        uniformly — the sharded counterpart answers without materialising
        its full-graph union.
        """
        return self._graph.has_vertex(vertex)

    @property
    def epoch(self) -> int:
        """Mutation epoch of the served graph.

        Part of the uniform flat/sharded surface: the serving tier stamps
        this onto every query response (``epoch_before`` /
        ``epoch_after``) so network clients can replay answers against a
        serial oracle while ingest runs concurrently.
        """
        return self._graph.epoch

    @property
    def default_algorithm(self) -> str:
        """Name of the algorithm used when none is given."""
        return self._default_algorithm

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the result cache."""
        return self._cache.stats()

    @property
    def warmed_epoch(self) -> int:
        """Graph epoch the currently warmed indices describe."""
        return self._warmed_epoch

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The attached persistent worker pool, if any."""
        return self._pool

    def attach_pool(self, pool: Optional[WorkerPool]) -> None:
        """Attach (or with ``None`` detach) a persistent worker pool.

        The pool's lifecycle stays the caller's: the service never closes
        it, and several services may share one pool (worker-side booted
        services are cached per snapshot path, so shards of different
        routers coexist in the same workers).
        """
        self._pool = pool

    def clear_cache(self) -> None:
        """Drop all memoized results (e.g. after mutating the graph)."""
        self._cache.clear()
        with self._algorithms_lock:
            self._pinned_algorithms.clear()

    def _ensure_current(self) -> None:
        """Rewarm indices and drop stale results when the graph has mutated.

        Every query entry point calls this: the graph's mutation
        :attr:`~TemporalGraph.epoch` is compared against the epoch stamped at
        warm time, so a cached result computed over the old edge set can
        never be served.  (Cache keys embed the epoch too, which also
        protects against a mutation racing a query already in flight.)

        When the gap is covered by structured append deltas
        (:meth:`TemporalGraph.deltas_since`), invalidation is *delta-aware*:
        an appended edge can only change a query whose window intersects the
        appended timestamps (the algorithms never look outside the window)
        or whose endpoints are among the newly added vertices.  Every other
        cached entry is provably still correct and is carried across the
        epoch bump re-keyed to the new warmed epoch.  Legacy mutators leave
        a gap in the delta log, and the rewarm falls back to the wholesale
        clear.
        """
        if self._graph.epoch == self._warmed_epoch:
            return
        with self._rewarm_lock:
            if self._graph.epoch == self._warmed_epoch:
                return  # another thread already rewarmed
            deltas = self._graph.deltas_since(self._warmed_epoch)
            if deltas:
                self._invalidate_for_deltas(deltas)
            else:
                self.clear_cache()
            self.index_stats = self._graph.warm_indices()
            self._warmed_epoch = self._graph.epoch

    def _invalidate_for_deltas(self, deltas) -> int:
        """Drop only the cache entries a batch of append deltas can affect.

        Returns the number of entries dropped.  Survivors are re-keyed to
        the current graph epoch so post-rewarm lookups (whose keys embed
        the new warmed epoch) still hit them.  Pinned algorithm instances
        are kept — surviving keys embed ``id(instance)``.
        """
        populated = [d for d in deltas if d.rows]
        if not populated:
            return 0
        lo = min(d.min_timestamp for d in populated)
        hi = max(d.max_timestamp for d in populated)
        fresh_vertices = set()
        for delta in populated:
            fresh_vertices.update(delta.new_vertices)
        new_epoch = self._graph.epoch

        def transform(key):
            source, target, interval, algorithm_id, _epoch = key
            begin, end = interval
            if end >= lo and begin <= hi:
                return None  # window sees appended timestamps
            if source in fresh_vertices or target in fresh_vertices:
                return None  # endpoint did not exist before the append
            return (source, target, interval, algorithm_id, new_epoch)

        return self._cache.rekey(transform)

    def ingest(self, edges) -> "EdgeDelta":
        """Append edges through the journaled delta path and serve on.

        The live-ingest entry point: applies ``edges`` via
        :meth:`TemporalGraph.append_edges` (an mmap-booted graph stays lazy
        and its columnar view is *extended*, not rebuilt), records the
        delta in the snapshot's ``*.tspgjournal`` sidecar when this service
        was booted from a snapshot, and runs the delta-aware cache rewarm.
        Returns the applied :class:`~repro.graph.temporal_graph.EdgeDelta`.

        Because a snapshot boot replays the journal, process-pool workers
        booting from the same path reconstruct the identical post-append
        graph — so the ``executor="processes"`` backend stays enabled
        across journaled ingests instead of degrading to threads.
        """
        with self._rewarm_lock:
            delta = self._graph.append_edges(edges)
            if (
                delta
                and self._snapshot_path is not None
                and self._snapshot_epoch == delta.old_epoch
            ):
                # Journal only while snapshot + journal still reproduce the
                # live graph; a legacy mutation in between broke that chain
                # (and already disabled the process backend).
                from ..store.journal import append_journal_delta  # deferred: cycle

                append_journal_delta(self._snapshot_path, delta)
                # Workers boot snapshot + journal and land on this epoch.
                self._snapshot_epoch = self._graph.epoch
        self._ensure_current()
        return delta

    def refresh_indices(self) -> Dict[str, int]:
        """Deprecated: staleness is now detected automatically via the epoch.

        Kept as an alias so pre-epoch callers keep working; it forces an
        immediate rewarm (harmless — the next query would have done the same)
        and returns the fresh index stats.

        .. deprecated:: 1.1
           Mutations bump :attr:`TemporalGraph.epoch` and the service rewarms
           transparently; there is nothing to call any more.
        """
        warnings.warn(
            "TspgService.refresh_indices() is deprecated: graph mutations are "
            "detected automatically via TemporalGraph.epoch",
            DeprecationWarning,
            stacklevel=2,
        )
        with self._rewarm_lock:
            self.clear_cache()
            self.index_stats = self._graph.warm_indices()
            self._warmed_epoch = self._graph.epoch
        return self.index_stats

    def _resolve(self, algorithm: Optional[AlgorithmSpec]) -> TspgAlgorithm:
        """Return a shared algorithm instance for a name (or pass one through)."""
        if isinstance(algorithm, TspgAlgorithm):
            return algorithm
        name = algorithm or self._default_algorithm
        with self._algorithms_lock:
            instance = self._algorithms.get(name)
            if instance is None:
                options = self._algorithm_options.get(name, {})
                instance = get_algorithm(name, **options)
                self._algorithms[name] = instance
        return instance

    def _cache_key(self, query: TspgQuery, algorithm: TspgAlgorithm) -> CacheKey:
        with self._algorithms_lock:
            self._pinned_algorithms.setdefault(id(algorithm), algorithm)
        # The warmed epoch is part of the key: entries written for an older
        # edge set can never satisfy a lookup issued after a mutation, even
        # if the write lands after the rewarm cleared the cache.
        return (
            query.source,
            query.target,
            query.interval.as_tuple(),
            f"{algorithm.name}@{id(algorithm)}",
            self._warmed_epoch,
        )

    # ------------------------------------------------------------------
    # single queries
    # ------------------------------------------------------------------
    def submit(
        self,
        query: TspgQuery,
        algorithm: Optional[AlgorithmSpec] = None,
        *,
        use_cache: bool = True,
        deadline: Optional[Deadline] = None,
    ) -> AlgorithmResult:
        """Answer one query, consulting and populating the result cache.

        On a cache hit the returned :class:`AlgorithmResult` shares the
        (immutable) ``result`` and ``space_cost`` of the original run but
        reports the *lookup* time as ``elapsed_seconds`` and carries
        ``extras["cache_hit"] = True``.  If the graph was mutated since the
        last query, the indices are transparently rewarmed and stale cached
        results dropped first.

        ``deadline`` is the cooperative per-query cut-off, forwarded into
        the algorithm (see :meth:`TspgAlgorithm.run`): an
        expired-on-arrival query returns a ``timed_out`` result before any
        phase — or even the cache — is touched, and an in-flight one cuts
        itself off at the algorithm's documented check points.  A
        ``timed_out`` outcome is never memoized.
        """
        self._ensure_current()
        resolved = self._resolve(algorithm)
        if deadline is not None and deadline.expired():
            # Deterministic admission refusal: even a cache hit is not
            # served past the deadline, so an expired query's outcome does
            # not depend on what happens to be cached.
            return resolved.run(
                self._graph, query.source, query.target, query.interval,
                deadline=deadline,
            )
        key: Optional[CacheKey] = None
        if use_cache:
            key = self._cache_key(query, resolved)
            started = time.perf_counter()
            cached = self._cache.get(key)
            if cached is not None:
                return AlgorithmResult(
                    algorithm=cached.algorithm,
                    result=cached.result,
                    elapsed_seconds=time.perf_counter() - started,
                    space_cost=cached.space_cost,
                    timed_out=cached.timed_out,
                    extras={**cached.extras, "cache_hit": True},
                )
        outcome = resolved.run(
            self._graph, query.source, query.target, query.interval,
            deadline=deadline,
        )
        # Never memoize a cut-off run: a timed-out (possibly partial) result
        # would be served for every future repeat of the query.
        if use_cache and not outcome.timed_out:
            self._cache.put(key, outcome)
        return outcome

    def query(
        self,
        source: Vertex,
        target: Vertex,
        interval,
        algorithm: Optional[AlgorithmSpec] = None,
        *,
        use_cache: bool = True,
        deadline: Optional[Deadline] = None,
    ) -> AlgorithmResult:
        """Convenience wrapper building the :class:`TspgQuery` for the caller."""
        return self.submit(
            TspgQuery(source=source, target=target, interval=interval),
            algorithm,
            use_cache=use_cache,
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: Union[Sequence[TspgQuery], QueryWorkload],
        algorithm: Optional[AlgorithmSpec] = None,
        *,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
        time_budget_seconds: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        executor: Optional[str] = None,
    ) -> BatchReport:
        """Answer a batch of queries, optionally in parallel.

        Parameters
        ----------
        queries:
            The batch; a :class:`QueryWorkload` is accepted directly.
        max_workers:
            Worker-pool width; ``1`` (the default from the constructor)
            executes serially in submission order.
        time_budget_seconds:
            Wall-clock budget for the whole batch.  Queries that have not
            *started* when the budget expires are reported as skipped
            (``BatchItem.skipped``) and the report is flagged ``timed_out`` —
            the batch analogue of the paper's 12-hour "INF" cut-off.  The
            budget also travels into every query as a cooperative
            :class:`~repro.core.deadline.Deadline`, so an in-flight query
            cuts itself off promptly (a ``timed_out`` outcome) instead of
            occupying its worker past the budget.
        deadline:
            An explicit absolute cut-off, for callers that already hold a
            :class:`Deadline` (the serve loop's per-request deadlines).
            When both this and ``time_budget_seconds`` are given the
            stricter instant wins.
        executor:
            ``"threads"`` (default) or ``"processes"``.  The process backend
            fans contiguous chunks of the batch out to a
            ``ProcessPoolExecutor`` whose workers boot from this service's
            snapshot (:meth:`from_snapshot`) — true multi-core parallelism
            for the GIL-bound hot path.  It degrades to threads
            automatically when no current snapshot is attached or the
            algorithm is an unregistered instance;
            :attr:`BatchReport.executor` records the backend actually used.

        Returns
        -------
        BatchReport
            Per-query outcomes aligned with the input order plus wall-clock
            and throughput aggregates.  Results are identical regardless of
            worker count and backend: every query runs against the same
            immutable warmed graph (or a snapshot-booted copy of it), and
            result objects are frozen.
        """
        query_list = list(queries)
        self._ensure_current()
        resolved = self._resolve(algorithm)
        workers = max_workers if max_workers is not None else self._max_workers
        if workers < 1:
            raise ValueError("max_workers must be at least 1")
        executor_kind = _validate_executor(
            executor if executor is not None else self._default_executor
        )
        budget_deadline = Deadline.from_budget(time_budget_seconds)
        if budget_deadline is not None:
            deadline = budget_deadline.earlier(deadline)
        report = BatchReport(
            algorithm=resolved.name,
            items=[BatchItem(query=query) for query in query_list],
            num_workers=workers,
        )
        started = time.perf_counter()
        if workers == 1 or len(query_list) <= 1:
            self._run_batch_serial(report, resolved, use_cache, deadline)
        elif executor_kind == "processes" and self._process_backend_ready(algorithm):
            self._run_batch_processes(
                report, algorithm, resolved, workers, use_cache, deadline
            )
        else:
            self._run_batch_parallel(report, resolved, workers, use_cache, deadline)
        if deadline is not None and deadline.expired() and report.num_timed_out:
            # Queries the deadline cut off mid-flight are budget expiry too,
            # exactly like the skipped-before-start case.
            report.timed_out = True
        report.wall_seconds = time.perf_counter() - started
        return report

    def _process_backend_ready(self, algorithm: Optional[AlgorithmSpec]) -> bool:
        """Whether a ``processes`` request can actually use the process pool.

        Requires a snapshot taken at the current graph epoch (workers boot
        from it) and a registry-name algorithm (instances are configured
        in-process and are not shipped across the boundary).  When this is
        ``False`` the batch silently runs on the thread backend instead.
        """
        return (
            self._snapshot_path is not None
            and self._snapshot_epoch == self._graph.epoch
            and not isinstance(algorithm, TspgAlgorithm)
        )

    def _run_one(
        self,
        item: BatchItem,
        algorithm: TspgAlgorithm,
        use_cache: bool,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Execute one batch item in place (runs on a worker thread)."""
        started = time.perf_counter()
        outcome = self.submit(
            item.query, algorithm, use_cache=use_cache, deadline=deadline
        )
        item.outcome = outcome
        item.cache_hit = bool(outcome.extras.get("cache_hit"))
        item.elapsed_seconds = time.perf_counter() - started

    def _run_batch_serial(
        self,
        report: BatchReport,
        algorithm: TspgAlgorithm,
        use_cache: bool,
        deadline: Optional[Deadline],
    ) -> None:
        for item in report.items:
            if deadline is not None and deadline.expired():
                item.skipped = True
                report.timed_out = True
                continue
            self._run_one(item, algorithm, use_cache, deadline)

    def _run_batch_parallel(
        self,
        report: BatchReport,
        algorithm: TspgAlgorithm,
        workers: int,
        use_cache: bool,
        deadline: Optional[Deadline],
    ) -> None:
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="tspg-batch"
        ) as executor:
            futures: Dict[Future, BatchItem] = {
                executor.submit(
                    self._run_one, item, algorithm, use_cache, deadline
                ): item
                for item in report.items
            }
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = deadline.remaining()
            #: Items still in flight at the budget cut-off (uncancellable).
            late: List[BatchItem] = []
            done, not_done = wait(futures, timeout=remaining, return_when=FIRST_EXCEPTION)
            failed = any(
                not future.cancelled() and future.exception() is not None
                for future in done
            )
            if failed:
                # A worker blew up: cancel whatever has not started so the
                # error surfaces promptly (raised below, after the pool
                # joins).  This is not a budget cut-off — neither `skipped`
                # nor `timed_out` is touched, so an error can never
                # masquerade as a clean budget skip.
                for future in not_done:
                    future.cancel()
            else:
                # `wait` only returns with pending futures (and no failure)
                # when the timeout fired, i.e. the budget actually expired.
                # Queries that never started (cancel succeeds) are true
                # budget skips.  In-flight ones finish (threads cannot be
                # interrupted): a cooperative algorithm cuts itself off
                # and delivers a `timed_out` row — the same label the
                # serial and process backends give it — while one that
                # runs to a late non-timed-out result is marked skipped
                # below, because the batch did not deliver it on time.
                for future in not_done:
                    if future.cancel():
                        futures[future].skipped = True
                    else:
                        late.append(futures[future])
                    report.timed_out = True
        # The pool has joined: every non-cancelled future — including ones
        # that were in flight at the budget cut-off — is finished, so worker
        # exceptions surface instead of masquerading as budget skips.
        for future in futures:
            if future.cancelled():
                continue
            exc = future.exception()
            if exc is not None:
                raise exc
        if not failed:
            for item in late:
                if item.outcome is not None and not item.outcome.timed_out:
                    item.skipped = True

    def _cache_lookup(self, item: BatchItem, resolved: TspgAlgorithm) -> bool:
        """Fill ``item`` from the result cache; ``True`` on a hit.

        The parent-side peek the process backend uses so memoized queries
        never cross the process boundary (worker processes cannot see this
        cache); mirrors :meth:`submit`'s hit path exactly.
        """
        key = self._cache_key(item.query, resolved)
        started = time.perf_counter()
        cached = self._cache.get(key)
        if cached is None:
            return False
        item.outcome = AlgorithmResult(
            algorithm=cached.algorithm,
            result=cached.result,
            elapsed_seconds=time.perf_counter() - started,
            space_cost=cached.space_cost,
            timed_out=cached.timed_out,
            extras={**cached.extras, "cache_hit": True},
        )
        item.cache_hit = True
        item.elapsed_seconds = item.outcome.elapsed_seconds
        return True

    def _cache_store(self, item: BatchItem, resolved: TspgAlgorithm) -> None:
        """Memoize a worker-computed outcome in the parent's cache.

        Counterpart of :meth:`_cache_lookup`: results shipped back from a
        worker process would otherwise die with its pool, making repeat
        batches recompute everything.  Skips, cut-offs and hits are never
        stored (same rules as :meth:`submit`).
        """
        outcome = item.outcome
        if outcome is None or outcome.timed_out or item.cache_hit or item.skipped:
            return
        self._cache.put(self._cache_key(item.query, resolved), outcome)

    def _active_pool(self) -> Optional[WorkerPool]:
        """The attached persistent pool, if it can still serve."""
        return _usable_pool(self._pool)

    def process_fallback_reasons(
        self,
        algorithm: Optional[AlgorithmSpec] = None,
        max_workers: Optional[int] = None,
    ) -> List[str]:
        """Why a ``processes`` batch request would degrade to threads.

        Returns human-readable reasons, empty when the process backend
        would engage.  The CLI renders these in its explanatory note; the
        degrade itself stays silent on the API (the report's
        :attr:`BatchReport.executor` field records what actually ran).
        """
        workers = max_workers if max_workers is not None else self._max_workers
        reasons = _common_fallback_reasons(workers, algorithm)
        if self._snapshot_path is None:
            reasons.append(
                "no snapshot is attached (boot via TspgService.from_snapshot "
                "or 'tspg warm') so workers have nothing to boot from"
            )
        elif self._snapshot_epoch != self._graph.epoch:
            reasons.append(
                "the graph mutated after the snapshot was taken (stale "
                "epoch); re-warm to re-attach"
            )
        return reasons

    @property
    def snapshot_mmap_active(self) -> bool:
        """Whether this service booted over an mmap-backed snapshot."""
        return self._snapshot_mmap

    @property
    def residency(self):
        """The attached :class:`~repro.store.ResidencyPolicy`, or ``None``."""
        return self._residency

    @property
    def snapshot_boot(self):
        """The :class:`~repro.store.SnapshotBoot` this service booted from.

        Carries the extent-local accounting (``row_range``,
        ``mapped_column_bytes``, ``total_column_bytes``); ``None`` for
        services not built by :meth:`from_snapshot`.
        """
        return self._snapshot_boot

    def residency_stats(self) -> Optional[Dict[str, object]]:
        """Page-advice counters, or ``None`` when no policy is attached."""
        if self._residency is None:
            return None
        stats = self._residency.stats()
        boot = self._snapshot_boot
        if boot is not None:
            stats["mapped_column_bytes"] = boot.mapped_column_bytes
            stats["total_column_bytes"] = boot.total_column_bytes
            stats["row_range"] = boot.row_range
        return stats

    def evict_cold_pages(self) -> int:
        """``MADV_DONTNEED`` the boot's mappings; returns bytes advised.

        The ``tspg serve`` loop calls this periodically so a long-running
        server's resident set tracks the recent query mix instead of
        accreting every page ever touched.  A no-op (returning 0) without a
        policy or on platforms without madvise support.
        """
        if self._residency is None:
            return 0
        return self._residency.evict_cold()

    def mmap_fallback_reasons(self) -> List[str]:
        """Why the boot is not mmap-backed (empty when it is).

        Mirrors :meth:`process_fallback_reasons`: human-readable reasons
        the CLI renders, never an exception.  When ``mmap=True`` was
        passed to :meth:`from_snapshot` but the boot degraded to eager,
        each degradation is listed (e.g. a pre-v4 snapshot); when mmap was
        never requested the single reason says so.
        """
        if not self._snapshot_mmap_requested:
            return ["mmap boot was not requested (pass mmap=True / --mmap)"]
        return list(self._snapshot_mmap_reasons)

    def _run_batch_processes(
        self,
        report: BatchReport,
        algorithm: Optional[AlgorithmSpec],
        resolved: TspgAlgorithm,
        workers: int,
        use_cache: bool,
        deadline: Optional[Deadline],
    ) -> None:
        """Fan contiguous chunks of the batch out to snapshot-booted processes.

        Each worker boots a :class:`TspgService` from :attr:`_snapshot_path`
        (cached per worker process), answers its chunk serially, and ships
        the sub-report back; chunks are merged in submission order, so the
        merged report is bit-identical to a serial run.  The parent's result
        cache stays authoritative: hits are answered here before anything is
        shipped, and worker outcomes are stored back on return, so repeat
        batches keep their dictionary-lookup cost.  Worker exceptions
        re-raise here via ``Future.result()``.

        With a persistent :class:`WorkerPool` attached the chunks are
        submitted to its long-lived workers (whose booted services survive
        from previous batches) and nothing is torn down afterwards;
        otherwise a per-batch ``ProcessPoolExecutor`` is built and shut
        down around the fan-out, as before.
        """
        name = algorithm if isinstance(algorithm, str) else None
        pending = list(range(len(report.items)))
        # Mirror submit()'s admission contract: past the deadline not even
        # a cache hit is served, so the refusal a worker will produce does
        # not depend on what happens to be cached (and the report matches
        # the thread/serial backends for identical input).
        if use_cache and not (deadline is not None and deadline.expired()):
            pending = [
                position
                for position in pending
                if not self._cache_lookup(report.items[position], resolved)
            ]
        if not pending:
            # Everything was answered from the cache — no worker ran, so
            # the report keeps the default backend label.
            return
        report.executor = "processes"
        deadline_at = deadline.at_monotonic if deadline is not None else None
        chunks = [
            [pending[offset] for offset in chunk]
            for chunk in _chunk_positions(len(pending), workers)
        ]
        persistent = self._active_pool()
        batch_pool: Optional[ProcessPoolExecutor] = None
        if persistent is None:
            batch_pool = ProcessPoolExecutor(max_workers=len(chunks))
            submit = batch_pool.submit
            harvest = Future.result
        else:
            submit = persistent.submit
            harvest = persistent.harvest
        submitted: List[Tuple[List[int], Future]] = []
        try:
            for chunk in chunks:
                submitted.append(
                    (
                        chunk,
                        submit(
                            _snapshot_worker_run_batch,
                            self._snapshot_path,
                            [report.items[position].query for position in chunk],
                            name,
                            default_algorithm=self._default_algorithm,
                            algorithm_options=self._algorithm_options,
                            use_cache=use_cache,
                            deadline_at=deadline_at,
                            snapshot_epoch=self._snapshot_epoch,
                            snapshot_mmap=self._snapshot_mmap,
                            snapshot_interval=self._snapshot_interval,
                            snapshot_residency=self._residency is not None,
                        ),
                    )
                )
            for chunk, future in submitted:
                sub_report = harvest(future)  # re-raises worker exceptions
                report.timed_out = report.timed_out or sub_report.timed_out
                for position, item in zip(chunk, sub_report.items):
                    report.items[position] = item
                    if use_cache:
                        self._cache_store(item, resolved)
        finally:
            if batch_pool is not None:
                # cancel_futures is a no-op on the success path (every
                # future already resolved); on an exception it stops queued
                # chunks from computing results that would only be
                # discarded.  A persistent pool is never shut down here —
                # keeping its workers (and their booted services) alive
                # across batches is its whole point.
                batch_pool.shutdown(cancel_futures=True)
            elif persistent is not None:
                # The persistent-pool analogue of cancel_futures: when an
                # exception aborts the merge, queued chunks of this batch
                # must not keep occupying the shared workers just to have
                # their results discarded.  cancel() is a no-op for
                # resolved futures, so the success path is unaffected.
                for _chunk, future in submitted:
                    future.cancel()
                persistent.note_batch()
