"""Thread-safe LRU cache for query results.

The batch service memoizes :class:`~repro.baselines.interface.AlgorithmResult`
objects keyed by ``(source, target, (τb, τe), algorithm)``.  Results are
immutable (:class:`~repro.core.result.PathGraph` is a frozen dataclass over
frozen sets), so sharing one cached object between callers is safe.

The implementation is a classic ``OrderedDict`` LRU guarded by a lock — the
executor threads of :class:`~repro.service.service.TspgService` hit the cache
concurrently — with hit/miss/eviction counters surfaced through
:class:`CacheStats` for the throughput benchmark and the CLI.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, Tuple, TypeVar

Value = TypeVar("Value")

#: Cache key: ``(source, target, (τb, τe), algorithm name, graph epoch)``.
#: The epoch stamp guarantees entries computed over an older edge set can
#: never satisfy a lookup issued after the graph mutated.
CacheKey = Tuple[Hashable, ...]


@dataclass
class CacheStats:
    """Counters describing the life of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_size: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "hit_rate": round(self.hit_rate, 3),
        }


class ResultCache(Generic[Value]):
    """A bounded, thread-safe, least-recently-used mapping.

    Parameters
    ----------
    max_size:
        Maximum number of entries; the least recently *used* entry is evicted
        first.  ``0`` disables the cache entirely (every lookup misses and
        stores are dropped), which lets callers keep one code path.
    """

    def __init__(self, max_size: int = 1024) -> None:
        if max_size < 0:
            raise ValueError("max_size must be non-negative")
        self._max_size = max_size
        self._entries: "OrderedDict[CacheKey, Value]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_size(self) -> int:
        """Configured capacity (``0`` means disabled)."""
        return self._max_size

    @property
    def enabled(self) -> bool:
        """``True`` when the cache can hold at least one entry."""
        return self._max_size > 0

    def get(self, key: CacheKey) -> Optional[Value]:
        """Return the cached value or ``None``, updating recency and counters."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: CacheKey, value: Value) -> None:
        """Store ``value``, evicting the least recently used entry when full."""
        if not self.enabled:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def rekey(self, transform) -> int:
        """Rewrite every key through ``transform``; returns entries dropped.

        ``transform(key)`` returns the replacement key, or ``None`` to drop
        the entry.  LRU recency order is preserved for the survivors.  This
        is the delta-aware invalidation primitive: an append that provably
        cannot change a cached query's answer lets the service carry the
        entry across the epoch bump (re-keyed to the new warmed epoch)
        instead of discarding the whole cache.
        """
        dropped = 0
        with self._lock:
            rewritten: "OrderedDict[CacheKey, Value]" = OrderedDict()
            for key, value in self._entries.items():
                new_key = transform(key)
                if new_key is None:
                    dropped += 1
                    continue
                rewritten[new_key] = value
            self._entries = rewritten
            self._evictions += dropped
        return dropped

    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self._max_size,
            )
