"""Batch query serving for temporal simple path graphs.

This package is the scale layer of the library: where
:func:`repro.generate_tspg` answers one query, :class:`TspgService` serves
*many* queries over the *same* graph efficiently by

* warming the per-graph indices once (sorted edge list, distinct-timestamp
  set, per-vertex ``T_out``/``T_in`` views) instead of letting the first
  query of every workload rebuild them;
* memoizing results in a thread-safe LRU cache keyed by
  ``(source, target, interval, algorithm)`` — repeat queries are answered in
  dictionary-lookup time;
* executing batches on a configurable ``concurrent.futures`` worker pool with
  a per-batch wall-clock budget (the batch analogue of the paper's 12-hour
  "INF" cut-off) — either the in-process thread backend or, when the service
  (or each shard of a :class:`ShardedTspgService`) has a binary snapshot to
  boot workers from, a true multi-core ``ProcessPoolExecutor`` backend
  (``run_batch(executor="processes")``) that sidesteps the GIL on the
  pure-Python hot path.

Quickstart
----------
>>> from repro import TemporalGraph
>>> from repro.service import TspgService
>>> from repro.queries.query import TspgQuery
>>> graph = TemporalGraph(edges=[("s", "b", 2), ("b", "c", 3),
...                              ("b", "t", 6), ("c", "t", 7)])
>>> service = TspgService(graph, cache_size=256)
>>> batch = [TspgQuery("s", "t", (2, 7)), TspgQuery("b", "t", (3, 7))]
>>> report = service.run_batch(batch, max_workers=2)
>>> report.num_completed
2
>>> repeat = service.run_batch(batch)          # served from the cache
>>> repeat.num_cache_hits
2

For high-QPS serving loops a persistent :class:`WorkerPool` keeps the
process backend's workers — and their snapshot-booted services, warmed
views and caches — alive across batches (``tspg serve`` drives one), and
batch budgets travel as cooperative per-query
:class:`~repro.core.deadline.Deadline` objects so an expired query frees
its worker promptly.  See ``docs/serving.md`` for the full serving-layer
tour.

The CLI exposes the same machinery as ``tspg batch`` / ``tspg serve`` and
the throughput benchmarks (``bench_exp9`` serial/parallel/cached,
``bench_exp12`` thread/process backends, ``bench_exp13`` persistent pool +
deadlines) measure the regimes against each other.
"""

from ..core.deadline import Deadline
from .cache import CacheStats, ResultCache
from .pool import WorkerPool, WorkerPoolError
from .service import (
    DEFAULT_CACHE_SIZE,
    EXECUTOR_BACKENDS,
    BatchItem,
    BatchReport,
    TspgService,
)
from .server import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_MAX_LINE_BYTES,
    DEFAULT_MAX_PENDING_PER_CLIENT,
    LatencyHistogram,
    RequestCore,
    ServerStats,
    ServerThread,
    TspgClient,
    TspgServer,
)
from .sharding import (
    FALLBACK_SHARD,
    ShardedBatchReport,
    ShardedTspgService,
    ShardSpec,
    partition_time_range,
)

__all__ = [
    "TspgService",
    "BatchReport",
    "BatchItem",
    "ResultCache",
    "CacheStats",
    "Deadline",
    "DEFAULT_CACHE_SIZE",
    "EXECUTOR_BACKENDS",
    "WorkerPool",
    "WorkerPoolError",
    "ShardedTspgService",
    "ShardedBatchReport",
    "ShardSpec",
    "FALLBACK_SHARD",
    "partition_time_range",
    "RequestCore",
    "ServerStats",
    "ServerThread",
    "LatencyHistogram",
    "TspgClient",
    "TspgServer",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_MAX_LINE_BYTES",
    "DEFAULT_MAX_PENDING_PER_CLIENT",
]
