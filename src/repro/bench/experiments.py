"""Experiment drivers reproducing every table and figure of the paper.

Each function regenerates one artifact of Section VI on the synthetic dataset
analogues and returns an :class:`~repro.bench.reporting.ExperimentReport` with
the same rows/series shape as the paper:

========================  =======================================================
Function                  Paper artifact
========================  =======================================================
``table1_datasets``       TABLE I   — dataset statistics
``exp1_response_time``    Fig. 5    — total response time, all datasets
``exp2_vary_theta``       Fig. 6/14 — response time while varying θ
``exp3_space``            Fig. 7    — max/min space consumption per algorithm
``exp4_phases``           Fig. 8    — response time of each VUG phase
``exp5_upper_bound``      TABLE II  — average upper-bound ratio per method
``exp5_quick_vs_tgtsg``   Fig. 9    — response time of tgTSG vs QuickUBG
``exp5_vary_theta``       Fig. 10/15— upper-bound ratio and time while varying θ
``exp6_eev_vs_enum``      Fig. 11   — EEV vs enumeration on the tight bound
``exp7_edges_vs_paths``   Fig. 12   — #edges vs #paths in the tspG
``exp8_case_study``       Fig. 13   — SFMTA transit case study
``exp9_batch_throughput`` (new)     — batch service: serial vs parallel vs cached
``exp10_store_and_shards`` (new)    — snapshot boot vs cold boot; sharded batches
``exp11_view_pipeline``   (new)     — zero-materialization vs materializing VUG
``exp12_process_shards``  (new)     — thread vs snapshot-booted process backend
``exp13_serving_pool``    (new)     — persistent worker pool + per-query deadlines
``exp14_vectorized_kernels`` (new)  — pure-Python vs numpy hot-path kernels
``exp15_mmap_boot``       (new)     — mmap-backed v4 columnar boot vs eager boots
``exp16_query_residency`` (new)     — window-local layouts, extent-local mapping
``exp17_live_ingest``     (new)     — ingest-while-querying identity oracle
``exp18_serving_tier``    (new)     — TCP serving tier under concurrent replay
========================  =======================================================

All drivers take ``num_queries`` / dataset-key parameters so the pytest
benchmarks can run them at a laptop-friendly scale while the CLI can scale
them up.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Dict, Iterable, List, Optional, Sequence

from ..algorithms import PAPER_ALGORITHMS, available_algorithms, get_algorithm
from ..analysis.upper_bound_ratio import UPPER_BOUND_METHODS, upper_bound_ratios_for_workload
from ..baselines.enumeration import EnumerationBudgetExceeded, tspg_by_enumeration
from ..baselines.reductions import tg_tsg_reduction
from ..core.polarity import compute_polarity_times
from ..core.quick_ubg import quick_upper_bound_graph
from ..core.vug import VUG, generate_tspg
from ..core.result import PhaseTimings
from ..core.eev import escaped_edges_verification
from ..core.tight_ubg import tight_upper_bound_with_tcv
from ..datasets.registry import DATASETS, SYNTH_SCALE, dataset_keys, get_dataset
from ..datasets.transit import (
    CASE_STUDY_QUERY,
    case_study_graph,
    describe_transfer_options,
    generate_transit_network,
)
from ..graph.temporal_graph import TemporalGraph
from ..paths.counting import count_temporal_simple_paths_capped
from ..queries.query import QueryWorkload
from ..queries.runner import QueryRunner
from ..queries.workload import generate_workload
from ..service import (
    RequestCore,
    ServerThread,
    ShardedTspgService,
    TspgClient,
    TspgService,
    WorkerPool,
)
from ..store import (
    SnapshotGraphStore,
    boot_snapshot,
    inspect_snapshot,
    save_snapshot,
    write_legacy_snapshot,
)
from .reporting import ExperimentReport

#: Default number of queries per workload used by the pytest benches.  The
#: paper uses 1000; the synthetic analogues are small enough that a few dozen
#: queries already produce stable orderings.
DEFAULT_NUM_QUERIES = 25

#: Per-(algorithm, workload) wall-clock budget replacing the paper's 12 h cap.
DEFAULT_TIME_BUDGET_SECONDS = 20.0


def _load(dataset_key: str) -> TemporalGraph:
    return get_dataset(dataset_key).load()


def _workload(
    graph: TemporalGraph,
    dataset_key: str,
    num_queries: int,
    theta: Optional[int] = None,
    seed: int = 7,
) -> QueryWorkload:
    spec = get_dataset(dataset_key)
    return generate_workload(
        graph,
        num_queries=num_queries,
        theta=theta if theta is not None else spec.default_theta,
        seed=seed,
        name=f"{dataset_key}-q{num_queries}",
    )


# ----------------------------------------------------------------------
# TABLE I
# ----------------------------------------------------------------------
def table1_datasets(keys: Optional[Sequence[str]] = None) -> ExperimentReport:
    """TABLE I: statistics of every dataset (paper values and synthetic analogue)."""
    report = ExperimentReport(
        experiment="Table I",
        description="Dataset statistics (paper original vs synthetic analogue)",
    )
    for key in keys or dataset_keys():
        spec = get_dataset(key)
        stats = spec.statistics()
        report.add_row(
            dataset=key,
            paper_name=spec.paper_name,
            paper_V=spec.paper_statistics.num_vertices,
            paper_E=spec.paper_statistics.num_edges,
            paper_T=spec.paper_statistics.num_timestamps,
            paper_theta=spec.paper_statistics.default_theta,
            synth_V=stats.num_vertices,
            synth_E=stats.num_edges,
            synth_T=stats.num_timestamps,
            synth_d=stats.max_degree,
        )
    report.add_note(
        "Synthetic analogues replace the (non-redistributable) SNAP/KONECT graphs; "
        "sizes are scaled down for the pure-Python build (see DESIGN.md)."
    )
    return report


# ----------------------------------------------------------------------
# Exp-1 (Fig. 5)
# ----------------------------------------------------------------------
def exp1_response_time(
    keys: Optional[Sequence[str]] = None,
    num_queries: int = DEFAULT_NUM_QUERIES,
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    time_budget_seconds: float = DEFAULT_TIME_BUDGET_SECONDS,
    seed: int = 7,
) -> ExperimentReport:
    """Fig. 5: total response time of every algorithm on every dataset."""
    report = ExperimentReport(
        experiment="Exp-1 (Fig. 5)",
        description=f"Total response time for {num_queries} random queries per dataset",
    )
    runner = QueryRunner(time_budget_seconds=time_budget_seconds)
    for key in keys or dataset_keys():
        graph = _load(key)
        workload = _workload(graph, key, num_queries, seed=seed)
        row: Dict[str, object] = {"dataset": key}
        for name in algorithms:
            outcome = runner.run_workload(get_algorithm(name), graph, workload)
            value = float("inf") if outcome.timed_out else round(outcome.total_seconds, 4)
            row[name] = value
            report.add_point(name, key, value)
        report.add_row(**row)
    return report


# ----------------------------------------------------------------------
# Exp-2 (Fig. 6 / Fig. 14)
# ----------------------------------------------------------------------
def exp2_vary_theta(
    dataset_key: str,
    thetas: Sequence[int],
    num_queries: int = DEFAULT_NUM_QUERIES,
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    time_budget_seconds: float = DEFAULT_TIME_BUDGET_SECONDS,
    seed: int = 7,
) -> ExperimentReport:
    """Fig. 6: total response time while varying the interval span θ."""
    report = ExperimentReport(
        experiment=f"Exp-2 (Fig. 6, {dataset_key})",
        description=f"Response time vs theta on {dataset_key}",
    )
    graph = _load(dataset_key)
    runner = QueryRunner(time_budget_seconds=time_budget_seconds)
    for theta in thetas:
        workload = _workload(graph, dataset_key, num_queries, theta=theta, seed=seed)
        row: Dict[str, object] = {"theta": theta}
        for name in algorithms:
            outcome = runner.run_workload(get_algorithm(name), graph, workload)
            value = float("inf") if outcome.timed_out else round(outcome.total_seconds, 4)
            row[name] = value
            report.add_point(name, theta, value)
        report.add_row(**row)
    return report


# ----------------------------------------------------------------------
# Exp-3 (Fig. 7)
# ----------------------------------------------------------------------
def exp3_space(
    keys: Optional[Sequence[str]] = None,
    num_queries: int = DEFAULT_NUM_QUERIES,
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    time_budget_seconds: float = DEFAULT_TIME_BUDGET_SECONDS,
    seed: int = 7,
) -> ExperimentReport:
    """Fig. 7: maximum and minimum per-query space cost of each algorithm."""
    report = ExperimentReport(
        experiment="Exp-3 (Fig. 7)",
        description="Space consumption (max/min across queries, element-count proxy)",
    )
    runner = QueryRunner(time_budget_seconds=time_budget_seconds)
    for key in keys or dataset_keys():
        graph = _load(key)
        workload = _workload(graph, key, num_queries, seed=seed)
        for name in algorithms:
            outcome = runner.run_workload(get_algorithm(name), graph, workload)
            report.add_row(
                dataset=key,
                algorithm=name,
                max_space=outcome.max_space,
                min_space=outcome.min_space,
                timed_out=outcome.timed_out,
            )
    report.add_note(
        "Space is reported as the number of graph elements an algorithm materialises "
        "(upper-bound graphs, TCV entries, enumerated path edges); see repro.analysis.memory."
    )
    return report


# ----------------------------------------------------------------------
# Exp-4 (Fig. 8)
# ----------------------------------------------------------------------
def exp4_phases(
    keys: Optional[Sequence[str]] = None,
    num_queries: int = DEFAULT_NUM_QUERIES,
    seed: int = 7,
) -> ExperimentReport:
    """Fig. 8: total response time of each phase of VUG (QuickUBG, TightUBG, EEV)."""
    report = ExperimentReport(
        experiment="Exp-4 (Fig. 8)",
        description="Per-phase response time of VUG",
    )
    engine = VUG()
    for key in keys or dataset_keys():
        graph = _load(key)
        workload = _workload(graph, key, num_queries, seed=seed)
        totals = PhaseTimings()
        for query in workload:
            run = engine.run(graph, query.source, query.target, query.interval)
            totals.accumulate(run.timings)
        report.add_row(
            dataset=key,
            QuickUBG=round(totals.quick_ubg, 4),
            TightUBG=round(totals.tight_ubg, 4),
            EEV=round(totals.eev, 4),
            total=round(totals.total, 4),
        )
        report.add_point("QuickUBG", key, round(totals.quick_ubg, 4))
        report.add_point("TightUBG", key, round(totals.tight_ubg, 4))
        report.add_point("EEV", key, round(totals.eev, 4))
    return report


# ----------------------------------------------------------------------
# Exp-5 (TABLE II, Fig. 9, Fig. 10 / Fig. 15)
# ----------------------------------------------------------------------
def exp5_upper_bound(
    keys: Optional[Sequence[str]] = None,
    num_queries: int = DEFAULT_NUM_QUERIES,
    seed: int = 7,
) -> ExperimentReport:
    """TABLE II: average upper-bound ratio of the five reduction methods."""
    report = ExperimentReport(
        experiment="Exp-5 (Table II)",
        description="Average upper-bound ratio (%) per method and dataset",
    )
    for key in keys or dataset_keys():
        graph = _load(key)
        workload = _workload(graph, key, num_queries, seed=seed)
        summaries = upper_bound_ratios_for_workload(graph, workload)
        row: Dict[str, object] = {"dataset": key}
        for method in UPPER_BOUND_METHODS:
            ratio = summaries[method].average_ratio
            row[method] = None if ratio is None else round(ratio, 1)
            report.add_point(method, key, row[method])
        report.add_row(**row)
    return report


def exp5_quick_vs_tgtsg(
    keys: Optional[Sequence[str]] = None,
    num_queries: int = DEFAULT_NUM_QUERIES,
    seed: int = 7,
) -> ExperimentReport:
    """Fig. 9: total upper-bound-generation time of tgTSG vs QuickUBG."""
    report = ExperimentReport(
        experiment="Exp-5 (Fig. 9)",
        description="Upper-bound generation time: tgTSG (Dijkstra) vs QuickUBG (BFS)",
    )
    for key in keys or dataset_keys():
        graph = _load(key)
        workload = _workload(graph, key, num_queries, seed=seed)
        tgtsg_total = 0.0
        quick_total = 0.0
        for query in workload:
            started = time.perf_counter()
            tg_tsg_reduction(graph, query.source, query.target, query.interval)
            tgtsg_total += time.perf_counter() - started
            started = time.perf_counter()
            polarity = compute_polarity_times(graph, query.source, query.target, query.interval)
            quick_upper_bound_graph(
                graph, query.source, query.target, query.interval, polarity=polarity
            )
            quick_total += time.perf_counter() - started
        speedup = tgtsg_total / quick_total if quick_total else float("inf")
        report.add_row(
            dataset=key,
            tgTSG=round(tgtsg_total, 4),
            QuickUBG=round(quick_total, 4),
            speedup=round(speedup, 2),
        )
        report.add_point("tgTSG", key, round(tgtsg_total, 4))
        report.add_point("QuickUBG", key, round(quick_total, 4))
    return report


def exp5_vary_theta(
    dataset_key: str,
    thetas: Sequence[int],
    num_queries: int = DEFAULT_NUM_QUERIES,
    seed: int = 7,
) -> ExperimentReport:
    """Fig. 10 / Fig. 15: upper-bound ratio and generation time while varying θ."""
    report = ExperimentReport(
        experiment=f"Exp-5 (Fig. 10, {dataset_key})",
        description=f"Upper-bound ratio and phase time vs theta on {dataset_key}",
    )
    graph = _load(dataset_key)
    for theta in thetas:
        workload = _workload(graph, dataset_key, num_queries, theta=theta, seed=seed)
        quick_time = 0.0
        tight_time = 0.0
        quick_ratio_acc: List[float] = []
        tight_ratio_acc: List[float] = []
        for query in workload:
            started = time.perf_counter()
            quick = quick_upper_bound_graph(graph, query.source, query.target, query.interval)
            quick_time += time.perf_counter() - started
            started = time.perf_counter()
            tight, _ = tight_upper_bound_with_tcv(quick, query.source, query.target, query.interval)
            tight_time += time.perf_counter() - started
            tspg = escaped_edges_verification(tight, query.source, query.target, query.interval)
            if quick.num_edges:
                quick_ratio_acc.append(100.0 * tspg.num_edges / quick.num_edges)
            if tight.num_edges:
                tight_ratio_acc.append(100.0 * tspg.num_edges / tight.num_edges)
        quick_ratio = sum(quick_ratio_acc) / len(quick_ratio_acc) if quick_ratio_acc else None
        tight_ratio = sum(tight_ratio_acc) / len(tight_ratio_acc) if tight_ratio_acc else None
        report.add_row(
            theta=theta,
            QuickUBG_time=round(quick_time, 4),
            TightUBG_time=round(tight_time, 4),
            QuickUBG_ratio=None if quick_ratio is None else round(quick_ratio, 1),
            TightUBG_ratio=None if tight_ratio is None else round(tight_ratio, 1),
        )
        report.add_point("QuickUBG_ratio", theta, None if quick_ratio is None else round(quick_ratio, 1))
        report.add_point("TightUBG_ratio", theta, None if tight_ratio is None else round(tight_ratio, 1))
    return report


# ----------------------------------------------------------------------
# Exp-6 (Fig. 11)
# ----------------------------------------------------------------------
def exp6_eev_vs_enum(
    dataset_key: str,
    thetas: Sequence[int],
    num_queries: int = DEFAULT_NUM_QUERIES,
    enumeration_cap: Optional[int] = None,
    seed: int = 7,
) -> ExperimentReport:
    """Fig. 11: EEV vs explicit enumeration, both applied to the tight upper bound.

    ``enumeration_cap`` bounds the number of paths the enumeration-based
    verifier may produce per query; exceeding it marks the whole θ point as
    ``inf`` for the enumeration curve (the paper's time-out handling).
    """
    report = ExperimentReport(
        experiment=f"Exp-6 (Fig. 11, {dataset_key})",
        description=f"EEV vs enumeration on the tight upper-bound graph ({dataset_key})",
    )
    graph = _load(dataset_key)
    for theta in thetas:
        workload = _workload(graph, dataset_key, num_queries, theta=theta, seed=seed)
        eev_total = 0.0
        enum_total: float = 0.0
        enum_capped = False
        for query in workload:
            quick = quick_upper_bound_graph(graph, query.source, query.target, query.interval)
            tight, _ = tight_upper_bound_with_tcv(quick, query.source, query.target, query.interval)
            started = time.perf_counter()
            eev_result = escaped_edges_verification(
                tight, query.source, query.target, query.interval
            )
            eev_total += time.perf_counter() - started
            if enum_capped:
                continue
            started = time.perf_counter()
            try:
                enum_result = tspg_by_enumeration(
                    tight, query.source, query.target, query.interval,
                    max_paths=enumeration_cap,
                )
            except EnumerationBudgetExceeded:
                enum_capped = True
                enum_total = float("inf")
                report.add_note(
                    f"enumeration exceeded {enumeration_cap} paths at theta={theta}"
                )
                continue
            enum_total += time.perf_counter() - started
            if not eev_result.same_members(enum_result.result):
                report.add_note(
                    f"MISMATCH between EEV and enumeration on query {query.as_tuple()}"
                )
        enum_value = enum_total if enum_capped else round(enum_total, 4)
        report.add_row(
            theta=theta,
            EEV=round(eev_total, 4),
            Enumeration=enum_value,
        )
        report.add_point("EEV", theta, round(eev_total, 4))
        report.add_point("Enumeration", theta, enum_value)
    return report


# ----------------------------------------------------------------------
# Exp-7 (Fig. 12)
# ----------------------------------------------------------------------
def exp7_edges_vs_paths(
    dataset_key: str,
    thetas: Sequence[int],
    num_queries: int = DEFAULT_NUM_QUERIES,
    path_cap: int = 2_000_000,
    seed: int = 7,
) -> ExperimentReport:
    """Fig. 12: number of edges vs number of temporal simple paths in the tspG."""
    report = ExperimentReport(
        experiment=f"Exp-7 (Fig. 12, {dataset_key})",
        description=f"#edges and #paths contained in the tspG vs theta ({dataset_key})",
    )
    graph = _load(dataset_key)
    for theta in thetas:
        workload = _workload(graph, dataset_key, num_queries, theta=theta, seed=seed)
        total_edges = 0
        total_paths = 0
        capped = False
        for query in workload:
            tspg = generate_tspg(graph, query.source, query.target, query.interval)
            total_edges += tspg.num_edges
            count = count_temporal_simple_paths_capped(
                tspg.to_temporal_graph(), query.source, query.target, query.interval, cap=path_cap
            )
            total_paths += count.count
            capped = capped or count.capped
        report.add_row(
            theta=theta,
            tspg_edges=total_edges,
            tspg_paths=total_paths,
            path_count_capped=capped,
        )
        report.add_point("edges", theta, total_edges)
        report.add_point("paths", theta, total_paths)
    return report


# ----------------------------------------------------------------------
# Exp-8 (Fig. 13)
# ----------------------------------------------------------------------
def exp8_case_study(use_full_network: bool = True) -> ExperimentReport:
    """Fig. 13: the SFMTA transit case study (Silver Ave → 30th St, [9:20, 9:30])."""
    report = ExperimentReport(
        experiment="Exp-8 (Fig. 13)",
        description="Transit case study: transfer options from Silver Ave to 30th St",
    )
    source, target, interval = CASE_STUDY_QUERY
    graph = generate_transit_network() if use_full_network else case_study_graph()
    tspg = generate_tspg(graph, source, target, interval)
    report.add_row(
        network_edges=graph.num_edges,
        network_stops=graph.num_vertices,
        tspg_stops=tspg.num_vertices,
        tspg_trips=tspg.num_edges,
    )
    for line in describe_transfer_options(tspg):
        report.add_note(line)
    return report


# ----------------------------------------------------------------------
# Exp-9 (batch service throughput; no paper analogue)
# ----------------------------------------------------------------------
def exp9_batch_throughput(
    dataset_key: str = "D1",
    num_queries: int = DEFAULT_NUM_QUERIES,
    algorithm: str = "VUG",
    workers: Sequence[int] = (1, 4),
    time_budget_seconds: float = DEFAULT_TIME_BUDGET_SECONDS,
    seed: int = 7,
) -> ExperimentReport:
    """Batch-service throughput: serial vs parallel vs cache-served repeats.

    Runs the same workload through :class:`~repro.service.TspgService` three
    ways — serially, on a worker pool for each entry of ``workers``, and a
    second (fully memoized) pass — and reports wall-clock seconds and
    queries/sec per regime.  The cached row is the service's raison d'être:
    repeat queries cost a dictionary lookup instead of a VUG run.
    """
    report = ExperimentReport(
        experiment=f"Exp-9 (batch throughput, {dataset_key})",
        description=(
            f"TspgService queries/sec for {num_queries} queries "
            f"({algorithm}): serial vs parallel vs cached"
        ),
    )
    graph = _load(dataset_key)
    workload = _workload(graph, dataset_key, num_queries, seed=seed)
    queries = list(workload)

    def add_mode(mode: str, batch) -> None:
        report.add_row(
            mode=mode,
            wall_s=round(batch.wall_seconds, 4),
            qps=round(batch.queries_per_second, 1),
            completed=batch.num_completed,
            cache_hits=batch.num_cache_hits,
            timed_out=batch.timed_out,
        )
        report.add_point("qps", mode, round(batch.queries_per_second, 1))

    service = TspgService(graph, default_algorithm=algorithm)
    add_mode(
        "serial",
        service.run_batch(
            queries, max_workers=1, use_cache=False,
            time_budget_seconds=time_budget_seconds,
        ),
    )
    for count in workers:
        if count <= 1:
            continue
        add_mode(
            f"parallel-{count}",
            service.run_batch(
                queries, max_workers=count, use_cache=False,
                time_budget_seconds=time_budget_seconds,
            ),
        )
    warm = service.run_batch(
        queries, max_workers=1, use_cache=True,
        time_budget_seconds=time_budget_seconds,
    )
    add_mode("cache-warmup", warm)
    add_mode("cached", service.run_batch(queries, max_workers=1, use_cache=True))
    stats = service.cache_stats()
    report.add_note(
        f"result cache: {stats.hits} hits / {stats.misses} misses "
        f"(hit rate {stats.hit_rate:.0%}), indices warmed once: {service.index_stats}"
    )
    return report


# ----------------------------------------------------------------------
# Exp-10 (store + sharding; no paper analogue)
# ----------------------------------------------------------------------
def measure_boot_times(
    graph: TemporalGraph,
    snapshot_path: Optional[str] = None,
    rounds: int = 5,
) -> Dict[str, float]:
    """Best-of-``rounds`` cold-boot vs snapshot-boot wall-clock seconds.

    Both sides boot to the *same* warm state: the pre-sorted tuple edge
    backing, the distinct-timestamp set and every per-vertex view built
    (``TemporalEdge`` materialisation is uniformly lazy in both cases, so
    the comparison is apples-to-apples).  Cold boot pays per-edge sorted
    adjacency insertion plus the O(E log E) sort; snapshot boot reads the
    already-warm state back in O(read).  Shared by the exp10 driver and
    the benchmark asserts.
    """
    edges = list(graph.edge_tuples())
    vertices = list(graph.vertices())

    cleanup = snapshot_path is None
    if snapshot_path is None:
        handle, snapshot_path = tempfile.mkstemp(suffix=".tspgsnap")
        os.close(handle)
    store = SnapshotGraphStore(snapshot_path)
    try:
        store.save(graph)
        cold = snap = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            rebuilt = TemporalGraph(edges=edges, vertices=vertices)
            rebuilt.warm_indices()
            cold = min(cold, time.perf_counter() - started)
            started = time.perf_counter()
            loaded = store.load()
            loaded.warm_indices()
            snap = min(snap, time.perf_counter() - started)
        if not (loaded == graph):
            raise AssertionError("snapshot boot produced a different graph")
        return {"cold_boot_s": cold, "snapshot_boot_s": snap}
    finally:
        if cleanup and os.path.exists(snapshot_path):
            os.unlink(snapshot_path)


def exp10_store_and_shards(
    dataset_key: str = "D10",
    num_queries: int = DEFAULT_NUM_QUERIES,
    algorithm: str = "VUG",
    shard_counts: Sequence[int] = (2, 4),
    overlap: Optional[int] = None,
    snapshot_path: Optional[str] = None,
    time_budget_seconds: float = DEFAULT_TIME_BUDGET_SECONDS,
    seed: int = 7,
) -> ExperimentReport:
    """Exp-10: persistent snapshots and time-range sharding.

    Two comparisons on one dataset (D10 — the largest analogue — by
    default): **boot latency** of a cold index build vs a snapshot load, and
    **batch throughput** of the unsharded service vs a sharded router at
    each entry of ``shard_counts``, with a bit-identical cross-check of
    every sharded result against the unsharded baseline.
    """
    report = ExperimentReport(
        experiment=f"Exp-10 (store + shards, {dataset_key})",
        description=(
            f"Snapshot boot vs cold boot, and 1-shard vs N-shard batch "
            f"throughput for {num_queries} queries ({algorithm})"
        ),
    )
    graph = _load(dataset_key)
    spec = get_dataset(dataset_key)
    shard_overlap = overlap if overlap is not None else spec.default_theta

    boots = measure_boot_times(graph, snapshot_path=snapshot_path)
    speedup = (
        boots["cold_boot_s"] / boots["snapshot_boot_s"]
        if boots["snapshot_boot_s"] > 0
        else float("inf")
    )
    report.add_row(
        mode="cold-boot", wall_s=round(boots["cold_boot_s"], 4), qps=None,
        identical=None,
    )
    report.add_row(
        mode="snapshot-boot", wall_s=round(boots["snapshot_boot_s"], 4), qps=None,
        identical=None,
    )
    report.add_point("boot_s", "cold-boot", round(boots["cold_boot_s"], 4))
    report.add_point("boot_s", "snapshot-boot", round(boots["snapshot_boot_s"], 4))
    report.add_note(f"snapshot boot is {speedup:.1f}x faster than cold boot")

    workload = _workload(graph, dataset_key, num_queries, seed=seed)
    queries = list(workload)
    flat = TspgService(graph, default_algorithm=algorithm)
    baseline = flat.run_batch(
        queries, use_cache=False, time_budget_seconds=time_budget_seconds
    )
    report.add_row(
        mode="1-shard", wall_s=round(baseline.wall_seconds, 4),
        qps=round(baseline.queries_per_second, 1), identical=True,
    )
    report.add_point("qps", "1-shard", round(baseline.queries_per_second, 1))
    for count in shard_counts:
        if count <= 1:
            continue
        router = ShardedTspgService(
            graph, count, overlap=shard_overlap, default_algorithm=algorithm
        )
        sharded = router.run_batch(
            queries, max_workers=count, use_cache=False,
            time_budget_seconds=time_budget_seconds,
        )
        # Fidelity is judged only on pairs both regimes completed — a
        # budget skip is not a result mismatch (skips are reported below).
        compared = [
            (shard_item, base_item)
            for shard_item, base_item in zip(sharded.items, baseline.items)
            if shard_item.completed and base_item.completed
        ]
        identical = all(
            shard_item.outcome.result.vertices == base_item.outcome.result.vertices
            and shard_item.outcome.result.edges == base_item.outcome.result.edges
            for shard_item, base_item in compared
        )
        mode = f"{count}-shard"
        if len(compared) < len(queries):
            report.add_note(
                f"{mode}: {len(queries) - len(compared)} of {len(queries)} "
                f"pairs skipped by the time budget and excluded from the "
                f"fidelity check"
            )
        report.add_row(
            mode=mode, wall_s=round(sharded.wall_seconds, 4),
            qps=round(sharded.queries_per_second, 1), identical=identical,
        )
        report.add_point("qps", mode, round(sharded.queries_per_second, 1))
        report.add_note(
            f"{mode}: routed={dict(sorted(sharded.routed.items()))} "
            f"(fallback={sharded.num_fallback})"
        )
    return report


# ----------------------------------------------------------------------
# Exp-11 (zero-materialization view pipeline; no paper analogue)
# ----------------------------------------------------------------------
def measure_view_pipeline(
    graph: TemporalGraph,
    queries: Sequence,
    rounds: int = 3,
) -> Dict[str, object]:
    """Best-of-``rounds`` cold per-query VUG times: view vs materializing.

    Both engines run over the *same* warmed graph (indices and columnar
    view built up front, no result caching), so the measured difference is
    exactly the per-query hot path: edge-mask kernels versus per-phase
    ``TemporalGraph`` building.  Every query's results and phase edge
    counts are cross-checked during measurement — a mismatch raises instead
    of reporting a meaningless timing.  Shared by the exp11 driver and the
    benchmark asserts.
    """
    graph.warm_indices()
    view_engine = get_algorithm("VUG")
    materializing_engine = get_algorithm("VUG-materializing")
    best_view = best_materializing = float("inf")
    for _ in range(rounds):
        view_total = materializing_total = 0.0
        for query in queries:
            started = time.perf_counter()
            viewed = view_engine.run(graph, query.source, query.target, query.interval)
            view_total += time.perf_counter() - started
            started = time.perf_counter()
            reference = materializing_engine.run(
                graph, query.source, query.target, query.interval
            )
            materializing_total += time.perf_counter() - started
            if (
                viewed.result.vertices != reference.result.vertices
                or viewed.result.edges != reference.result.edges
                or viewed.extras["quick_ubg_edges"] != reference.extras["quick_ubg_edges"]
                or viewed.extras["tight_ubg_edges"] != reference.extras["tight_ubg_edges"]
            ):
                raise AssertionError(
                    f"view pipeline diverged from the materializing pipeline "
                    f"on {query!r}"
                )
        best_view = min(best_view, view_total)
        best_materializing = min(best_materializing, materializing_total)
    return {
        "view_s": best_view,
        "materializing_s": best_materializing,
        "speedup": best_materializing / best_view if best_view else float("inf"),
        "num_queries": len(queries),
    }


def exp11_view_pipeline(
    dataset_key: str = "D10",
    num_queries: int = 20,
    rounds: int = 3,
    seed: int = 7,
) -> ExperimentReport:
    """Exp-11: the zero-materialization query pipeline.

    Measures cold single-query VUG latency (no result cache, indices warm)
    through the edge-mask view pipeline against the retained pre-refactor
    materializing pipeline on one dataset, with the built-in bit-identity
    cross-check, and reports wall seconds, per-query latency and speedup.
    """
    report = ExperimentReport(
        experiment=f"Exp-11 (view pipeline, {dataset_key})",
        description=(
            f"Cold single-query VUG latency over {num_queries} queries: "
            f"frozen CSR views + interval-sliced kernels vs per-phase "
            f"TemporalGraph materialization"
        ),
    )
    graph = _load(dataset_key)
    queries = list(_workload(graph, dataset_key, num_queries, seed=seed))
    measured = measure_view_pipeline(graph, queries, rounds=rounds)
    for mode, seconds in (
        ("zero-materialization", measured["view_s"]),
        ("materializing", measured["materializing_s"]),
    ):
        report.add_row(
            mode=mode,
            wall_s=round(seconds, 4),
            per_query_ms=round(1000.0 * seconds / max(1, len(queries)), 3),
        )
        report.add_point("wall_s", mode, round(seconds, 4))
    report.add_note(
        f"view pipeline is {measured['speedup']:.2f}x faster; results and "
        f"phase edge counts bit-identical on all {len(queries)} queries"
    )
    return report


# ----------------------------------------------------------------------
# Exp-14 (vectorized numpy kernels; no paper analogue)
# ----------------------------------------------------------------------
def measure_kernel_backends(
    graph: TemporalGraph,
    queries: Sequence,
    rounds: int = 3,
) -> Dict[str, object]:
    """Best-of-``rounds`` cold per-query VUG times: python vs numpy kernels.

    Both engines are the same zero-materialization pipeline over the same
    warmed graph; the only difference is the kernel backend (``VUG`` runs
    the pure-Python kernels, ``VUG-vectorized`` the numpy ones).  Every
    query's results, phase edge counts and space cost are cross-checked
    during measurement — including one extra pass per backend under a
    generous active deadline, and one under an already-expired deadline —
    so a divergence raises instead of reporting a meaningless timing.
    Shared by the exp14 driver and the benchmark asserts.

    Besides end-to-end wall time, the per-query QuickUBG phase timings are
    accumulated separately: only phase 1 (polarity sweep + edge-mask scan)
    and EEV's adjacency grouping are vectorized, so the honest speedup
    floor is asserted on the kernel time, not on the whole pipeline.

    When numpy is not installed the vectorized engine silently runs the
    Python kernels; ``effective_backend`` reports which one actually ran so
    callers can skip speedup asserts instead of failing them.
    """
    from ..core.deadline import Deadline
    from ..core.kernels import numpy_available

    graph.warm_indices()
    engines = {
        "python": get_algorithm("VUG"),
        "numpy": get_algorithm("VUG-vectorized"),
    }
    best_total = {name: float("inf") for name in engines}
    best_quick = {name: float("inf") for name in engines}
    for _ in range(rounds):
        totals = {name: 0.0 for name in engines}
        quick_totals = {name: 0.0 for name in engines}
        for query in queries:
            outcomes = {}
            for name, engine in engines.items():
                started = time.perf_counter()
                outcome = engine.run(graph, query.source, query.target, query.interval)
                totals[name] += time.perf_counter() - started
                quick_totals[name] += outcome.extras["phase_timings"]["QuickUBG"]
                outcomes[name] = outcome
            reference, vectorized = outcomes["python"], outcomes["numpy"]
            if (
                vectorized.result.vertices != reference.result.vertices
                or vectorized.result.edges != reference.result.edges
                or vectorized.space_cost != reference.space_cost
                or vectorized.extras["quick_ubg_edges"] != reference.extras["quick_ubg_edges"]
                or vectorized.extras["tight_ubg_edges"] != reference.extras["tight_ubg_edges"]
            ):
                raise AssertionError(
                    f"vectorized kernels diverged from the Python kernels "
                    f"on {query!r}"
                )
        for name in engines:
            best_total[name] = min(best_total[name], totals[name])
            best_quick[name] = min(best_quick[name], quick_totals[name])
    # Deadline identity: an active-but-generous deadline must not change
    # any answer, and an already-expired one must cut both backends off to
    # the same empty timed_out result.
    for query in queries:
        live = {
            name: engine.run(
                graph, query.source, query.target, query.interval,
                deadline=Deadline.after(3600.0),
            )
            for name, engine in engines.items()
        }
        if (
            live["numpy"].result.edges != live["python"].result.edges
            or live["numpy"].timed_out
            or live["python"].timed_out
        ):
            raise AssertionError(
                f"backends diverged under an active deadline on {query!r}"
            )
        expired = {
            name: engine.run(
                graph, query.source, query.target, query.interval,
                deadline=Deadline.after(-1.0),
            )
            for name, engine in engines.items()
        }
        if not all(
            outcome.timed_out and outcome.result.num_edges == 0
            for outcome in expired.values()
        ):
            raise AssertionError(
                f"expired deadline did not cut both backends off on {query!r}"
            )
    return {
        "python_s": best_total["python"],
        "numpy_s": best_total["numpy"],
        "quick_python_s": best_quick["python"],
        "quick_numpy_s": best_quick["numpy"],
        "speedup": (
            best_total["python"] / best_total["numpy"]
            if best_total["numpy"]
            else float("inf")
        ),
        "kernel_speedup": (
            best_quick["python"] / best_quick["numpy"]
            if best_quick["numpy"]
            else float("inf")
        ),
        "effective_backend": (
            "numpy" if numpy_available() else "python"
        ),
        "num_queries": len(queries),
    }


def measure_quick_kernels(
    graph: TemporalGraph,
    queries: Sequence,
    rounds: int = 3,
) -> Dict[str, object]:
    """Best-of-``rounds`` timings of the QuickUBG *kernels* themselves.

    Unlike :func:`measure_kernel_backends` this calls the polarity sweep and
    the Lemma 1 edge-mask scan directly — no pipeline around them — so the
    numbers isolate exactly the code the numpy backend replaces.  The exp14
    benchmark asserts its speedup floor here, on a kernel-scale graph, where
    per-call dispatch overhead no longer dominates; the stock datasets are
    thousands of times smaller than the paper's and mostly measure overhead.

    Every query is cross-checked for bit-identity (tables element-wise, mask
    indices and vertex ids exactly) before any timing is trusted.  The
    one-time timestamp-group layout build is reported separately as
    ``layout_s`` — it is per-view, amortized across all queries, exactly as
    in production.  When numpy is unavailable the numpy fields are ``None``
    and ``effective_backend`` is ``"python"`` so callers can skip instead of
    fail.
    """
    from ..core.kernels import (
        numpy_available,
        polarity_id_arrays_numpy,
        quick_mask_numpy,
    )
    from ..core.polarity import compute_polarity_id_arrays
    from ..core.quick_ubg import quick_mask_kernel
    from ..graph.edge import as_interval

    graph.warm_indices()
    view = graph.view()
    windows = [as_interval(query.interval) for query in queries]
    result: Dict[str, object] = {
        "num_queries": len(queries),
        "effective_backend": "numpy" if numpy_available() else "python",
        "layout_s": None,
        "numpy_s": None,
        "kernel_speedup": None,
    }

    best_python = float("inf")
    for _ in range(rounds):
        elapsed = 0.0
        for query, window in zip(queries, windows):
            started = time.perf_counter()
            arrival, departure = compute_polarity_id_arrays(
                view, query.source, query.target, window
            )
            quick_mask_kernel(view, arrival, departure, window)
            elapsed += time.perf_counter() - started
        best_python = min(best_python, elapsed)
    result["python_s"] = best_python
    if not numpy_available():
        return result

    started = time.perf_counter()
    polarity_id_arrays_numpy(
        view, queries[0].source, queries[0].target, windows[0]
    )
    result["layout_s"] = time.perf_counter() - started
    for query, window in zip(queries, windows):
        reference_tables = compute_polarity_id_arrays(
            view, query.source, query.target, window
        )
        tables = polarity_id_arrays_numpy(
            view, query.source, query.target, window
        )
        if (
            list(tables[0]) != reference_tables[0]
            or list(tables[1]) != reference_tables[1]
        ):
            raise AssertionError(
                f"numpy polarity tables diverged on {query!r}"
            )
        reference_mask = quick_mask_kernel(view, *reference_tables, window)
        mask = quick_mask_numpy(view, *tables, window)
        if (
            mask.indices != reference_mask.indices
            or set(mask.vertices()) != set(reference_mask.vertices())
        ):
            raise AssertionError(f"numpy edge mask diverged on {query!r}")

    best_numpy = float("inf")
    for _ in range(rounds):
        elapsed = 0.0
        for query, window in zip(queries, windows):
            started = time.perf_counter()
            arrival, departure = polarity_id_arrays_numpy(
                view, query.source, query.target, window
            )
            quick_mask_numpy(view, arrival, departure, window)
            elapsed += time.perf_counter() - started
        best_numpy = min(best_numpy, elapsed)
    result["numpy_s"] = best_numpy
    result["kernel_speedup"] = (
        best_python / best_numpy if best_numpy else float("inf")
    )
    return result


def exp14_vectorized_kernels(
    dataset_key: str = "D10",
    num_queries: int = 20,
    rounds: int = 3,
    seed: int = 7,
) -> ExperimentReport:
    """Exp-14: the vectorized numpy kernel backend.

    Measures cold single-query VUG latency (no result cache, indices warm)
    with the Python kernels against the numpy kernels on one dataset, with
    the built-in bit-identity cross-check (deadlines on and off), and
    reports wall seconds plus the QuickUBG kernel time each backend spent.
    """
    report = ExperimentReport(
        experiment=f"Exp-14 (vectorized kernels, {dataset_key})",
        description=(
            f"Cold single-query VUG latency over {num_queries} queries: "
            f"pure-Python hot-path kernels vs the numpy polarity / "
            f"edge-mask / grouping kernels"
        ),
    )
    graph = _load(dataset_key)
    queries = list(_workload(graph, dataset_key, num_queries, seed=seed))
    measured = measure_kernel_backends(graph, queries, rounds=rounds)
    for mode, seconds, kernel_seconds in (
        ("python", measured["python_s"], measured["quick_python_s"]),
        ("numpy", measured["numpy_s"], measured["quick_numpy_s"]),
    ):
        report.add_row(
            mode=mode,
            wall_s=round(seconds, 4),
            quick_kernel_s=round(kernel_seconds, 4),
            per_query_ms=round(1000.0 * seconds / max(1, len(queries)), 3),
        )
        report.add_point("wall_s", mode, round(seconds, 4))
    if measured["effective_backend"] == "numpy":
        report.add_note(
            f"numpy kernels are {measured['kernel_speedup']:.2f}x faster on "
            f"the QuickUBG phase ({measured['speedup']:.2f}x end-to-end); "
            f"results bit-identical on all {len(queries)} queries, deadlines "
            f"on and off"
        )
    else:
        report.add_note(
            "numpy is not installed — the vectorized backend degraded to "
            "the Python kernels (identity still cross-checked)"
        )
    return report


# ----------------------------------------------------------------------
# Exp-12 (process-parallel sharded serving; no paper analogue)
# ----------------------------------------------------------------------
# Re-exported from the pool module (the canonical home since WorkerPool
# sizes itself with it); the benchmarks keep importing it from here.
from ..service.pool import available_cpus  # noqa: E402  (section grouping)


def exp12_process_shards(
    dataset_key: str = "D10",
    num_queries: int = DEFAULT_NUM_QUERIES,
    algorithm: str = "VUG",
    workers: int = 4,
    num_shards: int = 4,
    overlap: Optional[int] = None,
    shard_dir: Optional[str] = None,
    time_budget_seconds: float = DEFAULT_TIME_BUDGET_SECONDS,
    seed: int = 7,
) -> ExperimentReport:
    """Exp-12: process-parallel sharded serving from per-shard snapshots.

    One workload, three execution regimes over the same graph:

    * ``serial`` — the flat service, one thread;
    * ``threads-N`` — the sharded router fanning shard groups out over a
      thread pool (GIL-bound for the pure-Python hot path);
    * ``processes-N`` — a router booted with
      :meth:`~repro.service.ShardedTspgService.from_shard_snapshots` from
      the shard set written by :meth:`~repro.service.ShardedTspgService.save_shards`,
      fanning shard groups out over a ``ProcessPoolExecutor`` whose workers
      boot from their shard's snapshot file.

    Every regime's per-query results are cross-checked against the serial
    baseline (``identical`` column); the wall-clock ratio of the thread and
    process rows is the multi-core speedup the process backend exists for
    (meaningful only when more than one CPU is actually available — the
    note records the visible CPU count).
    """
    report = ExperimentReport(
        experiment=f"Exp-12 (process shards, {dataset_key})",
        description=(
            f"Thread vs snapshot-booted process batch backend for "
            f"{num_queries} queries ({algorithm}, {num_shards} shards, "
            f"{workers} workers)"
        ),
    )
    graph = _load(dataset_key)
    spec = get_dataset(dataset_key)
    shard_overlap = overlap if overlap is not None else spec.default_theta
    queries = list(_workload(graph, dataset_key, num_queries, seed=seed))

    cleanup = shard_dir is None
    if shard_dir is None:
        shard_dir = tempfile.mkdtemp(suffix=".tspgshards")
    try:
        router = ShardedTspgService(
            graph, num_shards, overlap=shard_overlap, default_algorithm=algorithm
        )
        manifest = router.save_shards(shard_dir)
        serial = TspgService(graph, default_algorithm=algorithm).run_batch(
            queries, use_cache=False, time_budget_seconds=time_budget_seconds
        )
        threaded = router.run_batch(
            queries, max_workers=workers, use_cache=False, executor="threads",
            time_budget_seconds=time_budget_seconds,
        )
        booted = ShardedTspgService.from_shard_snapshots(
            shard_dir, default_algorithm=algorithm
        )
        processed = booted.run_batch(
            queries, max_workers=workers, use_cache=False, executor="processes",
            time_budget_seconds=time_budget_seconds,
        )
    finally:
        if cleanup:
            shutil.rmtree(shard_dir, ignore_errors=True)

    def matches_serial(batch) -> bool:
        return all(
            item.completed
            and base.completed
            and item.outcome.result.vertices == base.outcome.result.vertices
            and item.outcome.result.edges == base.outcome.result.edges
            for item, base in zip(batch.items, serial.items)
        )

    for mode, batch, identical in (
        ("serial", serial, True),
        (f"threads-{workers}", threaded, matches_serial(threaded)),
        (f"processes-{workers}", processed, matches_serial(processed)),
    ):
        report.add_row(
            mode=mode,
            executor=batch.executor,
            wall_s=round(batch.wall_seconds, 4),
            qps=round(batch.queries_per_second, 1),
            identical=identical,
        )
        report.add_point("wall_s", mode, round(batch.wall_seconds, 4))
    speedup = (
        threaded.wall_seconds / processed.wall_seconds
        if processed.wall_seconds > 0
        else float("inf")
    )
    report.add_note(
        f"process backend is {speedup:.2f}x the thread backend "
        f"({available_cpus()} CPUs visible; the GIL keeps threads ≈ serial "
        f"on the pure-Python hot path)"
    )
    report.add_note(
        f"shard manifest: {manifest.num_shards} shards, overlap "
        f"{manifest.overlap}, epoch {manifest.epoch}, span {manifest.span}"
    )
    report.add_note(
        f"processes routed={dict(sorted(processed.routed.items()))} "
        f"(fallback={processed.num_fallback}, ran on the parent's threads)"
    )
    return report


# ----------------------------------------------------------------------
# Exp-13 (persistent serving pool + cooperative deadlines; no paper analogue)
# ----------------------------------------------------------------------
def exp13_serving_pool(
    dataset_key: str = "D10",
    num_queries: int = DEFAULT_NUM_QUERIES,
    algorithm: str = "VUG",
    workers: int = 4,
    num_batches: int = 2,
    snapshot_path: Optional[str] = None,
    time_budget_seconds: float = DEFAULT_TIME_BUDGET_SECONDS,
    seed: int = 7,
) -> ExperimentReport:
    """Exp-13: persistent serving pools and cooperative per-query deadlines.

    Two serving-loop regimes answer the *same* sequence of identical
    batches through the process backend, from the same snapshot:

    * ``per-batch-boot-K`` — a plain :class:`TspgService` builds (and tears
      down) a fresh ``ProcessPoolExecutor`` per batch, so every batch pays
      worker fork + snapshot boot again — the pre-pool behaviour;
    * ``pool-K`` — the same service with a persistent
      :class:`~repro.service.WorkerPool` attached: batch 1 boots the
      workers, every later batch reuses them warm.

    The ratio of the last per-batch-boot batch over the last pool batch is
    the amortisation the pool exists for.  A third regime, ``deadline-cutoff``,
    runs the workload serially under a deliberately too-small budget and
    reports the cut-off *overshoot* — how far past the budget the batch
    ran — which the cooperative per-query deadlines keep within the
    documented slack (one uninterruptible phase of a single query) instead
    of one whole in-flight query of arbitrary cost.

    Every regime's in-budget results are cross-checked against a serial
    no-deadline baseline (``identical`` column) — deadline polls are
    read-only, so finishing in budget must be bit-identical.
    """
    report = ExperimentReport(
        experiment=f"Exp-13 (serving pool, {dataset_key})",
        description=(
            f"Per-batch worker boot vs persistent pool, and deadline "
            f"cut-off promptness, for {num_batches}x{num_queries} queries "
            f"({algorithm}, {workers} workers)"
        ),
    )
    graph = _load(dataset_key)
    queries = list(_workload(graph, dataset_key, num_queries, seed=seed))

    cleanup = snapshot_path is None
    if snapshot_path is None:
        handle, snapshot_path = tempfile.mkstemp(suffix=".tspgsnap")
        os.close(handle)
    try:
        SnapshotGraphStore(snapshot_path).save(graph)
        serial = TspgService(graph, default_algorithm=algorithm).run_batch(
            queries, use_cache=False, time_budget_seconds=time_budget_seconds
        )

        def matches_serial(batch) -> bool:
            return all(
                item.completed
                and base.completed
                and not item.outcome.timed_out
                and item.outcome.result.vertices == base.outcome.result.vertices
                and item.outcome.result.edges == base.outcome.result.edges
                for item, base in zip(batch.items, serial.items)
            )

        def run_batches(service) -> List:
            # Caching is off: the point is measuring the compute path, and
            # a warm parent cache would short-circuit every repeat batch.
            return [
                service.run_batch(
                    queries, max_workers=workers, use_cache=False,
                    executor="processes",
                    time_budget_seconds=time_budget_seconds,
                )
                for _ in range(num_batches)
            ]

        cold_batches = run_batches(
            TspgService.from_snapshot(snapshot_path, default_algorithm=algorithm)
        )
        with WorkerPool(max_workers=workers) as pool:
            pool_batches = run_batches(
                TspgService.from_snapshot(
                    snapshot_path, default_algorithm=algorithm, pool=pool
                )
            )
            pool_stats = pool.stats()

        for prefix, batches in (
            ("per-batch-boot", cold_batches),
            ("pool", pool_batches),
        ):
            for index, batch in enumerate(batches, start=1):
                mode = f"{prefix}-{index}"
                report.add_row(
                    mode=mode,
                    executor=batch.executor,
                    wall_s=round(batch.wall_seconds, 4),
                    qps=round(batch.queries_per_second, 1),
                    identical=matches_serial(batch),
                    budget_s=None,
                    overshoot_s=None,
                )
                report.add_point("wall_s", mode, round(batch.wall_seconds, 4))

        warm_speedup = (
            cold_batches[-1].wall_seconds / pool_batches[-1].wall_seconds
            if pool_batches[-1].wall_seconds > 0
            else float("inf")
        )
        report.add_note(
            f"warm pool batch is {warm_speedup:.2f}x the per-batch-boot "
            f"batch (pool generation {pool_stats['generation']}, "
            f"{pool_stats['batches_served']} batches served by one worker "
            f"set; per-batch boot re-forks and re-boots every time)"
        )

        # Deadline promptness: a serial run under a budget that expires
        # mid-batch must land within one query's cut-off slack of it.
        budget = max(0.02, serial.wall_seconds / 3.0)
        cut = TspgService(graph, default_algorithm=algorithm).run_batch(
            queries, use_cache=False, time_budget_seconds=budget
        )
        overshoot = max(0.0, cut.wall_seconds - budget)
        refused = cut.num_timed_out + sum(1 for item in cut.items if item.skipped)
        report.add_row(
            mode="deadline-cutoff",
            executor=cut.executor,
            wall_s=round(cut.wall_seconds, 4),
            qps=round(cut.queries_per_second, 1),
            identical=None,
            budget_s=round(budget, 4),
            overshoot_s=round(overshoot, 4),
        )
        report.add_point("wall_s", "deadline-cutoff", round(cut.wall_seconds, 4))
        report.add_note(
            f"deadline-cutoff: budget {budget:.4f}s, finished "
            f"{overshoot:.4f}s past it with {refused} of {len(queries)} "
            f"queries refused/cut off (timed_out={cut.timed_out})"
        )
    finally:
        if cleanup and os.path.exists(snapshot_path):
            os.unlink(snapshot_path)
    return report


#: Registry used by the CLI ("run experiment by name").
# ----------------------------------------------------------------------
# Exp-15 (mmap-backed columnar snapshot boot; no paper analogue)
# ----------------------------------------------------------------------
def measure_mmap_boot_times(
    graph: TemporalGraph,
    v3_path: Optional[str] = None,
    v4_path: Optional[str] = None,
    rounds: int = 3,
) -> Dict[str, object]:
    """Best-of-``rounds`` wall-clock of the three snapshot boot flavours.

    Writes the same warmed graph as a legacy v3 snapshot and a v4 columnar
    snapshot, then times (a) the v3 eager boot (decompress + unpickle the
    whole payload), (b) the v4 eager boot (decode every section), and
    (c) the v4 mmap boot (map the file, decode only the metadata sections,
    leave every column extent untouched).  The mmap boot does no per-edge
    work at all, so its cost is O(metadata), not O(E) — the gap the exp15
    floor asserts.  Shared by the exp15 driver and the benchmark asserts.
    """
    cleanup = v3_path is None and v4_path is None
    tmp_dir = None
    if cleanup:
        tmp_dir = tempfile.mkdtemp(prefix="exp15-boot-")
        v3_path = os.path.join(tmp_dir, "graph.v3.tspgsnap")
        v4_path = os.path.join(tmp_dir, "graph.v4.tspgsnap")
    try:
        write_legacy_snapshot(graph, v3_path, version=3)
        info = save_snapshot(graph, v4_path)
        _, sections = inspect_snapshot(v4_path)
        column_bytes = sum(
            section.length for section in sections if section.name.startswith("view.")
        )
        timings = {"v3_eager_s": float("inf"), "v4_eager_s": float("inf"),
                   "v4_mmap_s": float("inf")}
        mmap_active = False
        for _ in range(rounds):
            started = time.perf_counter()
            boot_snapshot(v3_path)
            timings["v3_eager_s"] = min(
                timings["v3_eager_s"], time.perf_counter() - started
            )
            started = time.perf_counter()
            boot_snapshot(v4_path)
            timings["v4_eager_s"] = min(
                timings["v4_eager_s"], time.perf_counter() - started
            )
            started = time.perf_counter()
            boot = boot_snapshot(v4_path, mmap=True)
            timings["v4_mmap_s"] = min(
                timings["v4_mmap_s"], time.perf_counter() - started
            )
            mmap_active = boot.mmap_active
        return {
            **timings,
            "payload_bytes": info.payload_bytes,
            "column_bytes": column_bytes,
            "mmap_active": mmap_active,
        }
    finally:
        if cleanup and tmp_dir is not None:
            shutil.rmtree(tmp_dir, ignore_errors=True)


#: Subprocess probe used by :func:`measure_boot_rss`: boots a snapshot in a
#: *fresh* interpreter (so RSS reflects only that boot), reports resident
#: memory before the boot, after the boot, and after touching every column.
_RSS_PROBE = """
import json, sys
path, mode = sys.argv[1], sys.argv[2]
from repro.store import boot_snapshot
from repro.analysis.memory import rss_bytes
base = rss_bytes()
boot = boot_snapshot(path, mmap=(mode == "mmap"))
after_boot = rss_bytes()
view = boot.graph.view()
touched = 0
for column in (view.src, view.dst, view.ts):
    for value in column:
        touched += value
after_touch = rss_bytes()
print(json.dumps({
    "rss_base": base,
    "rss_boot": after_boot,
    "rss_touched": after_touch,
    "mmap_active": boot.mmap_active,
    "checksum": touched,
}))
"""


def measure_boot_rss(
    snapshot_path: str, *, mmap: bool
) -> Optional[Dict[str, object]]:
    """Resident-memory profile of booting ``snapshot_path`` in a subprocess.

    Returns ``None`` when the platform cannot report RSS (non-Linux without
    ``getrusage``) or the probe fails — exp15 skips its ceiling assertion
    then instead of failing on an unmeasurable box.
    """
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir if not existing else src_dir + os.pathsep + existing
    try:
        completed = subprocess.run(
            [sys.executable, "-c", _RSS_PROBE, snapshot_path,
             "mmap" if mmap else "eager"],
            capture_output=True, text=True, timeout=600, env=env,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    try:
        profile = json.loads(completed.stdout.strip().splitlines()[-1])
    except (ValueError, IndexError):
        return None
    if profile.get("rss_base") is None or profile.get("rss_boot") is None:
        return None
    return profile


def exp15_mmap_boot(
    dataset_key: str = "D1",
    num_queries: int = 12,
    scale_vertices: int = 20_000,
    scale_edges: int = 120_000,
    scale_timestamps: int = 2_000,
    rounds: int = 3,
    seed: int = 7,
) -> ExperimentReport:
    """Exp-15: the mmap-backed v4 columnar snapshot boot.

    Three legs on one report.  **Boot latency**: a synth-scale graph
    (streamed from the registry's scale generator) is snapshotted as both
    legacy v3 and columnar v4, and the v3-eager / v4-eager / v4-mmap boot
    wall-clocks are compared.  **Resident memory**: a fresh subprocess per
    flavour boots the v4 file and reports RSS before and after touching
    the columns — the mmap boot's resident growth stays far below the
    column payload until the touch.  **Fidelity**: on ``dataset_key``, the
    eager boot, the mmap boot and a shard-mapped router boot answer the
    same workload with bit-identical results.
    """
    report = ExperimentReport(
        experiment=f"Exp-15 (mmap boot, synth-scale + {dataset_key})",
        description=(
            f"v3-eager vs v4-eager vs v4-mmap snapshot boots of a "
            f"{scale_edges}-edge synth-scale graph, subprocess RSS "
            f"profiles, and tri-boot result identity on {dataset_key}"
        ),
    )
    spec = SYNTH_SCALE.scaled(
        num_vertices=scale_vertices,
        num_edges=scale_edges,
        num_timestamps=scale_timestamps,
    )
    scale_graph = spec.load()
    report.add_note(
        f"synth-scale: |V|={scale_graph.num_vertices} "
        f"|E|={scale_graph.num_edges} (streamed, duplicates collapsed)"
    )

    tmp_dir = tempfile.mkdtemp(prefix="exp15-")
    try:
        v3_path = os.path.join(tmp_dir, "scale.v3.tspgsnap")
        v4_path = os.path.join(tmp_dir, "scale.v4.tspgsnap")
        measured = measure_mmap_boot_times(
            scale_graph, v3_path, v4_path, rounds=rounds
        )
        for mode, key in (
            ("v3-eager-boot", "v3_eager_s"),
            ("v4-eager-boot", "v4_eager_s"),
            ("v4-mmap-boot", "v4_mmap_s"),
        ):
            report.add_row(mode=mode, wall_s=round(measured[key], 4))
            report.add_point("boot_s", mode, round(measured[key], 4))
        speedup = (
            measured["v3_eager_s"] / measured["v4_mmap_s"]
            if measured["v4_mmap_s"] > 0
            else float("inf")
        )
        report.add_note(
            f"mmap boot is {speedup:.1f}x faster than the v3 eager boot "
            f"({measured['payload_bytes']} payload bytes, "
            f"{measured['column_bytes']} of them column extents; "
            f"mmap_active={measured['mmap_active']})"
        )

        for mode in ("eager", "mmap"):
            profile = measure_boot_rss(v4_path, mmap=(mode == "mmap"))
            if profile is None:
                report.add_note(
                    f"rss({mode}): not measurable on this platform — skipped"
                )
                continue
            boot_growth = profile["rss_boot"] - profile["rss_base"]
            touch_growth = (
                profile["rss_touched"] - profile["rss_base"]
                if profile.get("rss_touched") is not None
                else None
            )
            fraction = (
                boot_growth / measured["column_bytes"]
                if measured["column_bytes"]
                else 0.0
            )
            report.add_row(
                mode=f"rss-{mode}-boot",
                rss_boot_mb=round(boot_growth / 1e6, 2),
                rss_touched_mb=(
                    None if touch_growth is None else round(touch_growth / 1e6, 2)
                ),
                column_payload_mb=round(measured["column_bytes"] / 1e6, 2),
            )
            report.add_note(
                f"rss({mode}): boot grows RSS by {boot_growth} bytes = "
                f"{fraction:.2f}x the column payload"
            )
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)

    graph = _load(dataset_key)
    queries = list(_workload(graph, dataset_key, num_queries, seed=seed))
    tmp_dir = tempfile.mkdtemp(prefix="exp15-identity-")
    try:
        snap_path = os.path.join(tmp_dir, "identity.tspgsnap")
        save_snapshot(graph, snap_path)
        eager = TspgService.from_snapshot(snap_path)
        mapped = TspgService.from_snapshot(snap_path, mmap=True)
        router = ShardedTspgService(graph, 2, default_algorithm="VUG")
        router.save_shards(os.path.join(tmp_dir, "shards"))
        shard_mapped = ShardedTspgService.from_shard_snapshots(
            os.path.join(tmp_dir, "shards"), mmap=True
        )
        baseline = eager.run_batch(queries, use_cache=False)
        identical = True
        for label, service in (
            ("mmap", mapped),
            ("shard-mmap", shard_mapped),
        ):
            contender = service.run_batch(queries, use_cache=False)
            same = all(
                base.outcome.result.vertices == other.outcome.result.vertices
                and base.outcome.result.edges == other.outcome.result.edges
                for base, other in zip(baseline.items, contender.items)
                if base.completed and other.completed
            )
            identical = identical and same
            report.add_row(
                mode=f"identity-{label}",
                identical=same,
                mmap_active=service.snapshot_mmap_active
                if hasattr(service, "snapshot_mmap_active")
                else None,
            )
        report.add_note(
            f"tri-boot identity on {dataset_key}: "
            f"{'bit-identical' if identical else 'MISMATCH'} over "
            f"{len(queries)} queries (eager vs mmap vs shard-mapped)"
        )
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)
    return report


#: Subprocess probe used by :func:`measure_residency_rss`: boots a v4
#: snapshot mmap-backed — whole-file or extent-local — in a fresh
#: interpreter, touches every mapped column row, and reports resident
#: memory growth alongside the boot's byte accounting.  The RSS baseline is
#: taken *after* the boot (interpreter, optional numpy import and the
#: label/adjacency structures are interval-independent); the touch growth
#: is what scales with the mapped row payload.
_RESIDENCY_PROBE = """
import json, sys
path, mode = sys.argv[1], sys.argv[2]
begin, end = int(sys.argv[3]), int(sys.argv[4])
from repro.store import boot_snapshot
from repro.analysis.memory import rss_bytes
interval = None if mode == "full" else (begin, end)
boot = boot_snapshot(path, mmap=True, interval=interval)
view = boot.graph.view()
base = rss_bytes()
touched = 0
for column in (view.src, view.dst, view.ts):
    for value in column:
        touched += value
after = rss_bytes()
print(json.dumps({
    "rss_base": base,
    "rss_touched": after,
    "mapped_column_bytes": boot.mapped_column_bytes,
    "total_column_bytes": boot.total_column_bytes,
    "row_range": boot.row_range,
    "num_edges": boot.graph.num_edges,
    "mmap_active": boot.mmap_active,
    "checksum": touched,
}))
"""


def measure_residency_rss(
    snapshot_path: str, *, mode: str, interval
) -> Optional[Dict[str, object]]:
    """Touch-phase RSS profile of a whole-file vs extent-local mmap boot.

    ``mode`` is ``"full"`` or ``"window"``; ``interval`` bounds the window
    mode's extent.  Returns ``None`` when RSS is unmeasurable or the probe
    fails, mirroring :func:`measure_boot_rss`.
    """
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir if not existing else src_dir + os.pathsep + existing
    begin, end = interval
    try:
        completed = subprocess.run(
            [sys.executable, "-c", _RESIDENCY_PROBE, snapshot_path, mode,
             str(begin), str(end)],
            capture_output=True, text=True, timeout=600, env=env,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    try:
        profile = json.loads(completed.stdout.strip().splitlines()[-1])
    except (ValueError, IndexError):
        return None
    if profile.get("rss_base") is None or profile.get("rss_touched") is None:
        return None
    return profile


def _clear_layout_cache(view) -> None:
    """Drop any cached window layouts so a timing run rebuilds from scratch."""
    from ..core.kernels import _LAYOUT_KEY

    view._kernel_scratch.pop(_LAYOUT_KEY, None)


def exp16_query_residency(
    dataset_key: str = "D1",
    num_queries: int = 10,
    scale_vertices: int = 20_000,
    scale_edges: int = 120_000,
    scale_timestamps: int = 2_000,
    rounds: int = 3,
    window_fraction: float = 0.05,
    seed: int = 7,
) -> ExperimentReport:
    """Exp-16: query-time residency of the window-local serving stack.

    Four legs on one report.  **Layout wall-clock**: on a synth-scale
    graph, building the timestamp-group kernel layout for a narrow window
    (``window_fraction`` of the span) is timed against building it for the
    full view — the window-local rebuild touches only the window's rows.
    **Resident memory**: a fresh subprocess per mode boots the snapshot
    mmap-backed (whole-file vs extent-local) and touches every mapped
    column row; the extent boot's touch growth tracks the *interval's* row
    payload, not the file's.  **Page advice**: a
    :class:`~repro.store.ResidencyPolicy` is driven through its
    warm/serve/evict phases over the mapped boot and its counters are
    reported (a graceful no-op where madvise is unavailable).
    **Fidelity**: on ``dataset_key``, every registered algorithm answers a
    window-restricted workload on the eager, whole-file-mmap and
    extent-local boots — with and without a (generous) per-query deadline
    — and the results must be bit-identical across all six paths.
    """
    from ..core.deadline import Deadline
    from ..core.kernels import _ts_group_layout, numpy_or_none
    from ..algorithms import available_algorithms
    from ..store import ResidencyPolicy

    report = ExperimentReport(
        experiment=f"Exp-16 (query residency, synth-scale + {dataset_key})",
        description=(
            f"window-local kernel layouts, extent-local mmap boots and "
            f"madvise page advice on a {scale_edges}-edge synth-scale "
            f"graph, plus registry-wide tri-boot identity on {dataset_key}"
        ),
    )
    spec = SYNTH_SCALE.scaled(
        num_vertices=scale_vertices,
        num_edges=scale_edges,
        num_timestamps=scale_timestamps,
    )
    scale_graph = spec.load()
    timestamps = scale_graph.timestamps()
    span_lo, span_hi = timestamps[0], timestamps[-1]
    width = max(1, int((span_hi - span_lo) * window_fraction))
    mid = (span_lo + span_hi) // 2
    window = (mid, min(span_hi, mid + width))
    report.add_note(
        f"synth-scale: |V|={scale_graph.num_vertices} "
        f"|E|={scale_graph.num_edges} span=({span_lo}, {span_hi}); "
        f"narrow window {window} "
        f"(~{window_fraction:.0%} of the span)"
    )

    # Leg 1: window-local vs full-view layout build wall-clock.
    if numpy_or_none() is None:
        report.add_note("layout timing: numpy unavailable — skipped")
        layout_speedup = None
    else:
        view = scale_graph.view()
        timings = {"full": float("inf"), "window": float("inf")}
        for _ in range(max(1, rounds)):
            for mode, bounds in (("full", (span_lo, span_hi)), ("window", window)):
                _clear_layout_cache(view)
                started = time.perf_counter()
                _ts_group_layout(view, bounds)
                timings[mode] = min(timings[mode], time.perf_counter() - started)
        layout_speedup = (
            timings["full"] / timings["window"]
            if timings["window"] > 0
            else float("inf")
        )
        for mode in ("full", "window"):
            report.add_row(mode=f"layout-{mode}", wall_s=round(timings[mode], 5))
            report.add_point("layout_s", mode, round(timings[mode], 5))
        report.add_note(
            f"window-local layout build is {layout_speedup:.1f}x faster "
            f"than the full-view build for the narrow window"
        )

    # Legs 2 + 3: extent-local RSS ceiling and the page-advice policy.
    tmp_dir = tempfile.mkdtemp(prefix="exp16-")
    try:
        snap_path = os.path.join(tmp_dir, "scale.tspgsnap")
        save_snapshot(scale_graph, snap_path)
        profiles: Dict[str, Dict[str, object]] = {}
        for mode in ("full", "window"):
            profile = measure_residency_rss(
                snap_path, mode=mode, interval=window
            )
            if profile is None:
                report.add_note(
                    f"rss({mode}): not measurable on this platform — skipped"
                )
                continue
            profiles[mode] = profile
            growth = profile["rss_touched"] - profile["rss_base"]
            report.add_row(
                mode=f"rss-{mode}",
                touch_growth_mb=round(growth / 1e6, 2),
                mapped_mb=round(profile["mapped_column_bytes"] / 1e6, 2),
                total_mb=round(profile["total_column_bytes"] / 1e6, 2),
                rows=profile["num_edges"],
            )
        if "full" in profiles and "window" in profiles:
            report.add_note(
                f"extent-local boot maps "
                f"{profiles['window']['mapped_column_bytes']} of "
                f"{profiles['window']['total_column_bytes']} column bytes "
                f"(rows {profiles['window']['row_range']}); touch growth "
                f"{profiles['window']['rss_touched'] - profiles['window']['rss_base']} "
                f"vs {profiles['full']['rss_touched'] - profiles['full']['rss_base']} "
                f"bytes for the whole file"
            )

        policy = ResidencyPolicy()
        boot = boot_snapshot(
            snap_path, mmap=True, interval=window, residency=policy
        )
        policy.advise_warm()
        policy.advise_serve()
        evicted = policy.evict_cold()
        stats = policy.stats()
        report.add_row(
            mode="page-advice",
            supported=stats["supported"],
            mapped_bytes=stats["mapped_bytes"],
            advised_bytes=stats["advised_bytes"],
            evicted_bytes=evicted,
            errors=stats["errors"],
        )
        report.add_note(
            "page advice: "
            + (
                f"warm+serve+evict advised {stats['advised_bytes']} bytes "
                f"over {stats['mappings']} mappings"
                if stats["supported"]
                else f"no-op — {stats['unsupported_reason']}"
            )
            + f"; extent boot decoded {boot.graph.num_edges} rows"
        )
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)

    # Leg 4: registry-wide tri-path identity, deadlines off and on.
    graph = _load(dataset_key)
    dataset_ts = graph.timestamps()
    restrict_lo = dataset_ts[0]
    restrict_hi = dataset_ts[(len(dataset_ts) * 3) // 5]
    restriction = (restrict_lo, restrict_hi)
    tmp_dir = tempfile.mkdtemp(prefix="exp16-identity-")
    try:
        snap_path = os.path.join(tmp_dir, "identity.tspgsnap")
        save_snapshot(graph, snap_path)
        eager = boot_snapshot(snap_path).graph
        whole = boot_snapshot(snap_path, mmap=True).graph
        extent = boot_snapshot(snap_path, mmap=True, interval=restriction).graph
        # Sampling the workload from the extent graph keeps every query
        # interval inside the restriction, so all three boots hold every
        # edge the query can use.
        queries = list(
            _workload(extent, dataset_key, num_queries, seed=seed)
        )
        all_identical = True
        for name in available_algorithms():
            algorithm = get_algorithm(name)
            identical = True
            runs = 0
            for query in queries:
                outcomes = []
                for contender in (eager, whole, extent):
                    for deadline in (None, Deadline.after(60.0)):
                        outcome = algorithm.run(
                            contender,
                            query.source,
                            query.target,
                            query.interval,
                            deadline=deadline,
                        )
                        outcomes.append(outcome)
                        runs += 1
                reference = outcomes[0]
                identical = identical and all(
                    other.result.vertices == reference.result.vertices
                    and other.result.edges == reference.result.edges
                    and not other.timed_out
                    for other in outcomes
                )
            all_identical = all_identical and identical
            report.add_row(
                mode=f"identity-{name}", identical=identical, runs=runs
            )
        report.add_note(
            f"tri-path identity on {dataset_key} (restriction "
            f"{restriction}): "
            f"{'bit-identical' if all_identical else 'MISMATCH'} across "
            f"eager / whole-file mmap / extent-local mmap, deadlines off "
            f"and on, for every registered algorithm"
        )
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)
    return report


def _exp17_fresh_vertex(pool, ordinal):
    # New-vertex rows exercise the endpoint leg of delta invalidation; the
    # label kind must match the pool so edge-sort keys compare.
    if pool and isinstance(pool[0], int):
        return max(pool) + 1000 + ordinal
    return f"live-{ordinal}"


def _exp17_batches(
    graph, count, size, rng, *, in_span_half: bool
) -> List[List[Tuple]]:
    """``count`` disjoint ingest batches of rows absent from ``graph``.

    Every batch strictly grows the graph (so each ingest advances the
    epoch by exactly one).  With ``in_span_half`` each batch mixes in-span
    rows (which intersect live query windows and force selective
    invalidation) with rows beyond the span; otherwise all rows land
    strictly beyond the span in ascending timestamp order — an append-only
    delta by construction.
    """
    pool = list(graph.vertices())
    span = graph.time_interval()
    used = set(graph.edge_tuples())
    next_ts = (span.end if span is not None else 0) + 1
    ordinal = 0
    batches: List[List[Tuple]] = []
    for _ in range(count):
        batch: List[Tuple] = []
        while len(batch) < size:
            in_span = in_span_half and len(batch) % 2 == 0
            if in_span:
                u = pool[rng.randrange(len(pool))]
                v = pool[rng.randrange(len(pool))]
                t = rng.randint(span.begin, span.end)
            else:
                if in_span_half and len(batch) % 4 == 3:
                    u = _exp17_fresh_vertex(pool, ordinal)
                    ordinal += 1
                else:
                    u = pool[rng.randrange(len(pool))]
                v = pool[rng.randrange(len(pool))]
                t = next_ts
                next_ts += 1
            if u == v:
                continue
            key = (u, v, t)
            if key in used:
                continue
            used.add(key)
            batch.append(key)
        batches.append(batch)
    return batches


def exp17_live_ingest(
    dataset_key: str = "D1",
    num_queries: int = 8,
    scale_vertices: int = 20_000,
    scale_edges: int = 120_000,
    scale_timestamps: int = 2_000,
    batch_size: int = 24,
    num_batches: int = 5,
    num_queriers: int = 2,
    querier_passes: int = 3,
    rounds: int = 3,
    seed: int = 7,
) -> ExperimentReport:
    """Exp-17: live ingest while serving — the identity oracle.

    Four legs on one report.  **Append vs re-warm wall-clock**: on a
    synth-scale graph with a warm view, a :meth:`TemporalGraph.append_edges`
    delta (which extends the sorted backing and the cached view in place)
    is timed against the legacy path — :meth:`add_edges` +
    :meth:`warm_indices` + a full view rebuild — for the same batch; both
    end states must answer identically.  **Flat oracle**: a snapshot-booted
    :class:`TspgService` serves a query workload from ``num_queriers``
    threads while an appender thread ingests ``num_batches`` journaled
    batches; every answer, stamped with the graph epoch observed around the
    query, must be bit-identical to a serial replay of the first *k*
    batches for some *k* consistent with its stamp — and a fresh boot of
    the snapshot replays the journal to the final state.  **Mmap append**:
    the same service booted zero-copy ingests an append-only batch without
    hydrating the mapped columns, and still answers identically to an
    eager re-boot.  **Generation swap**: a sharded router booted from shard
    snapshots ingests, then re-warms to generation N+1 on a background
    thread while queriers keep asking; each stamped answer must match the
    pre- or post-ingest reference its epoch selects, and the swap clears
    the set-level journal.
    """
    import random
    import threading

    report = ExperimentReport(
        experiment=f"Exp-17 (live ingest, synth-scale + {dataset_key})",
        description=(
            f"journaled appends + delta view extension vs full re-warm on "
            f"a {scale_edges}-edge synth-scale graph, plus ingest-while-"
            f"querying identity oracles over flat, mmap-booted and sharded "
            f"generation-swap serving of {dataset_key}"
        ),
    )
    algorithm = get_algorithm("VUG")

    def _answer(contender, query):
        outcome = algorithm.run(
            contender, query.source, query.target, query.interval
        )
        return (
            frozenset(outcome.result.vertices),
            frozenset(outcome.result.edges),
        )

    # Leg 1: journaled-append + delta view extension vs full re-warm.
    spec = SYNTH_SCALE.scaled(
        num_vertices=scale_vertices,
        num_edges=scale_edges,
        num_timestamps=scale_timestamps,
    )
    scale_graph = spec.load()
    scale_graph.warm_indices()
    rng = random.Random(seed)
    # Append-only rows: the delta path's zero-copy view extension; mixed
    # (in-span) rows would degrade the extension to a rebuild and measure
    # the fallback instead of the feature.
    (scale_rows,) = _exp17_batches(
        scale_graph, 1, batch_size, rng, in_span_half=False
    )
    timings = {"delta": float("inf"), "rewarm": float("inf")}
    for _ in range(max(1, rounds)):
        delta_graph = scale_graph.copy()
        delta_graph.view()
        started = time.perf_counter()
        delta_graph.append_edges(scale_rows)
        delta_graph.view()
        timings["delta"] = min(timings["delta"], time.perf_counter() - started)
        legacy_graph = scale_graph.copy()
        legacy_graph.view()
        started = time.perf_counter()
        legacy_graph.add_edges(scale_rows)
        legacy_graph.warm_indices()
        legacy_graph.view()
        timings["rewarm"] = min(
            timings["rewarm"], time.perf_counter() - started
        )
    scale_query = next(iter(_workload(scale_graph, dataset_key, 1, seed=seed)))
    paths_identical = (
        delta_graph.num_edges == legacy_graph.num_edges
        and _answer(delta_graph, scale_query)
        == _answer(legacy_graph, scale_query)
    )
    append_speedup = (
        timings["rewarm"] / timings["delta"]
        if timings["delta"] > 0
        else float("inf")
    )
    for mode in ("delta", "rewarm"):
        report.add_row(
            mode=f"append-{mode}",
            wall_s=round(timings[mode], 5),
            rows=len(scale_rows),
        )
        report.add_point("append_s", mode, round(timings[mode], 5))
    report.add_note(
        f"appending {len(scale_rows)} rows via append_edges + view "
        f"extension is {append_speedup:.1f}x cheaper than "
        f"add_edges + warm_indices + view rebuild "
        f"({'identical end states' if paths_identical else 'END STATES DIVERGE'})"
    )

    # Leg 2: flat ingest-while-querying oracle.
    graph = _load(dataset_key)
    queries = list(_workload(graph, dataset_key, num_queries, seed=seed))
    batches = _exp17_batches(
        graph, num_batches, batch_size, random.Random(seed + 1),
        in_span_half=True,
    )
    tmp_dir = tempfile.mkdtemp(prefix="exp17-")
    try:
        flat_snap = os.path.join(tmp_dir, "flat.tspgsnap")
        save_snapshot(graph, flat_snap)
        service = TspgService.from_snapshot(flat_snap)
        base_epoch = service.graph.epoch
        records: List[Tuple[int, int, int, Tuple]] = []
        records_lock = threading.Lock()
        failures: List[BaseException] = []
        ingest_done = threading.Event()
        ingest_wall = [0.0]

        def _appender() -> None:
            try:
                started = time.perf_counter()
                for batch in batches:
                    service.ingest(batch)
                    time.sleep(0.002)  # let queriers interleave
                ingest_wall[0] = time.perf_counter() - started
            except BaseException as exc:  # surfaced after join
                failures.append(exc)
            finally:
                ingest_done.set()

        def _querier() -> None:
            try:
                passes = 0
                while passes < querier_passes or not ingest_done.is_set():
                    for index, query in enumerate(queries):
                        before = service.graph.epoch
                        outcome = service.submit(query)
                        after = service.graph.epoch
                        answer = (
                            frozenset(outcome.result.vertices),
                            frozenset(outcome.result.edges),
                        )
                        with records_lock:
                            records.append((index, before, after, answer))
                    passes += 1
                    if passes > 50 * querier_passes:  # safety valve
                        break
            except BaseException as exc:
                failures.append(exc)

        threads = [threading.Thread(target=_appender)]
        threads += [
            threading.Thread(target=_querier) for _ in range(num_queriers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]

        # Serial-replay reference: the base state plus the first k batches.
        # (The service journaled its ingests onto flat_snap, so a fresh
        # boot of the file already replays every batch — the k-prefix
        # states must come from an in-memory copy of the base instead.)
        replays: List[TemporalGraph] = [graph.copy()]
        for batch in batches:
            nxt = replays[-1].copy()
            nxt.append_edges(batch)
            replays.append(nxt)
        replay_answers: Dict[Tuple[int, int], Tuple] = {}

        def _replay_answer(k: int, index: int) -> Tuple:
            key = (k, index)
            if key not in replay_answers:
                replay_answers[key] = _answer(replays[k], queries[index])
            return replay_answers[key]

        oracle_ok = True
        for index, before, after, answer in records:
            lo = max(0, min(before - base_epoch, num_batches))
            hi = max(0, min(after - base_epoch, num_batches))
            if not any(
                _replay_answer(k, index) == answer for k in range(lo, hi + 1)
            ):
                oracle_ok = False
                break
        appended_rows = sum(len(batch) for batch in batches)
        throughput = (
            appended_rows / ingest_wall[0] if ingest_wall[0] > 0 else 0.0
        )
        # Journal fidelity: a fresh boot replays the sidecar to the final
        # state and answers exactly like the full serial replay.
        reboot = TspgService.from_snapshot(flat_snap)
        reboot_ok = reboot.graph.epoch == base_epoch + num_batches and all(
            _answer(reboot.graph, query) == _replay_answer(num_batches, index)
            for index, query in enumerate(queries)
        )
        report.add_row(
            mode="flat-oracle",
            answers=len(records),
            identical=oracle_ok,
            reboot_identical=reboot_ok,
            rows_per_s=round(throughput, 1),
        )
        report.add_point("ingest_rows_per_s", "flat", round(throughput, 1))
        report.add_note(
            f"flat oracle: {len(records)} concurrent answers over "
            f"{num_batches} journaled batches "
            f"({'bit-identical to their stamped serial replays' if oracle_ok else 'MISMATCH'}); "
            f"fresh boot replays the journal to epoch "
            f"{reboot.graph.epoch} "
            f"({'identical' if reboot_ok else 'MISMATCH'})"
        )

        # Leg 3: mmap-booted append stays lazy.
        lazy_snap = os.path.join(tmp_dir, "lazy.tspgsnap")
        save_snapshot(graph, lazy_snap)
        lazy_service = TspgService.from_snapshot(lazy_snap, mmap=True)
        mmap_active = lazy_service.graph.is_lazily_booted
        (append_only_batch,) = _exp17_batches(
            graph, 1, batch_size, random.Random(seed + 2),
            in_span_half=False,
        )
        lazy_service.ingest(append_only_batch)
        stayed_lazy = (
            lazy_service.graph.is_lazily_booted
            and lazy_service.graph._out_data is None
        )
        lazy_reference = boot_snapshot(lazy_snap).graph  # replays journal
        lazy_identical = all(
            (
                frozenset(lazy_service.submit(query).result.vertices),
                frozenset(lazy_service.submit(query).result.edges),
            )
            == _answer(lazy_reference, query)
            for query in queries
        )
        report.add_row(
            mode="mmap-append",
            mmap=mmap_active,
            stayed_lazy=stayed_lazy if mmap_active else None,
            identical=lazy_identical,
            rows=len(append_only_batch),
        )
        report.add_note(
            "mmap append: "
            + (
                (
                    "append-only ingest left the mapped columns unhydrated"
                    if stayed_lazy
                    else "ingest HYDRATED the mapped columns"
                )
                if mmap_active
                else "zero-copy boot unavailable (eager fallback)"
            )
            + f"; answers vs eager journal replay "
            f"{'identical' if lazy_identical else 'MISMATCH'}"
        )

        # Leg 4: sharded generation swap under concurrent queriers.
        shard_dir = os.path.join(tmp_dir, "shards")
        ShardedTspgService(graph, 3, default_algorithm="VUG").save_shards(
            shard_dir
        )
        router = ShardedTspgService.from_shard_snapshots(shard_dir, mmap=True)
        shard_epoch = router._current_topology().epoch
        (shard_batch,) = _exp17_batches(
            graph, 1, batch_size, random.Random(seed + 3), in_span_half=True
        )
        post_reference = graph.copy()
        post_reference.append_edges(shard_batch)
        pre_answers = [_answer(graph, query) for query in queries]
        post_answers = [_answer(post_reference, query) for query in queries]
        shard_records: List[Tuple[int, int, int, Tuple]] = []
        shard_failures: List[BaseException] = []
        stop = threading.Event()

        def _shard_querier() -> None:
            try:
                while not stop.is_set():
                    for index, query in enumerate(queries):
                        before = router._current_topology().epoch
                        outcome = router.submit(query)
                        after = router._current_topology().epoch
                        answer = (
                            frozenset(outcome.result.vertices),
                            frozenset(outcome.result.edges),
                        )
                        with records_lock:
                            shard_records.append(
                                (index, before, after, answer)
                            )
            except BaseException as exc:
                shard_failures.append(exc)

        shard_threads = [
            threading.Thread(target=_shard_querier)
            for _ in range(num_queriers)
        ]
        for thread in shard_threads:
            thread.start()
        time.sleep(0.01)
        router.ingest(shard_batch)
        rewarm_thread = router.rewarm_shards(background=True)
        rewarm_thread.join()
        time.sleep(0.01)
        stop.set()
        for thread in shard_threads:
            thread.join()
        if shard_failures:
            raise shard_failures[0]
        swap_ok = True
        for index, before, after, answer in shard_records:
            allowed = []
            if before <= shard_epoch:
                allowed.append(pre_answers[index])
            if after >= shard_epoch + 1:
                allowed.append(post_answers[index])
            if answer not in allowed:
                swap_ok = False
                break
        journal_cleared = not os.path.exists(
            os.path.join(shard_dir, "ingest.tspgjournal")
        )
        regen = ShardedTspgService.from_shard_snapshots(shard_dir)
        regen_ok = all(
            (
                frozenset(regen.submit(query).result.vertices),
                frozenset(regen.submit(query).result.edges),
            )
            == post_answers[index]
            for index, query in enumerate(queries)
        )
        report.add_row(
            mode="sharded-swap",
            answers=len(shard_records),
            identical=swap_ok,
            journal_cleared=journal_cleared,
            regen_identical=regen_ok,
        )
        report.add_note(
            f"generation swap: {len(shard_records)} concurrent answers "
            f"across ingest + background re-warm "
            f"({'each matches the reference its epoch stamp selects' if swap_ok else 'MISMATCH'}); "
            f"set journal {'cleared' if journal_cleared else 'STILL PRESENT'} "
            f"after the swap; generation N+1 boots "
            f"{'identical to the post-ingest reference' if regen_ok else 'MISMATCHED'}"
        )
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)
    return report


def _exp18_zipf_schedule(count, population, rng, s: float = 1.1) -> List[int]:
    """``count`` query indices drawn from a zipf(s) repeat mix.

    Rank 0 is the hottest query: real serving traffic repeats a few
    queries far more often than the tail, which is exactly the shape the
    result cache (and the fairness scheduler under bursty clients) must
    be exercised with.
    """
    weights = [1.0 / float(rank + 1) ** s for rank in range(population)]
    return rng.choices(range(population), weights=weights, k=count)


def _exp18_wire_answer(graph, algorithm_key: str, query) -> Dict[str, object]:
    """The exact JSON payload the server must put on the wire for ``query``.

    Mirrors the server's ``include_edges`` contract: edges sorted by
    ``(t, str(u), str(v))`` and emitted as 3-lists, so a JSON round-trip
    of a served answer compares bit-identically against this reference.
    """
    outcome = get_algorithm(algorithm_key).run(
        graph, query.source, query.target, query.interval
    )
    return {
        "num_vertices": outcome.result.num_vertices,
        "num_edges": outcome.result.num_edges,
        "edges": [
            [u, v, t]
            for u, v, t in sorted(
                outcome.result.edges,
                key=lambda item: (item[2], str(item[0]), str(item[1])),
            )
        ],
    }


def _exp18_query_request(query, **extra) -> Dict[str, object]:
    request = {
        "source": query.source,
        "target": query.target,
        "begin": query.interval.begin,
        "end": query.interval.end,
    }
    request.update(extra)
    return request


def _exp18_replay(
    address,
    requests: Sequence[dict],
    *,
    num_clients: int,
    requests_per_client: int,
    burst: int,
    zipf_s: float,
    seed: int,
):
    """Replay a zipfian mix of ``requests`` from ``num_clients`` sockets.

    Each client alternates lockstep singles with pipelined bursts of
    ``burst`` requests (the burst phases), and times every response from
    the moment its phase hit the wire — the latency a real client would
    observe, queue wait and head-of-line blocking included.  Returns
    ``(records, wall_s)`` where each record is
    ``(request_index, client_latency_ms, response)``.
    """
    import random
    import threading

    records: List[Tuple[int, float, dict]] = []
    records_lock = threading.Lock()
    failures: List[BaseException] = []
    barrier = threading.Barrier(num_clients)

    def _client(ordinal: int) -> None:
        rng = random.Random(seed * 1009 + ordinal)
        schedule = _exp18_zipf_schedule(
            requests_per_client, len(requests), rng, zipf_s
        )
        client = TspgClient(address, timeout=120.0)
        try:
            barrier.wait(timeout=30)
            position = 0
            phase = 0
            while position < len(schedule):
                width = burst if (burst > 1 and phase % 2 == 1) else 1
                chunk = schedule[position : position + width]
                position += len(chunk)
                phase += 1
                started = time.perf_counter()
                for index in chunk:
                    client.send(requests[index])
                for index in chunk:
                    response = client.recv()
                    latency = (time.perf_counter() - started) * 1000.0
                    with records_lock:
                        records.append((index, latency, response))
            client.quit()
        except BaseException as exc:  # surfaced after join
            failures.append(exc)
        finally:
            client.close()

    threads = [
        threading.Thread(target=_client, args=(ordinal,))
        for ordinal in range(num_clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if failures:
        raise failures[0]
    return records, wall


def _exp18_quantile_ms(latencies: Sequence[float], q: float) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered)) - (q >= 1.0)))
    return ordered[index]


def exp18_serving_tier(
    dataset_key: str = "D1",
    num_queries: int = 12,
    num_clients: int = 8,
    requests_per_client: int = 40,
    burst: int = 8,
    zipf_s: float = 1.1,
    workers: int = 2,
    registry_queries: int = 4,
    flood: int = 48,
    deadline_ms: Optional[float] = None,
    slack_ms: float = 250.0,
    seed: int = 7,
) -> ExperimentReport:
    """Exp-18: the TCP serving tier under concurrent traffic replay.

    Three legs on one report, all against live sockets.  **Sustained
    replay**: ``num_clients`` concurrent clients replay a zipfian repeat
    mix over the workload, alternating lockstep singles with pipelined
    bursts; every request carries ``include_edges`` so each served answer
    is compared bit-for-bit (wire format included) against a serial
    evaluation of the same query — while the leg records aggregate QPS
    and client-observed p50/p99.  **Registry identity**: every registered
    algorithm answers a query slice through the socket and must match its
    own serial run exactly.  **Saturated refusal**: a fresh single-worker
    server is flooded with one pipelined window of distinct queries whose
    shared ``deadline_ms`` is a fraction of the window's measured serial
    cost — admission control must refuse the tail *before* running it,
    and no admitted query may overshoot the deadline by more than
    ``slack_ms`` (the cooperative-checkpoint granularity).
    """
    import random

    report = ExperimentReport(
        experiment=f"Exp-18 (serving tier, {dataset_key})",
        description=(
            f"{num_clients} concurrent JSONL clients replaying zipf({zipf_s}) "
            f"traffic with pipelined bursts of {burst} against a "
            f"{workers}-worker TCP server, plus a registry-wide identity "
            f"sweep and a saturated refuse-before-work leg"
        ),
    )
    graph = _load(dataset_key)
    graph.warm_indices()
    queries = list(_workload(graph, dataset_key, num_queries, seed=seed))
    requests = [
        _exp18_query_request(query, include_edges=True) for query in queries
    ]
    references = [
        _exp18_wire_answer(graph, "VUG", query) for query in queries
    ]

    def _matches(response: dict, reference: Dict[str, object]) -> bool:
        return bool(
            response.get("ok")
            and not response.get("refused")
            and response.get("num_vertices") == reference["num_vertices"]
            and response.get("num_edges") == reference["num_edges"]
            and response.get("edges") == reference["edges"]
        )

    # Leg 1: sustained concurrent replay with per-answer identity.
    service = TspgService(graph, default_algorithm="VUG")
    core = RequestCore(service, default_workers=workers)
    with ServerThread(core, workers=workers) as harness:
        records, wall = _exp18_replay(
            harness.address,
            requests,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            burst=burst,
            zipf_s=zipf_s,
            seed=seed,
        )
        latencies = [latency for _, latency, _ in records]
        refused = sum(
            1 for _, _, response in records if response.get("refused")
        )
        errors = sum(
            1 for _, _, response in records if not response.get("ok")
        )
        identical = all(
            _matches(response, references[index])
            for index, _, response in records
        )
        qps = len(records) / wall if wall > 0 else 0.0
        p50 = _exp18_quantile_ms(latencies, 0.50)
        p99 = _exp18_quantile_ms(latencies, 0.99)

        # Leg 2: registry-wide identity through the same live server.
        registry = available_algorithms()
        sweep = queries[: max(1, registry_queries)]
        registry_ok = True
        registry_answers = 0
        client = TspgClient(harness.address, timeout=120.0)
        try:
            for algorithm_key in registry:
                for index, query in enumerate(sweep):
                    response = client.request(
                        {**requests[index], "algorithm": algorithm_key}
                    )
                    reference = _exp18_wire_answer(
                        graph, algorithm_key, query
                    )
                    registry_answers += 1
                    if not _matches(response, reference):
                        registry_ok = False
            server_stats = client.request({"op": "stats"})["server"]
            client.quit()
        finally:
            client.close()

    report.add_row(
        mode="sustained",
        clients=num_clients,
        responses=len(records),
        wall_s=round(wall, 3),
        qps=round(qps, 1),
        p50_ms=round(p50, 2),
        p99_ms=round(p99, 2),
        refused=refused,
        errors=errors,
        identical=identical,
    )
    report.add_point("qps", "sustained", round(qps, 1))
    report.add_point("p99_ms", "sustained", round(p99, 2))
    report.add_note(
        f"sustained: {len(records)} responses from {num_clients} clients in "
        f"{wall:.3f}s ({qps:.0f} QPS, client p50 {p50:.2f}ms / p99 "
        f"{p99:.2f}ms; {refused} refusals, {errors} errors); every answer "
        f"{'bit-identical to its serial replay' if identical else 'MISMATCHED the serial replay'}; "
        f"server-side query p99 "
        f"{server_stats['latency_ms'].get('query', {}).get('p99_ms', 'n/a')}ms "
        f"over {server_stats['responses_sent']} responses sent"
    )
    report.add_row(
        mode="registry-identity",
        algorithms=len(registry),
        answers=registry_answers,
        identical=registry_ok,
    )
    report.add_note(
        f"registry identity: {registry_answers} served answers across "
        f"{len(registry)} registered algorithms "
        f"({'all bit-identical to their serial runs' if registry_ok else 'MISMATCH'})"
    )

    # Leg 3: saturated refuse-before-work on a fresh single-worker server.
    flood_queries = list(
        _workload(graph, dataset_key, flood, seed=seed + 5)
    )
    serial_started = time.perf_counter()
    algorithm = get_algorithm("VUG")
    for query in flood_queries:
        algorithm.run(graph, query.source, query.target, query.interval)
    serial_ms = (time.perf_counter() - serial_started) * 1000.0
    effective_deadline = (
        float(deadline_ms)
        if deadline_ms is not None
        else max(2.0, 0.25 * serial_ms)
    )
    saturated_requests = [
        _exp18_query_request(query, deadline_ms=effective_deadline)
        for query in flood_queries
    ]
    saturated_service = TspgService(graph, default_algorithm="VUG")
    saturated_core = RequestCore(saturated_service, default_workers=1)
    saturated_records: List[Tuple[float, dict]] = []
    with ServerThread(
        saturated_core,
        workers=1,
        max_inflight=2 * flood,
        max_pending_per_client=flood + 8,
    ) as harness:
        client = TspgClient(harness.address, timeout=120.0)
        try:
            started = time.perf_counter()
            for request in saturated_requests:
                client.send(request)
            for _ in saturated_requests:
                response = client.recv()
                saturated_records.append(
                    ((time.perf_counter() - started) * 1000.0, response)
                )
            client.quit()
        finally:
            client.close()
    admitted = [
        (latency, response)
        for latency, response in saturated_records
        if not response.get("refused")
    ]
    saturated_refused = len(saturated_records) - len(admitted)
    max_admitted_ms = max(
        (latency for latency, _ in admitted), default=0.0
    )
    max_response_ms = max(
        (latency for latency, _ in saturated_records), default=0.0
    )
    overshoot = max_admitted_ms > effective_deadline + slack_ms
    refusals_prompt = max_response_ms <= effective_deadline + slack_ms
    admitted_ok = all(response.get("ok") for _, response in admitted)
    report.add_row(
        mode="saturated",
        flood=flood,
        serial_ms=round(serial_ms, 1),
        deadline_ms=round(effective_deadline, 2),
        slack_ms=slack_ms,
        admitted=len(admitted),
        refused=saturated_refused,
        max_admitted_ms=round(max_admitted_ms, 2),
        max_response_ms=round(max_response_ms, 2),
        overshoot=overshoot,
        admitted_ok=admitted_ok,
    )
    report.add_point("refused", "saturated", saturated_refused)
    report.add_note(
        f"saturated: {flood} pipelined distinct queries (serial cost "
        f"{serial_ms:.1f}ms) against 1 worker under a shared "
        f"{effective_deadline:.1f}ms deadline -> {len(admitted)} admitted, "
        f"{saturated_refused} refused before work; slowest admitted answer "
        f"{max_admitted_ms:.1f}ms, last refusal flushed by "
        f"{max_response_ms:.1f}ms "
        f"({'within' if refusals_prompt and not overshoot else 'OUTSIDE'} "
        f"deadline + {slack_ms:.0f}ms slack)"
    )
    return report


EXPERIMENTS = {
    "table1": table1_datasets,
    "exp1": exp1_response_time,
    "exp2": exp2_vary_theta,
    "exp3": exp3_space,
    "exp4": exp4_phases,
    "exp5-table2": exp5_upper_bound,
    "exp5-fig9": exp5_quick_vs_tgtsg,
    "exp5-fig10": exp5_vary_theta,
    "exp6": exp6_eev_vs_enum,
    "exp7": exp7_edges_vs_paths,
    "exp8": exp8_case_study,
    "exp9": exp9_batch_throughput,
    "exp10": exp10_store_and_shards,
    "exp11": exp11_view_pipeline,
    "exp12": exp12_process_shards,
    "exp13": exp13_serving_pool,
    "exp14": exp14_vectorized_kernels,
    "exp15": exp15_mmap_boot,
    "exp16": exp16_query_residency,
    "exp17": exp17_live_ingest,
    "exp18": exp18_serving_tier,
}
