"""Benchmark harness: experiment drivers and plain-text reporting."""

from .reporting import ExperimentReport, render_series, render_table
from .experiments import (
    DEFAULT_NUM_QUERIES,
    DEFAULT_TIME_BUDGET_SECONDS,
    EXPERIMENTS,
    exp1_response_time,
    exp2_vary_theta,
    exp3_space,
    exp4_phases,
    exp5_quick_vs_tgtsg,
    exp5_upper_bound,
    exp5_vary_theta,
    exp6_eev_vs_enum,
    exp7_edges_vs_paths,
    exp8_case_study,
    table1_datasets,
)

__all__ = [
    "ExperimentReport",
    "render_table",
    "render_series",
    "DEFAULT_NUM_QUERIES",
    "DEFAULT_TIME_BUDGET_SECONDS",
    "EXPERIMENTS",
    "table1_datasets",
    "exp1_response_time",
    "exp2_vary_theta",
    "exp3_space",
    "exp4_phases",
    "exp5_upper_bound",
    "exp5_quick_vs_tgtsg",
    "exp5_vary_theta",
    "exp6_eev_vs_enum",
    "exp7_edges_vs_paths",
    "exp8_case_study",
]
