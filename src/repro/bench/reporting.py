"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows and series the paper reports in its
tables and figures.  Rendering is deliberately dependency-free (monospace
tables) so results show up directly in ``pytest --benchmark-only`` output and
in CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_value(value: object) -> str:
    """Render one cell: floats to 4 significant digits, None as ``-``."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == float("inf"):
            return "INF"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [[format_value(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[idx]) for row in rendered_rows))
        for idx, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Mapping[object, object]],
    x_label: str = "x",
    title: Optional[str] = None,
) -> str:
    """Render ``{series name: {x: y}}`` as a table with one column per series.

    This is the textual equivalent of the paper's line plots (Figs. 6, 10, 11,
    12): the x values become rows and each named series a column.
    """
    x_values: List[object] = []
    for values in series.values():
        for x in values:
            if x not in x_values:
                x_values.append(x)
    rows = []
    for x in x_values:
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values.get(x)
        rows.append(row)
    return render_table(rows, columns=[x_label, *series.keys()], title=title)


@dataclass
class ExperimentReport:
    """A named experiment outcome: structured rows/series plus rendered text."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    series: Dict[str, Dict[object, object]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append one table row."""
        self.rows.append(dict(values))

    def add_point(self, series_name: str, x: object, y: object) -> None:
        """Append one point to a named series."""
        self.series.setdefault(series_name, {})[x] = y

    def add_note(self, note: str) -> None:
        """Attach a free-text note (e.g. substitutions, cut-offs)."""
        self.notes.append(note)

    def render(self, x_label: str = "x") -> str:
        """Full textual rendering (table, then series, then notes)."""
        parts: List[str] = [f"== {self.experiment}: {self.description} =="]
        if self.rows:
            parts.append(render_table(self.rows))
        if self.series:
            parts.append(render_series(self.series, x_label=x_label))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
